"""Property-based tests: random programs never diverge from the golden model."""

from hypothesis import given, settings, strategies as st

from repro.isa import Instruction, Opcode, Program
from repro.isa.interpreter import MachineState, run_program
from repro.ultrascalar import IdealMemory, ProcessorConfig, make_hybrid, make_ultrascalar1, make_ultrascalar2
from repro.ultrascalar.vector_engine import VectorRingEngine

REGS = st.integers(0, 7)  # small register universe concentrates dependencies
SPEC_L = 32

alu_ops = st.sampled_from(
    [Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.MUL, Opcode.DIV]
)


@st.composite
def straightline_programs(draw):
    """Random register-only programs ending in HALT."""
    count = draw(st.integers(1, 25))
    instructions = []
    for _ in range(count):
        kind = draw(st.integers(0, 2))
        if kind == 0:
            instructions.append(
                Instruction(draw(alu_ops), rd=draw(REGS), rs1=draw(REGS), rs2=draw(REGS))
            )
        elif kind == 1:
            instructions.append(
                Instruction(Opcode.LI, rd=draw(REGS), imm=draw(st.integers(-100, 100)))
            )
        else:
            instructions.append(
                Instruction(
                    Opcode.ADDI, rd=draw(REGS), rs1=draw(REGS), imm=draw(st.integers(-50, 50))
                )
            )
    instructions.append(Instruction(Opcode.HALT))
    return Program.from_instructions(instructions)


@st.composite
def memory_programs(draw):
    """Random programs with loads/stores at safe aligned addresses."""
    count = draw(st.integers(1, 20))
    instructions = [Instruction(Opcode.LI, rd=1, imm=64)]  # base pointer
    for _ in range(count):
        kind = draw(st.integers(0, 3))
        offset = 4 * draw(st.integers(0, 7))
        if kind == 0:
            instructions.append(Instruction(Opcode.SW, rs2=draw(REGS), rs1=1, imm=offset))
        elif kind == 1:
            instructions.append(Instruction(Opcode.LW, rd=draw(REGS.filter(lambda r: r != 1)), rs1=1, imm=offset))
        elif kind == 2:
            instructions.append(
                Instruction(Opcode.ADD, rd=draw(REGS.filter(lambda r: r != 1)), rs1=draw(REGS), rs2=draw(REGS))
            )
        else:
            instructions.append(
                Instruction(Opcode.LI, rd=draw(REGS.filter(lambda r: r != 1)), imm=draw(st.integers(0, 50)))
            )
    instructions.append(Instruction(Opcode.HALT))
    return Program.from_instructions(instructions)


def golden(program):
    return run_program(program, state=MachineState.zeroed(SPEC_L))


@given(straightline_programs(), st.sampled_from([1, 2, 5, 8, 32]))
@settings(max_examples=40, deadline=None)
def test_us1_matches_golden_on_random_programs(program, window):
    config = ProcessorConfig(window_size=window, fetch_width=4)
    result = make_ultrascalar1(program, config, memory=IdealMemory()).run()
    reference = golden(program)
    assert result.registers == reference.state.registers
    assert len(result.committed) == reference.dynamic_length


@given(straightline_programs(), st.sampled_from([1, 4, 16]))
@settings(max_examples=30, deadline=None)
def test_us2_matches_golden_on_random_programs(program, window):
    config = ProcessorConfig(window_size=window, fetch_width=4)
    result = make_ultrascalar2(program, config, memory=IdealMemory()).run()
    reference = golden(program)
    assert result.registers == reference.state.registers


@given(straightline_programs(), st.sampled_from([(8, 2), (8, 8), (16, 4)]))
@settings(max_examples=30, deadline=None)
def test_hybrid_matches_golden_on_random_programs(program, shape):
    window, cluster = shape
    config = ProcessorConfig(window_size=window, fetch_width=4)
    result = make_hybrid(program, cluster, config, memory=IdealMemory()).run()
    reference = golden(program)
    assert result.registers == reference.state.registers


@given(straightline_programs(), st.sampled_from([1, 2, 8, 32]))
@settings(max_examples=40, deadline=None)
def test_vector_engine_matches_ring_on_random_programs(program, window):
    config = ProcessorConfig(window_size=window, fetch_width=4)
    ring = make_ultrascalar1(program, config, memory=IdealMemory()).run()
    vector = VectorRingEngine(program, window, 4).run()
    assert vector.cycles == ring.cycles
    assert vector.registers == ring.registers
    assert vector.issue_cycles == [t.issue_cycle for t in sorted(ring.timings, key=lambda t: t.seq)]


@given(memory_programs(), st.sampled_from(["us1", "us2"]))
@settings(max_examples=30, deadline=None)
def test_memory_programs_match_golden(program, kind):
    config = ProcessorConfig(window_size=8, fetch_width=4)
    factory = make_ultrascalar1 if kind == "us1" else make_ultrascalar2
    result = factory(program, config, memory=IdealMemory()).run()
    reference = golden(program)
    assert result.registers == reference.state.registers
    for address, value in reference.state.memory.items():
        assert result.memory.get(address, 0) == value


@given(straightline_programs())
@settings(max_examples=30, deadline=None)
def test_commit_order_is_program_order(program):
    config = ProcessorConfig(window_size=8, fetch_width=4)
    result = make_ultrascalar1(program, config, memory=IdealMemory()).run()
    reference = golden(program)
    assert [s.static_index for s in result.committed] == [
        s.static_index for s in reference.trace
    ]


@given(straightline_programs())
@settings(max_examples=30, deadline=None)
def test_timing_sanity_invariants(program):
    """fetch <= issue <= complete <= commit for every instruction."""
    config = ProcessorConfig(window_size=8, fetch_width=4)
    result = make_ultrascalar1(program, config, memory=IdealMemory()).run()
    for t in result.timings:
        assert t.fetch_cycle <= t.issue_cycle <= t.complete_cycle <= t.commit_cycle
    commits = [t.commit_cycle for t in result.timings]
    assert commits == sorted(commits)
