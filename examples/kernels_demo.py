"""Run real program kernels on the Ultrascalar: sort, matmul, Fibonacci.

Usage::

    python examples/kernels_demo.py

Shows data-dependent branch behaviour (bubble sort under different
predictors), nested-loop ILP (matrix multiply vs window size), a serial
recurrence hitting its dataflow limit (Fibonacci), and the Section 7
distributed cluster cache cutting shared-memory traffic.
"""

from repro.api import IdealMemory, ProcessorConfig, build_processor
from repro.frontend.branch_predictor import AlwaysNotTaken, BimodalPredictor, GSharePredictor
from repro.memory import ClusteredMemory
from repro.util.tables import Table
from repro.workloads import bubble_sort, fib_value, fibonacci, matmul, repeated_reduction


def run(workload, window=16, predictor=None, memory=None):
    config = ProcessorConfig(window_size=window, fetch_width=4, max_cycles=5_000_000)
    mem = memory if memory is not None else IdealMemory()
    mem.load_image(workload.memory_image)
    return build_processor("us1", config).run(
        workload.program,
        memory=mem,
        predictor=predictor,
        initial_registers=workload.registers_for(),
    )


def main() -> None:
    # --- bubble sort: the predictor gauntlet ---
    data = [23, 5, 91, 1, 44, 17, 8, 62, 3, 70]
    table = Table(
        ["Predictor", "cycles", "IPC", "mispredictions", "squashed"],
        title=f"Bubble sort of {len(data)} values (data-dependent branches)",
    )
    for name, predictor in [
        ("oracle", None),
        ("not-taken", AlwaysNotTaken()),
        ("bimodal", BimodalPredictor(size=128)),
        ("gshare", GSharePredictor(size=512, history_bits=8)),
    ]:
        result = run(bubble_sort(data), predictor=predictor)
        sorted_out = [result.memory[1024 + 4 * i] for i in range(len(data))]
        assert sorted_out == sorted(data)
        table.add_row([name, result.cycles, round(result.ipc, 2),
                       result.mispredictions, result.squashed])
    print(table.render())
    print()

    # --- matrix multiply: window scaling on nested loops ---
    table = Table(["window", "cycles", "IPC"], title="3x3 integer matmul vs window size")
    for window in (4, 8, 16, 32, 64):
        result = run(matmul(3), window=window)
        table.add_row([window, result.cycles, round(result.ipc, 2)])
    print(table.render())
    print()

    # --- Fibonacci: a serial recurrence pins IPC at the dataflow limit ---
    result = run(fibonacci(25), window=64)
    print(f"fib(25) = {result.registers[3]} (expected {fib_value(25)}); "
          f"IPC = {result.ipc:.2f} — the loop's 2-op recurrence in a 5-op body caps it at 2.5")
    print()

    # --- distributed cluster cache (Section 7) ---
    table = Table(
        ["array passes", "local hits", "shared accesses", "bandwidth saved"],
        title="Distributed cluster cache on repeated reductions",
    )
    for passes in (1, 4, 8):
        memory = ClusteredMemory(cluster_size=16, shared_latency=6)
        run(repeated_reduction(8, passes), memory=memory)
        stats = memory.stats
        table.add_row([passes, stats.local_hits, stats.shared_accesses,
                       f"{stats.bandwidth_saved * 100:.0f}%"])
    print(table.render())


if __name__ == "__main__":
    main()
