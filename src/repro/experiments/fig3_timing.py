"""Experiment E1 — the paper's Figure 3 timing diagram.

Runs the 8-instruction sequence of Figure 1 on the Ultrascalar I (window
8, as drawn) and on the idealized dataflow superscalar, and checks they
issue identically: "This timing diagram is exactly what would be
produced in a traditional superscalar processor that has enough
functional units to exploit the parallelism of the code sequence."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baseline.dataflow import dataflow_schedule
from repro.isa.interpreter import MachineState, run_program
from repro.ultrascalar import IdealMemory, ProcessorConfig, make_ultrascalar1
from repro.util.tables import Table
from repro.workloads import paper_sequence

#: the spans the paper's Figure 3 draws (issue cycle, end cycle), per
#: instruction in program order, with div=10 / mul=3 / add=1
PAPER_FIGURE3_SPANS = [
    (0, 10),   # R3 = R1 / R2
    (10, 11),  # R0 = R0 + R3
    (0, 1),    # R1 = R5 + R6
    (11, 12),  # R1 = R0 + R1
    (0, 3),    # R2 = R5 * R6
    (3, 4),    # R2 = R2 + R4
    (0, 1),    # R0 = R5 - R6
    (1, 2),    # R4 = R0 + R7
]


#: sweep points the runner executes and the cache keys (kwargs for
#: :func:`report`); the paper's figure is a single fixed sequence
SWEEP_POINTS: list[dict] = [{}]


@dataclass
class Fig3Result:
    """Everything E1 produces."""

    ultrascalar_spans: list[tuple[int, int]]
    dataflow_spans: list[tuple[int, int]]
    cycles: int
    diagram: str
    matches_paper: bool
    matches_dataflow: bool


def run() -> Fig3Result:
    """Run E1 and compare against the published diagram."""
    workload = paper_sequence()
    config = ProcessorConfig(window_size=9, fetch_width=9)
    processor = make_ultrascalar1(
        workload.program, config, memory=IdealMemory(),
        initial_registers=workload.registers_for(),
    )
    result = processor.run()
    spans = [t.execute_span for t in sorted(result.timings, key=lambda t: t.seq)][:8]

    golden = run_program(
        workload.program, state=MachineState(workload.registers_for())
    )
    schedule = dataflow_schedule(golden.trace)
    oracle_spans = [
        (e.issue_cycle, e.complete_cycle + 1) for e in schedule.entries
    ][:8]

    return Fig3Result(
        ultrascalar_spans=spans,
        dataflow_spans=oracle_spans,
        cycles=result.cycles,
        diagram=result.timing_diagram(),
        matches_paper=spans == PAPER_FIGURE3_SPANS,
        matches_dataflow=spans == oracle_spans,
    )


def report() -> str:
    """Figure 3 as a table plus the rendered timing diagram."""
    outcome = run()
    workload = paper_sequence()
    table = Table(
        ["Instruction", "Paper (issue, end)", "Ultrascalar I", "Dataflow oracle"],
        title="E1 / Figure 3 — relative execution times (div=10, mul=3, add=1)",
    )
    for i in range(8):
        table.add_row(
            [
                str(workload.program[i]),
                str(PAPER_FIGURE3_SPANS[i]),
                str(outcome.ultrascalar_spans[i]),
                str(outcome.dataflow_spans[i]),
            ]
        )
    footer = (
        f"\nmatches paper: {outcome.matches_paper}; "
        f"matches dataflow oracle: {outcome.matches_dataflow}; "
        f"total cycles: {outcome.cycles} (paper horizon: 12)\n\n"
        + outcome.diagram
    )
    return table.render() + footer


if __name__ == "__main__":  # pragma: no cover
    print(report())
