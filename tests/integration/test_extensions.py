"""Integration tests for the paper's extension features:

* shared-ALU scheduling (window size decoupled from issue width),
* memory renaming / store-forwarding,
* self-timed distance-dependent forwarding.

Each must preserve architectural correctness (golden equivalence) while
changing timing in the direction the paper predicts.
"""

import pytest

from repro.isa import assemble
from repro.isa.interpreter import MachineState, run_program
from repro.ultrascalar import IdealMemory, ProcessorConfig, make_ultrascalar1
from repro.workloads import (
    daxpy_loop,
    dependency_chain,
    independent_ops,
    random_ilp,
    spaced_chain,
    store_load_pairs,
)


def run_config(workload, load_latency=1, **config_kwargs):
    config = ProcessorConfig(window_size=16, fetch_width=8, **config_kwargs)
    memory = IdealMemory(load_latency=load_latency)
    memory.load_image(workload.memory_image)
    processor = make_ultrascalar1(
        workload.program, config, memory=memory,
        initial_registers=workload.registers_for(),
    )
    return processor.run()


def assert_golden(workload, result):
    golden = run_program(
        workload.program,
        state=MachineState(workload.registers_for(), dict(workload.memory_image)),
    )
    assert result.registers == golden.state.registers
    expected = dict(workload.memory_image)
    expected.update(golden.state.memory)
    for address, value in expected.items():
        assert result.memory.get(address, 0) == value


class TestSharedAlus:
    @pytest.mark.parametrize("num_alus", [1, 2, 4, 8])
    def test_correct_at_any_pool_size(self, num_alus):
        workload = random_ilp(40, 0.3, seed=201)
        result = run_config(workload, num_alus=num_alus)
        assert_golden(workload, result)

    def test_ipc_capped_by_pool(self):
        workload = independent_ops(40)
        for num_alus in (1, 2, 4):
            result = run_config(workload, num_alus=num_alus)
            assert result.ipc <= num_alus + 0.1

    def test_ipc_grows_with_pool(self):
        workload = independent_ops(40)
        ipcs = [run_config(workload, num_alus=k).ipc for k in (1, 2, 4, 8)]
        assert ipcs == sorted(ipcs)
        assert ipcs[-1] > 2 * ipcs[0]

    def test_big_pool_equals_unlimited(self):
        workload = random_ilp(40, 0.4, seed=202)
        pooled = run_config(workload, num_alus=16)  # = window size
        unlimited = run_config(workload)
        assert pooled.cycles == unlimited.cycles

    def test_serial_chain_insensitive_to_pool(self):
        # ILP = 1: one ALU is as good as sixteen
        workload = dependency_chain(25)
        assert run_config(workload, num_alus=1).cycles == run_config(workload).cycles

    def test_memory_ops_bypass_the_pool(self):
        workload = daxpy_loop(5)
        result = run_config(workload, num_alus=1)
        assert_golden(workload, result)


class TestStoreForwarding:
    def test_correctness_preserved(self):
        workload = store_load_pairs(6)
        result = run_config(workload, store_forwarding=True)
        assert_golden(workload, result)

    def test_loads_are_forwarded(self):
        workload = store_load_pairs(6)
        result = run_config(workload, store_forwarding=True)
        assert result.forwarded_loads >= 4

    def test_no_forwarding_without_flag(self):
        workload = store_load_pairs(6)
        result = run_config(workload)
        assert result.forwarded_loads == 0

    def test_forwarding_reduces_memory_latency_cost(self):
        workload = store_load_pairs(6)
        slow_plain = run_config(workload, load_latency=8)
        slow_forwarded = run_config(workload, load_latency=8, store_forwarding=True)
        assert slow_forwarded.cycles < slow_plain.cycles

    def test_forwards_nearest_store_not_an_older_one(self):
        source = """
            li r1, 100
            li r2, 1
            li r3, 2
            li r7, 9
            li r8, 3
            div r9, r7, r8      # slow op keeps the window open
            sw r2, 0(r1)
            sw r3, 0(r1)        # nearer store, same address
            lw r4, 0(r1)
            halt
        """
        program = assemble(source)
        golden = run_program(program)
        config = ProcessorConfig(window_size=16, fetch_width=16, store_forwarding=True)
        result = make_ultrascalar1(program, config, memory=IdealMemory()).run()
        assert result.registers == golden.state.registers
        assert result.registers[4] == 2
        assert result.forwarded_loads == 1

    def test_daxpy_still_correct_with_forwarding(self):
        workload = daxpy_loop(6)
        result = run_config(workload, store_forwarding=True)
        assert_golden(workload, result)


class TestSelfTimed:
    def test_correctness_preserved(self):
        workload = random_ilp(40, 0.5, seed=203)
        result = run_config(workload, self_timed=True)
        assert_golden(workload, result)

    def test_neighbour_chains_beat_far_chains(self):
        """The paper's claim: programs depending on immediate
        predecessors run faster self-timed than far-dependent ones."""
        near = spaced_chain(48, 1)
        far = spaced_chain(48, 8)
        near_cycles = run_config(near, self_timed=True).cycles
        far_cycles = run_config(far, self_timed=True).cycles
        # same chain length (48 links at distance 1 vs 6 links + filler);
        # compare per-link cost instead: time per dependent hop
        near_per_hop = near_cycles / 48
        far_per_hop = far_cycles / 6
        assert near_per_hop < far_per_hop

    def test_global_clock_is_distance_blind(self):
        near = spaced_chain(32, 1)
        result_near = run_config(near)
        result_near_st = run_config(near, self_timed=True)
        # self-timed can only slow things down in cycle counts (its win
        # is that a "cycle" is a local hop, not the full-chip wire)
        assert result_near_st.cycles >= result_near.cycles

    def test_adjacent_dependences_mostly_single_cycle(self):
        near = spaced_chain(48, 1)
        global_clock = run_config(near).cycles
        self_timed = run_config(near, self_timed=True).cycles
        # 3/4 of successor hops are intra-quadrant: the slowdown is mild
        assert self_timed <= global_clock * 1.6


class TestConfigValidation:
    def test_num_alus_positive(self):
        with pytest.raises(ValueError):
            ProcessorConfig(num_alus=0)
