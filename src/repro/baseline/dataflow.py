"""An idealized dataflow out-of-order machine over a dynamic trace.

Given the golden interpreter's dynamic trace, compute for every dynamic
instruction the earliest cycle it can issue under exactly the
Ultrascalar scheduling rules — register RAW dependencies with one-cycle
result forwarding, load-after-store and store-after-everything memory
ordering, optional fetch-bandwidth and window constraints — assuming
every instruction has its own functional unit (as the Ultrascalar
replicates its ALU per station) and branch prediction is perfect.

This is simultaneously:

* the paper's "traditional superscalar ... with enough functional
  units" reference for the Figure 3 timing diagram, and
* the oracle the integration tests compare the Ultrascalar I against,
  cycle for cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.interpreter import StepOutcome
from repro.isa.latency import LatencyModel


@dataclass(frozen=True)
class ScheduledInstruction:
    """Schedule entry for one dynamic instruction."""

    seq: int
    step: StepOutcome
    fetch_cycle: int
    issue_cycle: int
    complete_cycle: int
    commit_cycle: int


@dataclass
class DataflowSchedule:
    """The whole schedule plus summary statistics."""

    entries: list[ScheduledInstruction]

    @property
    def cycles(self) -> int:
        """Total cycles: the last commit happens in cycle ``cycles - 1``."""
        return max((e.commit_cycle for e in self.entries), default=-1) + 1

    @property
    def ipc(self) -> float:
        """Dynamic instructions per cycle."""
        return len(self.entries) / self.cycles if self.cycles else 0.0

    def issue_times(self) -> list[int]:
        """Per-instruction issue cycles, in dynamic order."""
        return [e.issue_cycle for e in self.entries]


def dataflow_schedule(
    trace: list[StepOutcome],
    latencies: LatencyModel | None = None,
    fetch_width: int | None = None,
    window_size: int | None = None,
    load_latency: int = 1,
    store_latency: int = 1,
    stop_fetch_at_taken: bool = True,
) -> DataflowSchedule:
    """Compute the idealized schedule of *trace*.

    Args:
        trace: dynamic instruction stream (golden interpreter output).
        latencies: functional-unit latencies (Figure 3 defaults).
        fetch_width: instructions entering per cycle (``None`` = all at
            cycle 0, the pure-dataflow limit).
        window_size: maximum in-flight instructions (``None`` =
            unbounded); instruction ``i`` cannot fetch until
            instruction ``i - window_size`` has committed.
        load_latency / store_latency: memory-system completion times
            (matching :class:`repro.ultrascalar.memsys.IdealMemory`).
        stop_fetch_at_taken: model conventional fetch's inability to
            cross a taken control transfer within one cycle.
    """
    latencies = latencies or LatencyModel()
    entries: list[ScheduledInstruction] = []

    #: result-availability cycle per register (complete + 1)
    reg_available: dict[int, int] = {}
    last_store_done = -1          # max completion among stores so far
    last_mem_done = -1            # max completion among loads + stores
    last_branch_done = -1         # max completion among control transfers
    prev_commit = -1
    commit_history: list[int] = []

    # fetch scheduling state
    fetch_cycle = 0
    fetched_this_cycle = 0
    fetch_broken = False  # a taken transfer ended the current fetch group

    for seq, step in enumerate(trace):
        inst = step.instruction

        # -- fetch constraint ------------------------------------------
        if fetch_width is None:
            fetch = 0
        else:
            if fetched_this_cycle >= fetch_width or fetch_broken:
                fetch_cycle += 1
                fetched_this_cycle = 0
                fetch_broken = False
            fetch = fetch_cycle
            fetched_this_cycle += 1
            if stop_fetch_at_taken and step.taken:
                fetch_broken = True
        if window_size is not None and seq >= window_size:
            # the station frees the cycle after instruction seq-window commits
            fetch = max(fetch, commit_history[seq - window_size] + 1)

        # -- issue constraints -----------------------------------------
        issue = fetch
        for reg in inst.reads:
            issue = max(issue, reg_available.get(reg, 0))
        if inst.is_load:
            issue = max(issue, last_store_done + 1)
        if inst.is_store:
            issue = max(issue, last_mem_done + 1, last_branch_done + 1)

        # -- completion -------------------------------------------------
        if inst.is_load:
            latency = load_latency
        elif inst.is_store:
            latency = store_latency
        else:
            latency = latencies.latency_of(inst.op)
        complete = issue + latency - 1
        commit = max(complete, prev_commit)

        entries.append(
            ScheduledInstruction(
                seq=seq,
                step=step,
                fetch_cycle=fetch,
                issue_cycle=issue,
                complete_cycle=complete,
                commit_cycle=commit,
            )
        )
        commit_history.append(commit)
        prev_commit = commit

        # -- update producer state --------------------------------------
        for reg in inst.writes:
            reg_available[reg] = complete + 1
        if inst.is_store:
            last_store_done = max(last_store_done, complete)
        if inst.is_memory:
            last_mem_done = max(last_mem_done, complete)
        if inst.is_control:
            last_branch_done = max(last_branch_done, complete)

    return DataflowSchedule(entries=entries)
