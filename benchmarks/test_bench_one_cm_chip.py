"""E16 — the paper's closing claim: 128-window, 16-ALU hybrid in 1 cm²."""

from repro.experiments import one_cm_chip


def test_bench_one_cm_chip(once):
    outcome = once(one_cm_chip.run)
    print()
    print(one_cm_chip.report())
    assert outcome.fits_one_cm
    assert outcome.area_cm2 < 1.0
    # and the configuration actually computes, at a healthy IPC
    assert outcome.ipc > 4.0


def test_bench_shrink_is_consistent(once):
    """The 0.1 um projection is exactly a linear shrink of the calibrated
    0.35 um model — same tracks, smaller track."""

    def check():
        from repro.vlsi.hybrid_layout import HybridLayout
        from repro.vlsi.tech import PAPER_TECH

        big = HybridLayout(128, 32, 32, tech=PAPER_TECH)
        small = HybridLayout(128, 32, 32, tech=one_cm_chip.TECH_01UM)
        return big.side_length(), small.side_length(), one_cm_chip.SHRINK

    big_tracks, small_tracks, shrink = once(check)
    assert big_tracks == small_tracks  # geometry in tracks is identical
    assert shrink < 1.0
