"""Unit tests for workload generators (each must run on the golden model)."""

import pytest

from repro.isa.interpreter import MachineState, run_program
from repro.workloads import (
    daxpy_loop,
    dependency_chain,
    independent_ops,
    memory_stream,
    paper_sequence,
    pointer_chase,
    random_ilp,
    reduction_loop,
)


def run_workload(workload):
    state = MachineState(workload.registers_for(), dict(workload.memory_image))
    return run_program(workload.program, state=state)


class TestPaperSequence:
    def test_has_eight_instructions_plus_halt(self):
        w = paper_sequence()
        assert len(w.program) == 9
        assert w.program[8].is_halt

    def test_matches_figure1_register_usage(self):
        w = paper_sequence()
        # R3 = R1 / R2 first, R4 = R0 + R7 last
        assert str(w.program[0]) == "div r3, r1, r2"
        assert str(w.program[7]) == "add r4, r0, r7"

    def test_initial_r0_is_10(self):
        # Figure 1: "The initial value, equal to 10, is marked ready."
        assert paper_sequence().initial_registers[0] == 10

    def test_runs_to_halt(self):
        result = run_workload(paper_sequence())
        assert result.halted
        assert result.dynamic_length == 9


class TestGenerators:
    def test_dependency_chain_result(self):
        result = run_workload(dependency_chain(10))
        assert result.state.registers[1] == 10  # r1 += r2(=1) ten times

    def test_independent_ops_fill_registers(self):
        result = run_workload(independent_ops(10))
        assert all(v == 7 for v in result.state.registers[2:12])

    def test_daxpy_computes_axpy(self):
        w = daxpy_loop(4)
        result = run_workload(w)
        for i in range(4):
            x = i + 1
            y = 10 * (i + 1)
            assert result.state.memory[2000 + 4 * i] == 3 * x + y

    def test_reduction_sums_array(self):
        result = run_workload(reduction_loop(6))
        assert result.state.registers[3] == sum(range(1, 7))

    def test_pointer_chase_follows_links(self):
        w = pointer_chase(3)
        result = run_workload(w)
        assert result.state.registers[2] == 1000 + 8 * 3

    def test_memory_stream_roundtrips(self):
        result = run_workload(memory_stream(4))
        assert all(result.state.memory[4 * i + 4] == 7 for i in range(4))

    def test_random_ilp_is_deterministic(self):
        a = random_ilp(20, 0.5, seed=42)
        b = random_ilp(20, 0.5, seed=42)
        assert tuple(a.program) == tuple(b.program)
        assert a.initial_registers == b.initial_registers

    def test_random_ilp_density_changes_program(self):
        dense = random_ilp(50, 0.9, seed=1)
        sparse = random_ilp(50, 0.1, seed=1)
        assert tuple(dense.program) != tuple(sparse.program)

    def test_random_ilp_runs(self):
        assert run_workload(random_ilp(40, 0.5, seed=3)).halted

    @pytest.mark.parametrize(
        "factory", [dependency_chain, independent_ops, daxpy_loop, reduction_loop, pointer_chase, memory_stream]
    )
    def test_rejects_non_positive_sizes(self, factory):
        with pytest.raises(ValueError):
            factory(0)

    def test_random_ilp_validation(self):
        with pytest.raises(ValueError):
            random_ilp(0)
        with pytest.raises(ValueError):
            random_ilp(5, dependency_fraction=1.5)

    def test_registers_for_pads(self):
        w = paper_sequence()
        regs = w.registers_for(64)
        assert len(regs) == 64
        assert regs[:32] == w.initial_registers
