"""The complete Ultrascalar I register datapath as one netlist (Figure 4).

This assembles, at gate level, everything Section 2 describes:

* one copy-operator CSPP tree per logical register, carrying
  (value, ready) from each writer to all younger readers, with the
  oldest station inserting the committed register file;
* per-station *modified* bits driving the CSPP segment inputs ("the
  decode logic generates a modified bit for every logical register");
  the oldest station marks every register modified;
* the three 1-bit AND-operator CSPP sequencing circuits of Figure 5:
  all-earlier-finished (oldest tracking / deallocation),
  all-earlier-stores-finished (load ordering), and
  all-earlier-loads-and-stores-finished (store ordering).

The construction is validated against the behavioural register-view
walk used by :class:`repro.ultrascalar.ring.RingProcessor`, closing the
loop between the circuit level and the processor model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.circuits.cspp import CsppTree
from repro.circuits.prefix import AndOp, CopyOp


@dataclass(frozen=True)
class StationSnapshot:
    """One station's datapath-relevant state for a settling step.

    Attributes:
        writes_register: destination register or ``None``.
        result: computed result value (meaningful when ``done``).
        done: has the instruction finished (ready bit high).
        finished_store: condition input for the store-ordering CSPP.
        finished_memory: condition input for the load/store-ordering CSPP.
    """

    writes_register: int | None
    result: int
    done: bool
    finished_store: bool = True
    finished_memory: bool = True


@dataclass
class DatapathOutputs:
    """Settled outputs of one datapath step."""

    #: per station, per register: (value, ready)
    incoming: list[list[tuple[int, bool]]]
    #: per station: every older station finished
    all_earlier_done: list[bool]
    #: per station: every older store finished
    stores_done: list[bool]
    #: per station: every older memory op finished
    memory_done: list[bool]
    #: total settle time over all component circuits (gate delays)
    settle_time: int
    #: total gates across all component circuits
    gate_count: int


class Ultrascalar1Datapath:
    """The full register datapath for *n* stations, *L* registers.

    One netlist per register CSPP plus three sequencing CSPPs.  (The
    paper lays these out as separate parallel-prefix trees sharing the
    H-tree, so separate netlists are the faithful structure; their
    settle times are concurrent, and :meth:`step` reports the maximum.)
    """

    def __init__(self, n: int, num_registers: int, value_bits: int = 8, radix: int = 2):
        if n < 1 or num_registers < 1 or value_bits < 1:
            raise ValueError("n, L and value_bits must be positive")
        self.n = n
        self.L = num_registers
        self.value_bits = value_bits
        # payload: value bits + ready bit
        self.register_trees = [
            CsppTree(n, op=CopyOp(value_bits + 1), radix=radix, name=f"reg{r}")
            for r in range(num_registers)
        ]
        self.done_tree = CsppTree(n, op=AndOp(), radix=radix, name="done")
        self.store_tree = CsppTree(n, op=AndOp(), radix=radix, name="stores")
        self.memory_tree = CsppTree(n, op=AndOp(), radix=radix, name="memops")

    @property
    def gate_count(self) -> int:
        """Total gates across every component circuit."""
        trees = [*self.register_trees, self.done_tree, self.store_tree, self.memory_tree]
        return sum(tree.gate_count for tree in trees)

    def _payload(self, value: int, ready: bool) -> int:
        mask = (1 << self.value_bits) - 1
        return (value & mask) | (int(ready) << self.value_bits)

    def _unpack(self, payload: int) -> tuple[int, bool]:
        mask = (1 << self.value_bits) - 1
        return payload & mask, bool(payload >> self.value_bits)

    def step(
        self,
        stations: Sequence[StationSnapshot | None],
        oldest: int,
        committed_registers: Sequence[int],
    ) -> DatapathOutputs:
        """Settle the whole datapath for one clock cycle's state.

        *stations* is indexed by ring position (``None`` = empty
        station); *oldest* is the ring position inserting the committed
        register file.
        """
        if len(stations) != self.n:
            raise ValueError(f"expected {self.n} stations")
        if len(committed_registers) != self.L:
            raise ValueError(f"expected {self.L} committed registers")
        if not 0 <= oldest < self.n:
            raise ValueError("oldest out of range")

        settle = 0
        incoming: list[list[tuple[int, bool]]] = [
            [(0, False)] * self.L for _ in range(self.n)
        ]
        for r, tree in enumerate(self.register_trees):
            values = []
            segments = []
            for pos, snapshot in enumerate(stations):
                writes_this = snapshot is not None and snapshot.writes_register == r
                if pos == oldest:
                    # the oldest station marks every register modified; it
                    # inserts its own (possibly pending) result for its
                    # destination register and the committed value for the
                    # rest (Figure 1: Station 6 inserts R0's initial value
                    # while its own R3 result is still pending in R3's ring)
                    if writes_this:
                        values.append(self._payload(snapshot.result, snapshot.done))
                    else:
                        values.append(self._payload(committed_registers[r], True))
                    segments.append(True)
                elif writes_this:
                    values.append(self._payload(snapshot.result, snapshot.done))
                    segments.append(True)
                else:
                    values.append(0)
                    segments.append(False)
            result = tree.simulate(values, segments)
            settle = max(settle, result.settle_time)
            for pos in range(self.n):
                payload = 0
                for b, net in enumerate(tree.outputs[pos]):
                    if result.value_of(net):
                        payload |= 1 << b
                incoming[pos][r] = self._unpack(payload)

        def condition(tree: CsppTree, values: list[bool]) -> list[bool]:
            nonlocal settle
            segments = [pos == oldest for pos in range(self.n)]
            result = tree.simulate([int(v) for v in values], segments)
            settle = max(settle, result.settle_time)
            outs = []
            for pos in range(self.n):
                outs.append(result.value_of(tree.outputs[pos][0]))
            # the oldest ignores its wrap-around input: vacuously true
            outs[oldest] = True
            return outs

        done_in = [s is None or s.done for s in stations]
        stores_in = [s is None or s.finished_store for s in stations]
        memory_in = [s is None or s.finished_memory for s in stations]
        return DatapathOutputs(
            incoming=incoming,
            all_earlier_done=condition(self.done_tree, done_in),
            stores_done=condition(self.store_tree, stores_in),
            memory_done=condition(self.memory_tree, memory_in),
            settle_time=settle,
            gate_count=self.gate_count,
        )
