"""Analytical reproduction of the paper's complexity results.

* :mod:`repro.analysis.regimes` -- classification of the memory
  bandwidth function M(n) into the paper's Cases 1-3, including the
  regularity requirement.
* :mod:`repro.analysis.recurrences` -- exact numeric solvers for the
  X(n), W(n) and U(n) recurrences plus their closed-form solutions.
* :mod:`repro.analysis.asymptotics` -- the paper's Figure 11 comparison
  table as evaluable data (gate delay, wire delay, total delay, area for
  all four designs in all three M(n) regimes).
* :mod:`repro.analysis.fitting` -- log-log growth-exponent fitting used
  to verify measured scaling against predictions.
* :mod:`repro.analysis.crossover` -- the Section 7 dominance analysis
  (Ultrascalar II wins below n = Θ(L^2), Ultrascalar I above; the
  hybrid dominates both).
* :mod:`repro.analysis.cluster` -- optimal hybrid cluster size C = Θ(L).
* :mod:`repro.analysis.three_d` -- the 3-D packaging bounds.
"""

from repro.analysis.asymptotics import FIGURE11, Figure11Row, figure11_table
from repro.analysis.clock_period import (
    ClockProjection,
    PerformanceProjection,
    performance,
    project_hybrid,
    project_ultrascalar1,
    project_ultrascalar2,
)
from repro.analysis.crossover import find_crossover, wire_delay_ratio
from repro.analysis.fitting import fit_exponent, fit_loglog
from repro.analysis.recurrences import (
    solve_side_recurrence,
    solve_hybrid_recurrence,
    x_closed_form,
)
from repro.analysis.regimes import Regime, classify_bandwidth, regularity_holds
from repro.analysis.three_d import THREE_D_BOUNDS, three_d_table

__all__ = [
    "FIGURE11",
    "ClockProjection",
    "PerformanceProjection",
    "performance",
    "project_hybrid",
    "project_ultrascalar1",
    "project_ultrascalar2",
    "Figure11Row",
    "figure11_table",
    "find_crossover",
    "wire_delay_ratio",
    "fit_exponent",
    "fit_loglog",
    "solve_side_recurrence",
    "solve_hybrid_recurrence",
    "x_closed_form",
    "Regime",
    "classify_bandwidth",
    "regularity_holds",
    "THREE_D_BOUNDS",
    "three_d_table",
]
