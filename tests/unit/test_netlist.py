"""Unit tests for the netlist framework and event-driven simulator."""

import pytest

from repro.circuits.netlist import GateKind, Netlist, bus, bus_value


class TestConstruction:
    def test_add_input_and_gate(self):
        nl = Netlist()
        a = nl.add_input("a")
        b = nl.add_input("b")
        out = nl.add_gate(GateKind.AND, a, b)
        assert out.driver is not None
        assert nl.gate_count == 1
        assert a.fanout == [out.driver]

    def test_arity_enforced(self):
        nl = Netlist()
        a = nl.add_input("a")
        with pytest.raises(ValueError):
            nl.add_gate(GateKind.NOT, a, a)
        with pytest.raises(ValueError):
            nl.add_gate(GateKind.MUX, a, a)

    def test_constants_are_cached(self):
        nl = Netlist()
        assert nl.constant(True) is nl.constant(True)
        assert nl.constant(True) is not nl.constant(False)

    def test_reduce_tree_depth_is_logarithmic(self):
        nl = Netlist()
        nets = [nl.add_input(f"i{k}") for k in range(64)]
        nl.reduce_tree(GateKind.AND, nets)
        assert nl.topological_depth() == 6

    def test_reduce_tree_rejects_empty(self):
        nl = Netlist()
        with pytest.raises(ValueError):
            nl.reduce_tree(GateKind.AND, [])


class TestGateSemantics:
    @pytest.mark.parametrize(
        "kind,inputs,expected",
        [
            (GateKind.AND, (1, 1), 1),
            (GateKind.AND, (1, 0), 0),
            (GateKind.OR, (0, 0), 0),
            (GateKind.OR, (0, 1), 1),
            (GateKind.XOR, (1, 1), 0),
            (GateKind.XOR, (1, 0), 1),
            (GateKind.XNOR, (1, 1), 1),
            (GateKind.NAND, (1, 1), 0),
            (GateKind.NOR, (0, 0), 1),
        ],
    )
    def test_two_input_gates(self, kind, inputs, expected):
        nl = Netlist()
        a, b = nl.add_input("a"), nl.add_input("b")
        out = nl.add_gate(kind, a, b)
        result = nl.simulate({a: bool(inputs[0]), b: bool(inputs[1])})
        assert result.value_of(out) == bool(expected)

    def test_not_and_buf(self):
        nl = Netlist()
        a = nl.add_input("a")
        inv = nl.add_gate(GateKind.NOT, a)
        buf = nl.add_gate(GateKind.BUF, a)
        result = nl.simulate({a: True})
        assert result.value_of(inv) is False
        assert result.value_of(buf) is True

    @pytest.mark.parametrize("sel,a,b,expected", [(1, 1, 0, 1), (0, 1, 0, 0), (1, 0, 1, 0), (0, 0, 1, 1)])
    def test_mux(self, sel, a, b, expected):
        nl = Netlist()
        s, x, y = nl.add_input("s"), nl.add_input("x"), nl.add_input("y")
        out = nl.mux(s, x, y)
        result = nl.simulate({s: bool(sel), x: bool(a), y: bool(b)})
        assert result.value_of(out) == bool(expected)

    def test_wide_and(self):
        nl = Netlist()
        ins = [nl.add_input(f"i{k}") for k in range(5)]
        out = nl.add_gate(GateKind.AND, *ins)
        assert nl.simulate({net: True for net in ins}).value_of(out) is True
        assignment = {net: True for net in ins}
        assignment[ins[3]] = False
        assert nl.simulate(assignment).value_of(out) is False


class TestTiming:
    def test_chain_settle_time_is_linear(self):
        nl = Netlist()
        net = nl.add_input("a")
        for _ in range(10):
            net = nl.add_gate(GateKind.BUF, net)
        result = nl.simulate({nl.inputs[0]: True})
        assert result.settle_time == 10

    def test_tree_settle_time_is_logarithmic(self):
        nl = Netlist()
        nets = [nl.add_input(f"i{k}") for k in range(32)]
        nl.reduce_tree(GateKind.OR, nets)
        result = nl.simulate({nets[5]: True})
        assert result.settle_time == 5

    def test_custom_gate_delay(self):
        nl = Netlist()
        a = nl.add_input("a")
        nl.add_gate(GateKind.BUF, a, delay=7)
        result = nl.simulate({a: True})
        assert result.settle_time == 7

    def test_no_toggles_settles_at_zero(self):
        nl = Netlist()
        a = nl.add_input("a")
        nl.add_gate(GateKind.BUF, a)
        assert nl.simulate({a: False}).settle_time == 0

    def test_oscillator_detected(self):
        nl = Netlist()
        a = nl.add_input("enable")
        # ring oscillator: out = NOT(AND(enable, out))
        feedback = nl.add_input("fb_placeholder")
        inner = nl.add_gate(GateKind.AND, a, feedback)
        out = nl.add_gate(GateKind.NOT, inner)
        # close the loop manually
        gate = inner.driver
        gate.inputs = (a, out)
        out.fanout.append(gate)
        feedback.fanout.clear()
        nl.inputs.remove(feedback)
        with pytest.raises(RuntimeError, match="did not settle"):
            nl.simulate({a: True}, max_time=100)


class TestTopology:
    def test_acyclic_depth(self):
        nl = Netlist()
        a, b = nl.add_input("a"), nl.add_input("b")
        x = nl.add_gate(GateKind.AND, a, b)
        y = nl.add_gate(GateKind.OR, x, b)
        nl.add_gate(GateKind.NOT, y)
        assert nl.topological_depth() == 3
        assert not nl.is_cyclic()

    def test_cyclic_detection(self):
        from repro.circuits.mux_ring import MuxRing

        ring = MuxRing(4, 1)
        assert ring.netlist.is_cyclic()
        with pytest.raises(ValueError, match="cyclic"):
            ring.netlist.topological_depth()

    def test_simulate_rejects_driving_internal_net(self):
        nl = Netlist()
        a = nl.add_input("a")
        out = nl.add_gate(GateKind.BUF, a)
        with pytest.raises(ValueError, match="not a primary input"):
            nl.simulate({out: True})


class TestBusHelpers:
    def test_bus_and_bus_value(self):
        nl = Netlist()
        nets = bus(nl, "data", 8)
        outs = [nl.add_gate(GateKind.BUF, net) for net in nets]
        result = nl.simulate({nets[i]: bool((0xA5 >> i) & 1) for i in range(8)})
        assert bus_value(result, outs) == 0xA5

    def test_simulate_words(self):
        nl = Netlist()
        nets = bus(nl, "data", 4)
        outs = [nl.add_gate(GateKind.NOT, net) for net in nets]
        result = nl.simulate_words({"data": 0b0101})
        assert bus_value(result, outs) == 0b1010

    def test_simulate_words_unknown_bus(self):
        nl = Netlist()
        bus(nl, "data", 2)
        with pytest.raises(KeyError):
            nl.simulate_words({"nope": 1})
