"""Property: the BatchProcessor's register-view walk equals the grid
network's behavioural router — closing the loop between the Ultrascalar
II processor model and the Figure 7/8 circuits."""

from hypothesis import given, settings, strategies as st

from repro.circuits.grid import RegisterBinding, route_arguments
from repro.frontend.branch_predictor import AlwaysNotTaken
from repro.frontend.fetch import FetchUnit
from repro.isa import Instruction, Opcode, Program
from repro.ultrascalar import IdealMemory, ProcessorConfig
from repro.ultrascalar.us2 import BatchProcessor

L = 6
REGS = st.integers(0, L - 1)


@st.composite
def batch_programs(draw):
    count = draw(st.integers(1, 8))
    instructions = [
        Instruction(
            draw(st.sampled_from([Opcode.ADD, Opcode.MUL, Opcode.SUB])),
            rd=draw(REGS),
            rs1=draw(REGS),
            rs2=draw(REGS),
        )
        for _ in range(count)
    ]
    instructions.append(Instruction(Opcode.HALT))
    from repro.isa.registers import MachineSpec

    return Program.from_instructions(instructions, MachineSpec(num_registers=L))


@given(batch_programs(), st.integers(0, 5))
@settings(max_examples=40, deadline=None)
def test_batch_views_equal_grid_router(program, cycles):
    """At an arbitrary mid-execution cycle, the processor's view walk and
    the circuits' route_arguments agree on every argument."""
    config = ProcessorConfig(window_size=8, fetch_width=8)
    processor = BatchProcessor(
        program,
        config,
        predictor=AlwaysNotTaken(),
        memory=IdealMemory(),
        fetch_unit=FetchUnit(program, AlwaysNotTaken(), width=8),
    )
    for _ in range(cycles):
        if processor.halted:
            break
        processor.step()
    if not processor.batch:
        return

    views = processor._register_views()

    initial = [(value, True) for value in processor.registers]
    writes = []
    reads = []
    for station in processor.batch:
        reg = station.writes_register
        if reg is None:
            writes.append(None)
        else:
            writes.append(
                RegisterBinding(
                    reg,
                    station.result if station.result is not None else 0,
                    station.done and station.result is not None,
                )
            )
        inst = station.fetched.instruction
        reads.append([inst.rs1 if inst.rs1 is not None else 0,
                      inst.rs2 if inst.rs2 is not None else 0])

    routed = route_arguments(L, initial, writes, reads)
    for index, station in enumerate(processor.batch):
        inst = station.fetched.instruction
        for port, reg in enumerate((inst.rs1, inst.rs2)):
            if reg is None:
                continue
            grid_value, grid_ready = routed.arguments[index][port]
            assert views[index].ready[reg] == grid_ready
            if grid_ready:
                assert views[index].values[reg] == grid_value
