"""Unit tests for the Instruction value type and its operand invariants."""

import pytest

from repro.isa import Instruction, Opcode


class TestConstruction:
    def test_r3_requires_all_three_registers(self):
        inst = Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)
        assert (inst.rd, inst.rs1, inst.rs2) == (1, 2, 3)

    def test_r3_missing_operand_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, rd=1, rs1=2)

    def test_r3_extra_operand_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3, imm=4)

    def test_none_format_takes_no_operands(self):
        Instruction(Opcode.HALT)
        with pytest.raises(ValueError):
            Instruction(Opcode.HALT, rd=1)

    def test_load_fields(self):
        inst = Instruction(Opcode.LW, rd=4, rs1=5, imm=8)
        assert inst.reads == (5,)
        assert inst.writes == (4,)

    def test_store_fields(self):
        inst = Instruction(Opcode.SW, rs1=5, rs2=4, imm=0)
        assert set(inst.reads) == {4, 5}
        assert inst.writes == ()

    def test_branch_fields(self):
        inst = Instruction(Opcode.BEQ, rs1=1, rs2=2, target=7)
        assert inst.reads == (1, 2)
        assert inst.writes == ()
        assert inst.is_branch and inst.is_control

    def test_jump_is_control_not_branch(self):
        inst = Instruction(Opcode.J, target=0)
        assert inst.is_control and not inst.is_branch


class TestPaperConstraint:
    """The ISA must obey: each instruction reads <= 2 and writes <= 1 registers."""

    @pytest.mark.parametrize("op", list(Opcode))
    def test_reads_at_most_two_writes_at_most_one(self, op):
        inst = _make_any(op)
        assert len(inst.reads) <= 2
        assert len(inst.writes) <= 1


def _make_any(op: Opcode) -> Instruction:
    """Construct an arbitrary valid instruction of opcode *op*."""
    from repro.isa.opcodes import Format

    fmt = op.fmt
    if fmt is Format.R3:
        return Instruction(op, rd=1, rs1=2, rs2=3)
    if fmt is Format.R2:
        return Instruction(op, rd=1, rs1=2)
    if fmt is Format.I2:
        return Instruction(op, rd=1, rs1=2, imm=5)
    if fmt is Format.I1:
        return Instruction(op, rd=1, imm=5)
    if fmt is Format.MEM:
        if op is Opcode.LW:
            return Instruction(op, rd=1, rs1=2, imm=0)
        return Instruction(op, rs1=2, rs2=3, imm=0)
    if fmt is Format.B2:
        return Instruction(op, rs1=1, rs2=2, target=0)
    if fmt is Format.J:
        return Instruction(op, target=0)
    return Instruction(op)


class TestStr:
    def test_r3(self):
        assert str(Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)) == "add r1, r2, r3"

    def test_load(self):
        assert str(Instruction(Opcode.LW, rd=4, rs1=5, imm=8)) == "lw r4, 8(r5)"

    def test_store(self):
        assert str(Instruction(Opcode.SW, rs2=4, rs1=5, imm=0)) == "sw r4, 0(r5)"

    def test_branch(self):
        assert str(Instruction(Opcode.BEQ, rs1=1, rs2=0, target=9)) == "beq r1, r0, @9"

    def test_halt(self):
        assert str(Instruction(Opcode.HALT)) == "halt"


class TestHashability:
    def test_equal_instructions_hash_equal(self):
        a = Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)
        b = Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)
        assert a == b
        assert hash(a) == hash(b)

    def test_usable_in_sets(self):
        insts = {Instruction(Opcode.NOP), Instruction(Opcode.NOP), Instruction(Opcode.HALT)}
        assert len(insts) == 2
