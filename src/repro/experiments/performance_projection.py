"""Experiment E14 — end-to-end performance: IPC x projected clock rate.

The paper compares VLSI complexities because they "have implications
therefore on clock speeds"; combined with the behavioural result that
all three designs extract the same ILP, the end-to-end story is
IPC / clock-period.  This experiment runs the simulators for IPC,
projects clock periods from the layout models, and multiplies — showing
where the hybrid's shorter wires turn into real speedup, and how the
conventional superscalar's quadratic stages collapse at high width.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.clock_period import (
    PerformanceProjection,
    performance,
    project_hybrid,
    project_ultrascalar1,
    project_ultrascalar2,
)
from repro.baseline.complexity import conventional_superscalar_delay
from repro.ultrascalar.vector_engine import VectorRingEngine
from repro.util.tables import Table
from repro.workloads import Workload, random_ilp


#: sweep points the runner executes and the cache keys (kwargs for
#: :func:`report`)
SWEEP_POINTS: list[dict] = [{"sizes": [16, 64, 256, 1024], "L": 32}]


@dataclass
class ProjectionRow:
    """One window size's projection for all designs."""

    n: int
    ipc: float
    us1: PerformanceProjection
    us2: PerformanceProjection
    hybrid: PerformanceProjection
    conventional_period: float

    @property
    def conventional_performance(self) -> float:
        """IPC / conventional critical-stage delay."""
        return self.ipc / self.conventional_period


@dataclass
class ProjectionResult:
    """The whole sweep."""

    rows: list[ProjectionRow]
    L: int

    def hybrid_wins_at_scale(self) -> bool:
        """At the largest n, the hybrid posts the best projection."""
        last = self.rows[-1]
        return last.hybrid.instructions_per_time >= max(
            last.us1.instructions_per_time,
            last.us2.instructions_per_time,
            last.conventional_performance,
        )

    def conventional_collapses(self) -> bool:
        """The conventional projection eventually *falls* as n grows —
        the quadratic wall eats the extra IPC."""
        perf = [row.conventional_performance for row in self.rows]
        return perf[-1] < max(perf)


def run(
    workload: Workload | None = None,
    sizes: list[int] | None = None,
    L: int = 32,
) -> ProjectionResult:
    """Sweep window sizes; IPC from the vector engine, clocks from layouts."""
    workload = workload or random_ilp(3000, 0.35, seed=601)
    sizes = sizes or [16, 64, 256, 1024]
    rows: list[ProjectionRow] = []
    for n in sizes:
        engine = VectorRingEngine(
            workload.program, n, min(n, 64), initial_registers=workload.registers_for()
        )
        ipc = engine.run().ipc
        rows.append(
            ProjectionRow(
                n=n,
                ipc=ipc,
                us1=performance(project_ultrascalar1(n, L), ipc),
                us2=performance(project_ultrascalar2(n, L), ipc),
                hybrid=performance(project_hybrid(n, L), ipc),
                conventional_period=conventional_superscalar_delay(
                    max(2, n // 8), window_size=n, num_registers=L
                ).critical,
            )
        )
    return ProjectionResult(rows=rows, L=L)


def report(sizes: list[int] | None = None, L: int = 32) -> str:
    """The projection table (relative units)."""
    outcome = run(sizes=sizes, L=L)
    table = Table(
        ["window n", "IPC", "US-I perf", "US-II perf", "Hybrid perf", "Conventional perf"],
        title=f"E14 — end-to-end projection: IPC / clock period (relative units, L={outcome.L})",
    )
    scale = 1000.0
    for row in outcome.rows:
        table.add_row(
            [
                row.n,
                round(row.ipc, 2),
                round(scale * row.us1.instructions_per_time, 2),
                round(scale * row.us2.instructions_per_time, 2),
                round(scale * row.hybrid.instructions_per_time, 2),
                round(scale * row.conventional_performance, 2),
            ]
        )
    return table.render()


if __name__ == "__main__":  # pragma: no cover
    print(report())
