"""Property tests with control flow: speculation never corrupts state.

Programs use only *forward* branches (so every program terminates), and
run under deliberately bad predictors to maximize misprediction and
squash traffic.  Architectural state must still match the golden
interpreter exactly.
"""

from hypothesis import given, settings, strategies as st

from repro.frontend.branch_predictor import AlwaysNotTaken, AlwaysTaken, BimodalPredictor
from repro.isa import Instruction, Opcode, Program
from repro.isa.interpreter import MachineState, run_program
from repro.ultrascalar import IdealMemory, ProcessorConfig, make_hybrid, make_ultrascalar1, make_ultrascalar2

REGS = st.integers(0, 5)


@st.composite
def branchy_programs(draw):
    """Random programs with forward branches and jumps (always terminate)."""
    count = draw(st.integers(4, 24))
    instructions: list[Instruction] = []
    for i in range(count):
        kind = draw(st.integers(0, 4))
        if kind == 0:
            instructions.append(
                Instruction(Opcode.LI, rd=draw(REGS), imm=draw(st.integers(0, 20)))
            )
        elif kind == 1:
            instructions.append(
                Instruction(Opcode.ADD, rd=draw(REGS), rs1=draw(REGS), rs2=draw(REGS))
            )
        elif kind == 2:
            instructions.append(
                Instruction(Opcode.SUB, rd=draw(REGS), rs1=draw(REGS), rs2=draw(REGS))
            )
        elif kind == 3:
            op = draw(st.sampled_from([Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE]))
            target = draw(st.integers(i + 1, count))  # strictly forward
            instructions.append(
                Instruction(op, rs1=draw(REGS), rs2=draw(REGS), target=target)
            )
        else:
            target = draw(st.integers(i + 1, count))
            instructions.append(Instruction(Opcode.J, target=target))
    instructions.append(Instruction(Opcode.HALT))
    return Program.from_instructions(instructions)


PREDICTORS = [AlwaysTaken, AlwaysNotTaken, lambda: BimodalPredictor(size=16)]


@given(branchy_programs(), st.sampled_from([0, 1, 2]), st.sampled_from([2, 5, 8]))
@settings(max_examples=60, deadline=None)
def test_us1_speculation_preserves_state(program, predictor_index, window):
    golden = run_program(program, state=MachineState.zeroed(32))
    config = ProcessorConfig(window_size=window, fetch_width=4)
    processor = make_ultrascalar1(
        program, config, predictor=PREDICTORS[predictor_index](), memory=IdealMemory()
    )
    result = processor.run()
    assert result.registers == golden.state.registers
    assert [s.static_index for s in result.committed] == [
        s.static_index for s in golden.trace
    ]


@given(branchy_programs(), st.sampled_from([0, 1]))
@settings(max_examples=40, deadline=None)
def test_us2_speculation_preserves_state(program, predictor_index):
    golden = run_program(program, state=MachineState.zeroed(32))
    config = ProcessorConfig(window_size=8, fetch_width=4)
    processor = make_ultrascalar2(
        program, config, predictor=PREDICTORS[predictor_index](), memory=IdealMemory()
    )
    result = processor.run()
    assert result.registers == golden.state.registers


@given(branchy_programs())
@settings(max_examples=40, deadline=None)
def test_hybrid_speculation_preserves_state(program):
    golden = run_program(program, state=MachineState.zeroed(32))
    config = ProcessorConfig(window_size=8, fetch_width=4)
    processor = make_hybrid(
        program, 4, config, predictor=AlwaysTaken(), memory=IdealMemory()
    )
    result = processor.run()
    assert result.registers == golden.state.registers


@given(branchy_programs())
@settings(max_examples=40, deadline=None)
def test_wrong_path_work_never_commits(program):
    """Every committed instruction must appear in the golden trace, in
    order, even under maximal misprediction."""
    golden = run_program(program, state=MachineState.zeroed(32))
    config = ProcessorConfig(window_size=8, fetch_width=8)
    processor = make_ultrascalar1(
        program, config, predictor=AlwaysTaken(), memory=IdealMemory()
    )
    result = processor.run()
    got = [(s.static_index, s.result, s.taken) for s in result.committed]
    want = [(s.static_index, s.result, s.taken) for s in golden.trace]
    assert got == want


@given(branchy_programs(), st.sampled_from([1, 2, 4]))
@settings(max_examples=30, deadline=None)
def test_extensions_with_speculation(program, num_alus):
    """Shared ALUs + forwarding + self-timed, all at once, under
    mispredicting prediction — still exact."""
    golden = run_program(program, state=MachineState.zeroed(32))
    config = ProcessorConfig(
        window_size=8, fetch_width=4, num_alus=num_alus,
        store_forwarding=True, self_timed=True,
    )
    processor = make_ultrascalar1(
        program, config, predictor=AlwaysNotTaken(), memory=IdealMemory()
    )
    result = processor.run()
    assert result.registers == golden.state.registers
