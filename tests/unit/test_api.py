"""Unit tests for the stable :mod:`repro.api` facade."""

import pytest

from repro.api import (
    CountingTracer,
    Processor,
    ProcessorConfig,
    ProcessorResult,
    TimingRecord,
    build_processor,
    run,
)
from repro.isa import assemble
from repro.workloads import paper_sequence

SOURCE = """
    addi r1, r0, 3
    addi r2, r1, 4
    halt
"""


class TestBuildProcessor:
    def test_canonical_kinds(self):
        for kind in ("us1", "us2", "hybrid"):
            processor = build_processor(kind)
            assert isinstance(processor, Processor)
            assert processor.kind == kind

    def test_aliases_normalize(self):
        assert build_processor("ultrascalar1").kind == "us1"
        assert build_processor("Ring").kind == "us1"
        assert build_processor("ULTRASCALAR2").kind == "us2"
        assert build_processor("batch").kind == "us2"

    def test_unknown_kind_suggests(self):
        with pytest.raises(ValueError, match="did you mean.*hybrid"):
            build_processor("hybird")

    def test_unknown_kind_lists_choices(self):
        with pytest.raises(ValueError, match="'us1', 'us2', 'hybrid'"):
            build_processor("zzz")

    def test_config_defaults(self):
        assert build_processor("us1").config == ProcessorConfig()


class TestRun:
    def test_run_returns_processor_result(self):
        result = build_processor("us1").run(assemble(SOURCE))
        assert isinstance(result, ProcessorResult)
        assert result.registers[2] == 7
        assert all(isinstance(t, TimingRecord) for t in result.timings)

    def test_handle_is_reusable(self):
        processor = build_processor("us2", ProcessorConfig(window_size=4))
        first = processor.run(assemble(SOURCE))
        second = processor.run(assemble(SOURCE))
        assert first.cycles == second.cycles
        assert first.registers == second.registers

    def test_all_kinds_agree_on_architectural_state(self):
        program = assemble(SOURCE)
        results = [build_processor(k).run(program) for k in ("us1", "us2", "hybrid")]
        assert len({tuple(r.registers) for r in results}) == 1

    def test_tracer_keyword_fills_stats(self):
        tracer = CountingTracer()
        result = build_processor("us1").run(assemble(SOURCE), tracer=tracer)
        assert result.stats
        assert result.stats == tracer.snapshot()
        assert result.stats["commit.instructions"] == 3

    def test_initial_registers_and_oneshot(self):
        workload = paper_sequence()
        result = run(
            workload.program,
            kind="hybrid",
            cluster_size=2,
            initial_registers=workload.registers_for(),
        )
        assert result.halted
        assert result.ipc > 0

    def test_oneshot_matches_handle(self):
        program = assemble(SOURCE)
        assert (
            run(program, kind="us1").cycles
            == build_processor("us1").run(program).cycles
        )
