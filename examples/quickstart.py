"""Quickstart: assemble a program and run it on an Ultrascalar I.

Usage::

    python examples/quickstart.py

Covers the core public API in ~40 lines: the assembler, the processor
factory, and the result object (cycles, IPC, timing diagram, final
state).
"""

from repro.api import ProcessorConfig, build_processor
from repro.isa import assemble

SOURCE = """
    # compute sum of squares 1^2 + 2^2 + ... + 10^2 into r3
        li   r1, 10          # counter
        li   r3, 0           # accumulator
    loop:
        mul  r2, r1, r1      # r2 = r1^2   (3-cycle multiply)
        add  r3, r3, r2
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
"""


def main() -> None:
    program = assemble(SOURCE)
    print("Program:")
    print(program.disassemble())
    print()

    config = ProcessorConfig(window_size=16, fetch_width=4)
    processor = build_processor("us1", config)
    result = processor.run(program)

    print(f"cycles:            {result.cycles}")
    print(f"instructions:      {result.instructions_committed}")
    print(f"IPC:               {result.ipc:.2f}")
    print(f"mispredictions:    {result.mispredictions}")
    print(f"sum of squares:    {result.registers[3]}  (expected {sum(i*i for i in range(1, 11))})")
    print()
    print("Timing diagram (first 20 committed instructions):")
    trimmed = result.timings[:20]
    result.timings = trimmed
    print(result.timing_diagram())


if __name__ == "__main__":
    main()
