"""Unit tests for the 32-bit binary encoding."""

import pytest

from repro.isa import EncodingError, Instruction, Opcode, decode_instruction, encode_instruction
from repro.isa.opcodes import Format


def _representatives() -> list[Instruction]:
    insts = []
    for op in Opcode:
        fmt = op.fmt
        if fmt is Format.R3:
            insts.append(Instruction(op, rd=31, rs1=0, rs2=17))
        elif fmt is Format.R2:
            insts.append(Instruction(op, rd=1, rs1=30))
        elif fmt is Format.I2:
            insts.append(Instruction(op, rd=2, rs1=3, imm=-32768))
            insts.append(Instruction(op, rd=2, rs1=3, imm=32767))
        elif fmt is Format.I1:
            insts.append(Instruction(op, rd=4, imm=-1))
        elif fmt is Format.MEM:
            if op is Opcode.LW:
                insts.append(Instruction(op, rd=5, rs1=6, imm=100))
            else:
                insts.append(Instruction(op, rs2=5, rs1=6, imm=-100))
        elif fmt is Format.B2:
            insts.append(Instruction(op, rs1=7, rs2=8, target=65535))
        elif fmt is Format.J:
            insts.append(Instruction(op, target=(1 << 26) - 1))
        else:
            insts.append(Instruction(op))
    return insts


class TestRoundTrip:
    @pytest.mark.parametrize("inst", _representatives(), ids=str)
    def test_encode_decode_identity(self, inst):
        word = encode_instruction(inst)
        assert 0 <= word < (1 << 32)
        assert decode_instruction(word) == inst


class TestLimits:
    def test_register_too_large(self):
        with pytest.raises(EncodingError, match="r33"):
            encode_instruction(Instruction(Opcode.ADD, rd=33, rs1=0, rs2=0))

    def test_immediate_too_large(self):
        with pytest.raises(EncodingError, match="immediate"):
            encode_instruction(Instruction(Opcode.ADDI, rd=1, rs1=1, imm=40000))

    def test_immediate_too_negative(self):
        with pytest.raises(EncodingError, match="immediate"):
            encode_instruction(Instruction(Opcode.ADDI, rd=1, rs1=1, imm=-40000))

    def test_branch_target_too_large(self):
        with pytest.raises(EncodingError, match="target"):
            encode_instruction(Instruction(Opcode.BEQ, rs1=0, rs2=0, target=1 << 16))

    def test_jump_target_fits_26_bits(self):
        word = encode_instruction(Instruction(Opcode.J, target=(1 << 26) - 1))
        assert decode_instruction(word).target == (1 << 26) - 1


class TestDecodeErrors:
    def test_rejects_unknown_opcode(self):
        with pytest.raises(EncodingError, match="unknown opcode"):
            decode_instruction(63 << 26)

    def test_rejects_out_of_range_word(self):
        with pytest.raises(EncodingError):
            decode_instruction(1 << 32)
        with pytest.raises(EncodingError):
            decode_instruction(-1)


class TestDistinctness:
    def test_different_instructions_encode_differently(self):
        words = {encode_instruction(inst) for inst in _representatives()}
        assert len(words) == len(_representatives())
