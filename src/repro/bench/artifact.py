"""The ``repro-bench/1`` artifact: one benchmark run, machine-readable.

Mirrors the conventions of ``repro-runner/2`` and ``repro-verify/1``
(stable field order, validation returning a problem list rather than
raising).  Unlike those artifacts this one is *not* deterministic — the
timings are the payload — but its structure is: two runs of the same
tree produce identical names, groups, units, and metadata, so the
baseline comparator can match entries by name.  Schema::

    {
      "schema": "repro-bench/1",
      "version": "<repro.__version__>",
      "mode": "quick" | "full",
      "host": {
        "python": "3.12.1", "implementation": "CPython",
        "platform": "...", "machine": "...", "cpu_count": <int>,
        "numpy": "..." | null
      },
      "protocol": {
        "clock": "perf_counter", "gc_disabled": true,
        "warmup": <int>, "repeats": <int>
      },
      "totals": {"benchmarks": <int>, "wall_time_s": <float>},
      "results": [
        {
          "name": "engine.us1.w8", "group": "engine",
          "title": "<display title>", "units": "s",
          "metadata": {...},            # structural parameters
          "repeats_s": [<float>, ...],  # every timed repeat, in order
          "best_s": <float>, "median_s": <float>, "mean_s": <float>,
          "stats": {"<counter>": <int>, ...},  # telemetry join ({} if none)
          "rates": {"sim_cycles_per_s": <float>, ...}  # {} if no counters
        }, ...
      ]
    }

``stats`` comes from an extra *untimed* pass inside a telemetry
session, so the timed repeats measure exactly the untraced hot path;
``rates`` joins those counters with the median repeat (simulated cycles
per host-second — the number an optimisation PR moves).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro._version import __version__
from repro.bench.timing import BenchRecord, host_fingerprint, protocol_description

BENCH_SCHEMA = "repro-bench/1"


def build_bench_artifact(
    records: list[BenchRecord],
    *,
    mode: str,
    repeats: int,
    warmup: int,
    wall_time_s: float = 0.0,
) -> dict[str, Any]:
    """Assemble the artifact document for one ``bench`` invocation."""
    return {
        "schema": BENCH_SCHEMA,
        "version": __version__,
        "mode": mode,
        "host": host_fingerprint(),
        "protocol": protocol_description(repeats, warmup),
        "totals": {
            "benchmarks": len(records),
            "wall_time_s": round(wall_time_s, 6),
        },
        "results": [
            {
                "name": r.name,
                "group": r.group,
                "title": r.title,
                "units": "s",
                "metadata": r.metadata,
                "repeats_s": [round(t, 9) for t in r.timing.repeats],
                "best_s": round(r.timing.best_s, 9),
                "median_s": round(r.timing.median_s, 9),
                "mean_s": round(r.timing.mean_s, 9),
                "stats": r.stats,
                "rates": {k: round(v, 3) for k, v in r.rates.items()},
            }
            for r in records
        ],
    }


def write_bench_artifact(path: str | Path, document: dict[str, Any]) -> Path:
    """Write the artifact JSON to *path* (parent dirs created)."""
    path = Path(path)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return path


def load_bench_artifact(path: str | Path) -> dict[str, Any]:
    """Read and validate an artifact; raises ``ValueError`` on problems."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    problems = validate_bench_artifact(document)
    if problems:
        raise ValueError(f"{path}: " + "; ".join(problems))
    return document


def validate_bench_artifact(document: Any) -> list[str]:
    """Return schema problems with a ``repro-bench/1`` artifact.

    An empty list means the document is well formed (the contract the
    CI bench-smoke job checks before trusting or uploading a run).
    """
    problems: list[str] = []
    if not isinstance(document, dict):
        return ["artifact is not a JSON object"]
    if document.get("schema") != BENCH_SCHEMA:
        problems.append(
            f"schema is {document.get('schema')!r}, expected {BENCH_SCHEMA!r}"
        )
    for key in ("version", "mode", "host", "protocol", "totals", "results"):
        if key not in document:
            problems.append(f"missing top-level key {key!r}")
    host = document.get("host")
    if isinstance(host, dict):
        for key in ("python", "platform", "cpu_count"):
            if key not in host:
                problems.append(f"host missing key {key!r}")
    elif host is not None:
        problems.append("host is not an object")
    totals = document.get("totals")
    if isinstance(totals, dict):
        if not isinstance(totals.get("benchmarks"), int):
            problems.append("totals.benchmarks is not an int")
    elif totals is not None:
        problems.append("totals is not an object")
    results = document.get("results")
    if not isinstance(results, list):
        problems.append("results is not a list")
        return problems
    seen: set[str] = set()
    for i, entry in enumerate(results):
        if not isinstance(entry, dict):
            problems.append(f"results[{i}] is not an object")
            continue
        for key in ("name", "group", "units", "metadata", "repeats_s",
                    "best_s", "median_s", "stats", "rates"):
            if key not in entry:
                problems.append(f"results[{i}] missing key {key!r}")
        name = entry.get("name")
        if isinstance(name, str):
            if name in seen:
                problems.append(f"results[{i}] duplicates name {name!r}")
            seen.add(name)
        repeats = entry.get("repeats_s")
        if repeats is not None:
            if not (
                isinstance(repeats, list)
                and repeats
                and all(isinstance(t, (int, float)) and t >= 0 for t in repeats)
            ):
                problems.append(
                    f"results[{i}].repeats_s is not a non-empty list of "
                    "non-negative numbers"
                )
        stats = entry.get("stats")
        if stats is not None and not (
            isinstance(stats, dict)
            and all(
                isinstance(k, str) and isinstance(v, int) for k, v in stats.items()
            )
        ):
            problems.append(f"results[{i}].stats is not a str->int mapping")
    return problems
