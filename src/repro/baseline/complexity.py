"""Conventional-superscalar critical-path models (Palacharla/Jouppi/Smith).

The paper's motivation: "the delays through many of today's circuits
grow quadratically with issue width ... and with window size ... all
the published circuits are at least quadratic delay [12, 3, 4]."
Reference [12] is Palacharla, Jouppi & Smith, *Complexity-Effective
Superscalar Processors* (ISCA '97), which derives delay expressions for
the rename, wakeup, select, and bypass stages of a conventional
out-of-order core.  Each stage's delay has the form
``c0 + c1 * IW + c2 * IW**2`` (with window size entering the wakeup
quadratic), where IW is the issue width.

We reproduce the *structure* of those expressions with normalized
technology-independent coefficients (the published constants are
process-specific).  The experiments only use the growth shapes: the
quadratic conventional curve against the Ultrascalar's Θ(log n) gate
delay and Θ(sqrt(n L)) wire delay.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ConventionalDelays:
    """Per-stage delays (arbitrary units) of a conventional OoO core."""

    rename: float
    wakeup: float
    select: float
    bypass: float

    @property
    def critical(self) -> float:
        """The pipeline's cycle time is set by the slowest stage."""
        return max(self.rename, self.wakeup, self.select, self.bypass)


def rename_delay(issue_width: int, num_registers: int) -> float:
    """Rename stage: a RAM/CAM map table with IW ports.

    Palacharla et al. model the delay as quadratic in issue width (wire
    load on the map-table word lines and the dependence-check comparators
    grow with IW), plus a log term from decoding L registers.
    """
    _check(issue_width, num_registers)
    return 1.0 + 0.5 * math.log2(max(2, num_registers)) + 0.35 * issue_width + 0.03 * issue_width**2


def wakeup_delay(issue_width: int, window_size: int) -> float:
    """Wakeup: tag broadcast across the issue window's CAM.

    Delay grows with window size (wire length down the window) times
    issue width (number of result tags broadcast per cycle): the
    published model's dominant term is ``IW * WS`` with an additional
    quadratic wire component in each.
    """
    _check(issue_width, window_size)
    return 0.5 + 0.02 * issue_width * window_size + 0.01 * window_size**2 / 16.0


def select_delay(window_size: int) -> float:
    """Select: arbitration tree over the window (logarithmic)."""
    if window_size < 1:
        raise ValueError("window size must be positive")
    return 0.5 + 0.8 * math.log2(max(2, window_size))


def bypass_delay(issue_width: int) -> float:
    """Bypass: result buses spanning IW functional units — wire-dominated
    and quadratic in issue width (bus length x fanout both grow)."""
    if issue_width < 1:
        raise ValueError("issue width must be positive")
    return 0.25 + 0.05 * issue_width**2


def conventional_superscalar_delay(
    issue_width: int, window_size: int | None = None, num_registers: int = 32
) -> ConventionalDelays:
    """All four stage delays for a conventional core.

    ``window_size`` defaults to ``8 x issue_width`` ("in most modern
    processors the window size is an order of magnitude larger than the
    issue width").
    """
    if window_size is None:
        window_size = 8 * issue_width
    return ConventionalDelays(
        rename=rename_delay(issue_width, num_registers),
        wakeup=wakeup_delay(issue_width, window_size),
        select=select_delay(window_size),
        bypass=bypass_delay(issue_width),
    )


def _check(a: int, b: int) -> None:
    if a < 1 or b < 1:
        raise ValueError("parameters must be positive")
