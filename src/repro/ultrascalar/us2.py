"""The Ultrascalar II processor: a non-wrap-around batch datapath.

"The Ultrascalar II as described is less efficient than the
Ultrascalar I because its datapath does not wrap around.  As a result,
stations idle waiting for everyone to finish before refilling."

The model: up to ``n`` instructions fill a linear array of stations (the
batch).  Arguments route through the grid network semantics — the
nearest earlier writer in the batch, else the architectural register
file (:func:`repro.circuits.grid.route_arguments` is the circuit-level
equivalent, property-tested against this walk).  Instructions issue out
of order as their arguments become ready; when every station in the
batch has finished, the outgoing register values latch into the
register file and the next batch begins on the following cycle.

A branch misprediction squashes the younger stations of the batch and
the corrected path refills those (never-used) stations; the batch still
ends only when all of its stations have finished.
"""

from __future__ import annotations

from repro.circuits.prefix import segmented_scan
from repro.frontend.branch_predictor import BranchPredictor
from repro.frontend.fetch import FetchUnit
from repro.isa.interpreter import StepOutcome, alu_result, branch_taken
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.telemetry.session import resolve_tracer
from repro.telemetry.tracer import Tracer
from repro.ultrascalar.memsys import MemorySystem
from repro.ultrascalar.processor import ProcessorConfig, ProcessorResult, TimingRecord
from repro.ultrascalar.ring import _RegView
from repro.ultrascalar.station import Station, StationState
from repro.util.bitops import to_unsigned, tree_level_distance


class BatchProcessor:
    """See module docstring."""

    def __init__(
        self,
        program: Program,
        config: ProcessorConfig,
        predictor: BranchPredictor,
        memory: MemorySystem,
        initial_registers: list[int] | None = None,
        fetch_unit: FetchUnit | None = None,
        tracer: Tracer | None = None,
        cycle_hook=None,
    ):
        self.program = program
        self.config = config
        self.predictor = predictor
        self.memory = memory
        self.n = config.window_size
        self.L = program.spec.num_registers

        self.registers = list(initial_registers or [0] * self.L)
        if len(self.registers) != self.L:
            raise ValueError("initial register file has wrong size")

        self.tracer = resolve_tracer(tracer)
        self._tracing = self.tracer.enabled
        # opt-in per-cycle observer (see repro.verify.invariants); None in
        # normal runs, so the only cost is one attribute test per cycle
        self._cycle_hook = cycle_hook
        self.fetch = fetch_unit or FetchUnit(program, predictor, width=config.fetch_width)
        self.batch: list[Station] = []
        self.batch_closed = False  # HALT fetched into this batch
        self.commit_index = 0
        self.cycle = 0
        self.seq = 0
        self.committed: list[StepOutcome] = []
        self.timings: list[TimingRecord] = []
        self.halted = False
        self.squashed = 0
        self.mispredictions = 0
        self.batches_executed = 0
        self._cancelled_requests: set[int] = set()

    # ------------------------------------------------------------------

    def _phase_fetch(self) -> None:
        if self.batch_closed or self.fetch.stalled():
            if self._tracing:
                if self.fetch.stalled():
                    self.tracer.count("fetch.stall_cycles.starved")
                else:
                    self.tracer.count("fetch.stall_cycles.window_full")
            return
        budget = min(self.config.fetch_width, self.n - len(self.batch))
        if budget <= 0:
            if self._tracing:
                self.tracer.count("fetch.stall_cycles.window_full")
            return
        fetched_cycle = self.fetch.fetch_cycle(budget=budget)
        if self._tracing and fetched_cycle:
            self.tracer.count("fetch.cycles_active")
            self.tracer.count("fetch.instructions", len(fetched_cycle))
        for fetched in fetched_cycle:
            station = Station(len(self.batch))
            station.load(fetched, self.seq, self.cycle)
            self.seq += 1
            self.batch.append(station)
            if fetched.instruction.is_halt:
                self.batch_closed = True

    def _register_views(self) -> list[_RegView]:
        """Each station's view: the grid network's routed arguments."""
        track_writers = self._tracing
        values = list(self.registers)
        ready = [True] * self.L
        writers: list[Station | None] = [None] * self.L
        views: list[_RegView] = []
        for station in self.batch:
            views.append(
                _RegView(
                    values=list(values),
                    ready=list(ready),
                    writers=list(writers) if track_writers else None,
                )
            )
            reg = station.writes_register
            if reg is not None:
                if station.done and station.result is not None:
                    values[reg] = station.result
                    ready[reg] = True
                else:
                    values[reg] = 0
                    ready[reg] = False
                if track_writers:
                    writers[reg] = station
        return views

    def _ordering_conditions(self) -> tuple[list[bool], list[bool], list[bool]]:
        """Noncyclic segmented-AND conditions (prior batches are all done)."""
        store_ok, mem_ok, branch_ok = [], [], []
        for station in self.batch:
            inst = station.fetched.instruction
            store_ok.append(not inst.is_store or station.done)
            mem_ok.append(not inst.is_memory or station.done)
            branch_ok.append(not inst.is_control or station.done)
        no_segments = [False] * len(self.batch)
        and_op = lambda a, b: a and b  # noqa: E731
        return (
            segmented_scan(store_ok, no_segments, and_op, True),
            segmented_scan(mem_ok, no_segments, and_op, True),
            segmented_scan(branch_ok, no_segments, and_op, True),
        )

    def _trace_issue(self, station: Station, view: _RegView, inst) -> None:
        """Record forwarding provenance and memory traffic for one issue."""
        for reg in (inst.rs1, inst.rs2):
            if reg is None:
                continue
            writer = view.writers[reg] if view.writers is not None else None
            if writer is not None:
                hops = tree_level_distance(writer.index, station.index)
                self.tracer.count("forward.from_station")
                self.tracer.count(f"forward.hops.{hops}")
                self.tracer.count("forward.latency_cycles")
            else:
                self.tracer.count("forward.from_regfile")
        if inst.is_load:
            self.tracer.count("mem.loads")
        elif inst.is_store:
            self.tracer.count("mem.stores")

    def _phase_issue(self, views: list[_RegView]) -> None:
        stores_done, mem_done, branches_resolved = self._ordering_conditions()
        issued = 0
        for idx, station in enumerate(self.batch):
            if station.state is not StationState.WAITING:
                continue
            inst = station.fetched.instruction
            view = views[idx]
            operands = []
            all_ready = True
            for reg in (inst.rs1, inst.rs2):
                if reg is None:
                    continue
                if not view.ready[reg]:
                    all_ready = False
                    break
                operands.append(view.values[reg])
            if not all_ready:
                continue
            if inst.is_load and not stores_done[idx]:
                continue
            if inst.is_store and not (mem_done[idx] and branches_resolved[idx]):
                continue
            station.operands = tuple(operands)
            station.issue_cycle = self.cycle
            issued += 1
            if self._tracing:
                self._trace_issue(station, view, inst)
            if inst.is_load:
                station.address = to_unsigned(operands[0] + inst.imm)
                station.memory_request_id = self.memory.submit_load(
                    station.address, leaf=station.index
                )
                station.state = StationState.MEMORY
            elif inst.is_store:
                station.address = to_unsigned(operands[0] + inst.imm)
                station.memory_request_id = self.memory.submit_store(
                    station.address, operands[1], leaf=station.index
                )
                station.state = StationState.MEMORY
            else:
                station.state = StationState.EXECUTING
                station.remaining = self.config.latencies.latency_of(inst.op)
        if self._tracing and issued:
            self.tracer.count("issue.cycles_active")
            self.tracer.count("issue.instructions", issued)

    def _phase_execute(self) -> None:
        for station in list(self.batch):
            if station.state is not StationState.EXECUTING:
                continue
            station.remaining -= 1
            if station.remaining > 0:
                continue
            inst = station.fetched.instruction
            station.state = StationState.DONE
            station.complete_cycle = self.cycle
            op = inst.op
            if inst.is_branch:
                station.taken = branch_taken(op, station.operands[0], station.operands[1])
                actual_next = inst.target if station.taken else station.fetched.static_index + 1
                if station.taken != station.fetched.predicted_taken:
                    self._mispredict(station, actual_next)
                    return
            elif op is Opcode.J:
                station.taken = True
            elif op in (Opcode.HALT, Opcode.NOP):
                pass
            else:
                station.result = alu_result(
                    op,
                    station.operands[0] if station.operands else 0,
                    station.operands[1] if len(station.operands) > 1 else 0,
                    inst.imm,
                )

    def _mispredict(self, station: Station, actual_next: int) -> None:
        self.mispredictions += 1
        position = self.batch.index(station)
        for squashed in self.batch[position + 1 :]:
            if squashed.memory_request_id is not None and not squashed.done:
                self._cancelled_requests.add(squashed.memory_request_id)
            self.squashed += 1
        del self.batch[position + 1 :]
        self.batch_closed = False
        self.seq = station.seq + 1
        self.fetch.redirect(actual_next)

    def _phase_memory(self) -> None:
        completions = self.memory.tick()
        if not completions:
            return
        by_request = {
            station.memory_request_id: station
            for station in self.batch
            if station.state is StationState.MEMORY
        }
        for request_id, value in completions.items():
            if request_id in self._cancelled_requests:
                self._cancelled_requests.discard(request_id)
                continue
            station = by_request.get(request_id)
            if station is None:
                continue
            station.state = StationState.DONE
            station.complete_cycle = self.cycle
            if station.fetched.instruction.is_load:
                station.result = value

    def _phase_commit(self) -> None:
        """Commit in order; recycle the batch when everyone has finished."""
        while self.commit_index < len(self.batch):
            station = self.batch[self.commit_index]
            if not station.done:
                break
            inst = station.fetched.instruction
            reg = station.writes_register
            if reg is not None and station.result is not None:
                self.registers[reg] = station.result
            next_pc = station.fetched.static_index + 1
            if inst.is_control and station.taken:
                next_pc = inst.target
            self.committed.append(
                StepOutcome(
                    static_index=station.fetched.static_index,
                    instruction=inst,
                    operand_values=station.operands,
                    result=station.result,
                    address=station.address,
                    taken=station.taken,
                    next_pc=next_pc,
                )
            )
            self.timings.append(
                TimingRecord(
                    seq=station.seq,
                    static_index=station.fetched.static_index,
                    instruction=inst,
                    fetch_cycle=station.fetch_cycle,
                    issue_cycle=station.issue_cycle,
                    complete_cycle=station.complete_cycle,
                    commit_cycle=self.cycle,
                )
            )
            if inst.is_branch:
                self.predictor.update(station.fetched.static_index, bool(station.taken))
            if inst.is_halt:
                self.halted = True
            self.commit_index += 1
            if self._tracing:
                self.tracer.count("commit.instructions")
                self.tracer.event(
                    str(inst),
                    cat="instruction",
                    ts=station.issue_cycle,
                    dur=station.complete_cycle - station.issue_cycle + 1,
                    tid=station.index,
                    seq=station.seq,
                    static_index=station.fetched.static_index,
                    fetch_cycle=station.fetch_cycle,
                    commit_cycle=self.cycle,
                )

        # Batch recycles only when completely done AND it cannot grow.
        batch_full = len(self.batch) >= self.n
        no_more = self.fetch.stalled() or self.batch_closed
        if self.batch and self.commit_index == len(self.batch) and (batch_full or no_more):
            if self._tracing:
                self.tracer.count("fetch.refills.whole_batch")
                self.tracer.count("fetch.refilled_stations", len(self.batch))
            self.batch = []
            self.commit_index = 0
            self.batch_closed = False
            self.batches_executed += 1

    # ------------------------------------------------------------------

    def step(self) -> None:
        """Advance one clock cycle."""
        self._phase_fetch()
        if self._tracing:
            self.tracer.count("cycles")
            self.tracer.count("commit.window_occupancy", len(self.batch))
        views = self._register_views()
        self._phase_issue(views)
        self._phase_execute()
        self._phase_memory()
        self._phase_commit()
        if self._cycle_hook is not None:
            self._cycle_hook(self)
        self.cycle += 1

    def _idle(self) -> bool:
        return self.fetch.stalled() and not self.batch

    def run(self) -> ProcessorResult:
        """Run to completion (HALT committed, or program exhausted)."""
        while not self.halted and not self._idle():
            if self.cycle >= self.config.max_cycles:
                raise RuntimeError(f"exceeded max_cycles={self.config.max_cycles}")
            self.step()
        if self._tracing:
            self.tracer.count("commit.squashed", self.squashed)
            self.tracer.count("commit.mispredictions", self.mispredictions)
            memory_counters = getattr(self.memory, "counters", None)
            if memory_counters is not None:
                for name, value in memory_counters().items():
                    self.tracer.count(name, value)
            for name, value in self.fetch.counters().items():
                self.tracer.count(name, value)
        return ProcessorResult(
            cycles=self.cycle,
            committed=self.committed,
            registers=list(self.registers),
            memory=self.memory.final_state(),
            timings=self.timings,
            halted=self.halted,
            squashed=self.squashed,
            mispredictions=self.mispredictions,
            stats=self.tracer.snapshot(),
        )
