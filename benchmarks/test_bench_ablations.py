"""Ablations of the design choices DESIGN.md §5 calls out.

* CSPP tree radix (binary vs 4-ary): constant factor, not asymptotics.
* Ultrascalar II mixed layout strategy: same asymptotics as linear,
  smaller constants than the full tree blow-up.
* Hybrid cluster refill (whole-cluster) vs per-station refill:
  throughput cost of the clustered deallocation.
* Shared-ALU pool size: window size decoupled from issue width
  (Ultrascalar Memo 2).
* Memory renaming (store-forwarding): bandwidth reduction (Section 7).
* Self-timed operation: locality sensitivity (Section 7).
"""

from repro.analysis.fitting import fit_exponent
from repro.circuits.cspp import build_copy_cspp
from repro.ultrascalar import IdealMemory, ProcessorConfig, make_hybrid, make_ultrascalar1
from repro.util.tables import Table
from repro.vlsi.grid_layout import Ultrascalar2Layout
from repro.workloads import (
    independent_ops,
    random_ilp,
    spaced_chain,
    store_load_pairs,
)


def _run(workload, factory=make_ultrascalar1, cluster=None, load_latency=1, **config_kwargs):
    config = ProcessorConfig(window_size=16, fetch_width=8, **config_kwargs)
    memory = IdealMemory(load_latency=load_latency)
    memory.load_image(workload.memory_image)
    if cluster is not None:
        processor = make_hybrid(
            workload.program, cluster, config, memory=memory,
            initial_registers=workload.registers_for(),
        )
    else:
        processor = factory(
            workload.program, config, memory=memory,
            initial_registers=workload.registers_for(),
        )
    return processor.run()


def test_bench_cspp_radix(once):
    """Radix 4 roughly halves the level count; growth stays logarithmic."""

    def sweep():
        sizes = [16, 64, 256]
        rows = []
        for n in sizes:
            stimulus = [1] * n
            segments = [True] + [False] * (n - 1)
            binary = build_copy_cspp(n, 1, radix=2).settle_time(stimulus, segments)
            quad = build_copy_cspp(n, 1, radix=4).settle_time(stimulus, segments)
            rows.append((n, binary, quad))
        return rows

    rows = once(sweep)
    table = Table(["n", "radix-2 settle", "radix-4 settle"], title="CSPP radix ablation")
    for row in rows:
        table.add_row(list(row))
    print()
    print(table.render())
    sizes = [r[0] for r in rows]
    assert fit_exponent(sizes, [r[1] for r in rows]) < 0.6  # both logarithmic
    assert fit_exponent(sizes, [r[2] for r in rows]) < 0.6
    # finding: the 4-ary tree matches the H-tree's 4-way floorplan but,
    # with serial combining inside each node, costs ~1.5x the binary
    # tree's gate delay — radix is a constants trade-off, not asymptotic
    for _, binary, quad in rows:
        assert binary <= quad <= 2 * binary


def test_bench_us2_layout_variants(once):
    """linear < mixed < tree side length; mixed keeps linear's growth."""

    def sweep():
        sizes = [256, 1024, 4096]
        return {
            variant: [
                Ultrascalar2Layout(n, 32, variant=variant).side_length() for n in sizes
            ]
            for variant in ("linear", "mixed", "tree")
        }, [256, 1024, 4096]

    sides, sizes = once(sweep)
    table = Table(["n", "linear", "mixed", "tree"], title="US-II layout variant ablation (side, tracks)")
    for i, n in enumerate(sizes):
        table.add_row([n, round(sides["linear"][i]), round(sides["mixed"][i]), round(sides["tree"][i])])
    gates = Table(["n", "linear", "mixed", "tree"], title="US-II layout variant ablation (gate delay)")
    for n in sizes:
        gates.add_row(
            [n] + [round(Ultrascalar2Layout(n, 32, variant=v).gate_delay()) for v in ("linear", "mixed", "tree")]
        )
    print()
    print(table.render())
    print()
    print(gates.render())
    for i, n in enumerate(sizes):
        # the paper's mixed strategy: area of the linear layout...
        assert sides["mixed"][i] == sides["linear"][i]
        assert sides["tree"][i] > sides["linear"][i]
        # ...with strictly better gate delay ("greatly improved constant
        # factors"), though still linear asymptotically
        linear_gd = Ultrascalar2Layout(n, 32, variant="linear").gate_delay()
        mixed_gd = Ultrascalar2Layout(n, 32, variant="mixed").gate_delay()
        tree_gd = Ultrascalar2Layout(n, 32, variant="tree").gate_delay()
        assert tree_gd < mixed_gd < linear_gd


def test_bench_cluster_refill_policy(once):
    """Whole-cluster refill (hybrid) costs throughput vs per-station."""

    def sweep():
        workload = random_ilp(120, 0.4, seed=301)
        rows = []
        for cluster in (1, 2, 4, 8, 16):
            result = _run(workload, cluster=cluster)
            rows.append((cluster, result.cycles, result.ipc))
        return rows

    rows = once(sweep)
    table = Table(["cluster size", "cycles", "IPC"], title="Hybrid refill-granularity ablation (window 16)")
    for row in rows:
        table.add_row([row[0], row[1], round(row[2], 2)])
    print()
    print(table.render())
    per_station = rows[0]
    whole_window = rows[-1]
    assert whole_window[1] >= per_station[1]  # coarser refill never faster


def test_bench_shared_alu_pool(once):
    """IPC tracks the ALU pool until the workload's ILP saturates it."""

    def sweep():
        workload = independent_ops(60)
        return [(k, _run(workload, num_alus=k).ipc) for k in (1, 2, 4, 8, 16)] + [
            (None, _run(workload).ipc)
        ]

    rows = once(sweep)
    table = Table(["ALUs", "IPC"], title="Shared-ALU pool ablation (Memo 2 scheduler, window 16)")
    for k, ipc in rows:
        table.add_row([k if k is not None else "per-station", round(ipc, 2)])
    print()
    print(table.render())
    ipcs = [ipc for _, ipc in rows]
    assert ipcs == sorted(ipcs)
    for k, ipc in rows[:-1]:
        assert ipc <= k + 0.1  # the pool is a hard issue ceiling
    assert rows[-2][1] == rows[-1][1]  # pool = window == per-station ALUs


def test_bench_store_forwarding_bandwidth(once):
    """Memory renaming removes load traffic and hides memory latency."""

    def sweep():
        workload = store_load_pairs(6)
        rows = []
        for load_latency in (1, 4, 8):
            plain = _run(workload, load_latency=load_latency)
            renamed = _run(workload, load_latency=load_latency, store_forwarding=True)
            rows.append((load_latency, plain.cycles, renamed.cycles, renamed.forwarded_loads))
        return rows

    rows = once(sweep)
    table = Table(
        ["load latency", "cycles (plain)", "cycles (renaming)", "loads forwarded"],
        title="Memory-renaming ablation (Section 7)",
    )
    for row in rows:
        table.add_row(list(row))
    print()
    print(table.render())
    for load_latency, plain, renamed, forwarded in rows:
        assert forwarded > 0
        if load_latency >= 4:
            assert renamed < plain  # forwarding hides memory latency


def test_bench_distributed_cluster_cache(once):
    """Section 7: 'a cache distributed among the clusters' slashes the
    shared-memory bandwidth demand on workloads with reuse."""
    from repro.memory import ClusteredMemory
    from repro.workloads import repeated_reduction

    def sweep():
        rows = []
        for passes in (1, 2, 4, 8):
            workload = repeated_reduction(8, passes)
            memory = ClusteredMemory(cluster_size=16, shared_latency=6)
            memory.load_image(workload.memory_image)
            config = ProcessorConfig(window_size=16, fetch_width=8)
            result = make_ultrascalar1(
                workload.program, config, memory=memory,
                initial_registers=workload.registers_for(),
            ).run()
            rows.append(
                (passes, result.cycles, memory.stats.local_hits,
                 memory.stats.shared_accesses, memory.stats.bandwidth_saved)
            )
        return rows

    rows = once(sweep)
    table = Table(
        ["array passes", "cycles", "local hits", "shared accesses", "bandwidth saved"],
        title="Distributed cluster cache (Section 7 suggestion)",
    )
    for passes, cycles, hits, shared, saved in rows:
        table.add_row([passes, cycles, hits, shared, f"{saved * 100:.0f}%"])
    print()
    print(table.render())
    savings = [row[4] for row in rows]
    assert savings == sorted(savings)
    assert savings[-1] > 0.5  # most traffic stays local once the data is cached


def test_bench_self_timed_locality(once):
    """Self-timed: near-dependence cheap, far-dependence expensive."""

    def sweep():
        rows = []
        for distance in (1, 4, 8):
            links = 48 // distance
            workload = spaced_chain(48, distance)
            global_clock = _run(workload).cycles
            self_timed = _run(workload, self_timed=True).cycles
            rows.append((distance, links, global_clock, self_timed, self_timed / links))
        return rows

    rows = once(sweep)
    table = Table(
        ["dependence distance", "chain links", "global-clock cycles", "self-timed cycles",
         "self-timed cycles/link"],
        title="Self-timed locality ablation (Section 7)",
    )
    for row in rows:
        table.add_row([row[0], row[1], row[2], row[3], round(row[4], 2)])
    print()
    print(table.render())
    per_link = [row[4] for row in rows]
    # near dependence is the cheapest per hop (distances 4 and 8 land in
    # the same H-tree level, so only near-vs-far is ordered)
    assert all(per_link[0] < later for later in per_link[1:])
