"""E12 — window size vs issue width, decoupled by the Memo-2 scheduler.

The study the paper flags as worth running ("the impact of changing the
window size independently from the issue width"), made possible by the
shared-ALU scheduling circuitry it references.
"""

from repro.experiments import window_vs_issue
from repro.vlsi.grid_layout import Ultrascalar2Layout


def test_bench_window_issue_grid(once):
    outcome = once(window_vs_issue.run)
    print()
    print(window_vs_issue.report())
    assert outcome.monotone_in_window()
    assert outcome.monotone_in_alus()


def test_bench_window_finds_parallelism_alus_execute_it(once):
    """A large window with few ALUs beats a small window with many:
    the window discovers ILP; ALUs merely retire it."""
    outcome = once(window_vs_issue.run)
    big_window_few_alus = outcome.ipc_at(64, 4)
    small_window_many_alus = outcome.ipc_at(4, 16)
    assert big_window_few_alus > small_window_many_alus * 1.3


def test_bench_saturation_along_both_axes(once):
    outcome = once(window_vs_issue.run)
    # one ALU: IPC pinned at ~1 regardless of window
    one_alu = [outcome.ipc_at(w, 1) for w in outcome.windows]
    assert max(one_alu) - min(one_alu) < 0.1
    # tiny window: extra ALUs past the window's ILP do nothing
    assert outcome.ipc_at(4, 8) == outcome.ipc_at(4, 16)


def test_bench_wraparound_area_tax(once):
    """The paper's aside: wrap-around support for the Ultrascalar II
    'appears to cost nearly a factor of two in area'."""

    def check():
        plain = Ultrascalar2Layout(256, 32).area
        wrapped = Ultrascalar2Layout(256, 32, wraparound=True).area
        return wrapped / plain

    ratio = once(check)
    assert 1.8 < ratio < 2.2
