"""The repro logging hierarchy and its REPRO_LOG configuration."""

import logging
import sys

from repro.util import log as replog


class TestGetLogger:
    def test_names_form_the_repro_hierarchy(self):
        assert replog.get_logger().name == "repro"
        assert replog.get_logger("repro").name == "repro"
        assert replog.get_logger("runner.pool").name == "repro.runner.pool"

    def test_root_has_null_handler_by_default(self):
        root = logging.getLogger("repro")
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)


class TestLevelFromEnv:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv(replog.ENV_VAR, raising=False)
        assert replog.level_from_env() == logging.WARNING

    def test_parses_names_case_insensitively(self, monkeypatch):
        monkeypatch.setenv(replog.ENV_VAR, "debug")
        assert replog.level_from_env() == logging.DEBUG
        monkeypatch.setenv(replog.ENV_VAR, "ERROR")
        assert replog.level_from_env() == logging.ERROR

    def test_garbage_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv(replog.ENV_VAR, "LOUD")
        assert replog.level_from_env() == logging.WARNING


class TestSetupCliLogging:
    def _stderr_handlers(self):
        root = logging.getLogger("repro")
        return [h for h in root.handlers if isinstance(h, replog._StderrHandler)]

    def test_idempotent(self):
        replog.setup_cli_logging()
        replog.setup_cli_logging()
        assert len(self._stderr_handlers()) == 1

    def test_messages_reach_current_stderr_verbatim(self, capsys):
        replog.setup_cli_logging()
        replog.get_logger("runner").error("experiment 'x' failed after 2 attempt(s)")
        err = capsys.readouterr().err
        # message-only formatting: looks exactly like the print() it replaced
        assert err == "experiment 'x' failed after 2 attempt(s)\n"

    def test_handler_follows_stderr_swaps(self):
        replog.setup_cli_logging()
        [handler] = self._stderr_handlers()
        assert handler.stream is sys.stderr
