"""Machine-readable run artifacts (the ``--json PATH`` flag).

The artifact is a stable, diff-friendly JSON document: results are
listed in job order, report text is summarized by its SHA-256 (so two
artifacts diff cleanly even when reports are kilobytes), and the only
non-deterministic fields are the wall times.  Schema::

    {
      "schema": "repro-runner/2",
      "version": "<repro.__version__>",
      "workers": <int>,                 # --jobs value
      "cache_dir": "<path>" | null,     # null when --no-cache
      "totals": {
        "jobs": <int>, "experiments": <int>, "ok": <int>,
        "failed": <int>, "cache_hits": <int>, "retried": <int>,
        "wall_time_s": <float>
      },
      "results": [
        {
          "experiment": "<key>", "title": "<display title>",
          "kwargs": {...},              # the declared sweep point
          "sweep_index": <int>, "sweep_count": <int>,
          "status": "ok" | "failed" | "timeout",
          "cache_hit": <bool>,
          "attempts": <int>,            # 0 for a cache hit
          "wall_time_s": <float>,
          "output_sha256": "<hex>" | null,
          "output_chars": <int> | null,
          "error": "<last traceback line>" | null,
          "stats": {"<counter>": <int>, ...} | null
        }, ...
      ]
    }

Schema history: ``repro-runner/2`` added the per-result ``stats``
object — aggregated telemetry counters (see ``docs/observability.md``)
collected while the job executed, ``null`` for cache hits and failed
jobs.  Everything ``repro-runner/1`` defined is unchanged.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro._version import __version__
from repro.runner.metrics import JobResult, summarize

ARTIFACT_SCHEMA = "repro-runner/2"


def build_artifact(
    results: list[JobResult],
    *,
    workers: int = 1,
    cache_dir: str | None = None,
) -> dict[str, Any]:
    """Assemble the artifact document for one runner invocation."""
    return {
        "schema": ARTIFACT_SCHEMA,
        "version": __version__,
        "workers": workers,
        "cache_dir": cache_dir,
        "totals": summarize(results),
        "results": [
            {
                "experiment": r.experiment,
                "title": r.title,
                "kwargs": r.kwargs,
                "sweep_index": r.index,
                "sweep_count": r.count,
                "status": r.status,
                "cache_hit": r.cache_hit,
                "attempts": r.attempts,
                "wall_time_s": round(r.wall_time_s, 6),
                "output_sha256": r.output_sha256,
                "output_chars": None if r.output is None else len(r.output),
                "error": r.error_summary or None,
                "stats": r.stats,
            }
            for r in results
        ],
    }


def write_artifact(
    path: str | Path,
    results: list[JobResult],
    *,
    workers: int = 1,
    cache_dir: str | None = None,
) -> Path:
    """Write the artifact JSON to *path* (parent dirs created)."""
    path = Path(path)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    document = build_artifact(results, workers=workers, cache_dir=cache_dir)
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return path


def validate_artifact(document: Any) -> list[str]:
    """Return schema problems with a ``repro-runner/2`` artifact.

    An empty list means the document is well formed.  Used by the CI
    telemetry smoke job, and handy for any downstream consumer that
    wants to fail fast on a malformed artifact.
    """
    problems: list[str] = []
    if not isinstance(document, dict):
        return ["artifact is not a JSON object"]
    if document.get("schema") != ARTIFACT_SCHEMA:
        problems.append(
            f"schema is {document.get('schema')!r}, expected {ARTIFACT_SCHEMA!r}"
        )
    for key in ("version", "workers", "totals", "results"):
        if key not in document:
            problems.append(f"missing top-level key {key!r}")
    results = document.get("results")
    if not isinstance(results, list):
        problems.append("results is not a list")
        return problems
    for i, entry in enumerate(results):
        if not isinstance(entry, dict):
            problems.append(f"results[{i}] is not an object")
            continue
        for key in ("experiment", "kwargs", "status", "stats"):
            if key not in entry:
                problems.append(f"results[{i}] missing key {key!r}")
        stats = entry.get("stats")
        if stats is not None and not (
            isinstance(stats, dict)
            and all(
                isinstance(k, str) and isinstance(v, int)
                for k, v in stats.items()
            )
        ):
            problems.append(f"results[{i}].stats is not a str->int mapping")
    return problems


def build_run_trace(results: list[JobResult]) -> dict[str, Any]:
    """Build a Chrome trace-event document from one run's job results.

    Each job becomes a complete ("X") event on the runner timeline:
    jobs are laid end to end using their wall times (timestamps are
    cumulative microseconds, not clock readings, so the document is
    deterministic modulo timing noise), and any collected telemetry
    counters ride in the event ``args`` for inspection in the viewer.
    """
    from repro.telemetry.chrome import build_chrome_trace
    from repro.telemetry.tracer import TraceEvent

    events = []
    cursor = 0
    for r in results:
        duration_us = max(1, int(round(r.wall_time_s * 1_000_000)))
        args: dict[str, Any] = {
            "kwargs": r.kwargs,
            "status": r.status,
            "cache_hit": r.cache_hit,
        }
        if r.stats:
            args["stats"] = r.stats
        events.append(
            TraceEvent(
                name=f"{r.experiment}[{r.index + 1}/{r.count}]",
                cat="job",
                ts=cursor,
                dur=duration_us,
                args=args,
            )
        )
        cursor += duration_us
    return build_chrome_trace(
        events,
        process_name="repro-runner",
        time_unit="ms",
        metadata={"jobs": len(results)},
    )


def write_run_trace(path: str | Path, results: list[JobResult]) -> Path:
    """Write the run's Chrome trace JSON to *path* (parent dirs created)."""
    path = Path(path)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    document = build_run_trace(results)
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return path
