"""Unit tests for the runner subsystem: cache, registry, pool, artifacts."""

import json


import repro.runner.cache as cache_module
from repro.runner.artifacts import ARTIFACT_SCHEMA, build_artifact, write_artifact
from repro.runner.cache import ResultCache
from repro.runner.metrics import format_summary, summarize
from repro.runner.pool import run_jobs
from repro.runner.registry import REGISTRY, ExperimentSpec, JobSpec, build_jobs


def _job(func: str, kwargs: dict | None = None, experiment: str = "t") -> JobSpec:
    """A JobSpec pointing at the in-package self-test functions."""
    return JobSpec(
        experiment=experiment,
        title=f"T — {experiment}",
        module="repro.runner._selftest",
        func=func,
        kwargs=kwargs or {},
    )


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("fig3", {"n": 4}) is None
        cache.put("fig3", {"n": 4}, "report text", 1.5)
        entry = cache.get("fig3", {"n": 4})
        assert entry is not None
        assert entry.output == "report text"
        assert entry.compute_time_s == 1.5

    def test_kwargs_change_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("fig3", {"n": 4}, "x", 0.0)
        assert cache.get("fig3", {"n": 5}) is None
        assert cache.get("other", {"n": 4}) is None

    def test_key_is_canonical_in_kwarg_order(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.key_for("e", {"a": 1, "b": 2}) == cache.key_for("e", {"b": 2, "a": 1})

    def test_version_in_key(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        before = cache.key_for("e", {})
        monkeypatch.setattr(cache_module, "__version__", "99.0.0")
        assert cache.key_for("e", {}) != before

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put("fig3", {}, "x", 0.0)
        path.write_text("{not json", encoding="utf-8")
        assert cache.get("fig3", {}) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a", {}, "x", 0.0)
        cache.put("b", {}, "y", 0.0)
        assert cache.clear() == 2
        assert cache.get("a", {}) is None

    def test_sweep_index_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get_sweep_points("fig3") is None
        cache.put_sweep_points("fig3", [{"n": 4}])
        cache.put_sweep_points("other", [{}])
        assert cache.get_sweep_points("fig3") == [{"n": 4}]
        assert cache.get_sweep_points("other") == [{}]

    def test_sweep_index_version_mismatch(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        cache.put_sweep_points("fig3", [{"n": 4}])
        monkeypatch.setattr(cache_module, "__version__", "99.0.0")
        assert cache.get_sweep_points("fig3") is None


class TestRegistry:
    def test_every_experiment_declares_sweep_points(self):
        import importlib

        for spec in REGISTRY.values():
            module = importlib.import_module(spec.module)
            points = getattr(module, "SWEEP_POINTS", None)
            assert isinstance(points, list) and points, spec.module
            # declared points must be cache-keyable
            assert json.loads(json.dumps(points)) == points

    def test_build_jobs_expands_in_order(self):
        jobs = build_jobs(list(REGISTRY.values()))
        assert [j.experiment for j in jobs[:3]] == ["fig3", "fig11", "fig12"]
        assert all(j.index == 0 and j.count >= 1 for j in jobs)
        assert len(jobs) >= len(REGISTRY)

    def test_build_jobs_uses_cached_sweep_index(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_sweep_points("ghost", [{"n": 1}, {"n": 2}])
        spec = ExperimentSpec("ghost", "EX — ghost", "repro.runner._no_such_module")
        jobs = build_jobs([spec], cache=cache)  # would ImportError without the index
        assert [j.kwargs for j in jobs] == [{"n": 1}, {"n": 2}]
        assert [(j.index, j.count) for j in jobs] == [(0, 2), (1, 2)]

    def test_build_jobs_populates_sweep_index(self, tmp_path):
        cache = ResultCache(tmp_path)
        build_jobs([REGISTRY["cluster"]], cache=cache)
        assert cache.get_sweep_points("cluster") == [{"n": 4096}]


class TestRunJobsInline:
    def test_success_and_metrics(self):
        results = run_jobs([_job("ok", {"text": "hello"})])
        assert len(results) == 1
        assert results[0].ok and results[0].output == "hello"
        assert results[0].attempts == 1 and not results[0].cache_hit

    def test_failure_is_isolated(self):
        jobs = [_job("ok", experiment="a"), _job("boom", experiment="b"),
                _job("ok", experiment="c")]
        results = run_jobs(jobs, retries=0)
        assert [r.ok for r in results] == [True, False, True]
        assert "RuntimeError: boom" in results[1].error
        assert results[1].error_summary == "RuntimeError: boom"

    def test_retry_recovers_flaky_job(self, tmp_path):
        results = run_jobs([_job("flaky", {"marker_dir": str(tmp_path)})], retries=1)
        assert results[0].ok and results[0].output == "recovered"
        assert results[0].attempts == 2

    def test_no_retries_means_one_attempt(self, tmp_path):
        results = run_jobs([_job("flaky", {"marker_dir": str(tmp_path)})], retries=0)
        assert not results[0].ok and results[0].attempts == 1

    def test_cache_hit_skips_execution(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _job("boom")  # would fail if actually executed
        cache.put(job.experiment, job.kwargs, "canned", 0.25)
        results = run_jobs([job], cache=cache)
        assert results[0].ok and results[0].cache_hit
        assert results[0].output == "canned"
        assert results[0].compute_time_s == 0.25

    def test_results_are_cached_for_next_run(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_jobs([_job("ok")], cache=cache)
        second = run_jobs([_job("ok")], cache=cache)
        assert not first[0].cache_hit and second[0].cache_hit
        assert first[0].output == second[0].output

    def test_failures_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_jobs([_job("boom")], cache=cache, retries=0)
        assert cache.get("t", {}) is None

    def test_on_result_streams_in_order(self):
        seen = []
        jobs = [_job("ok", {"text": str(i)}, experiment=f"e{i}") for i in range(4)]
        run_jobs(jobs, on_result=lambda r: seen.append(r.experiment))
        assert seen == ["e0", "e1", "e2", "e3"]


class TestRunJobsParallel:
    def test_pool_runs_all_jobs_in_order(self):
        jobs = [_job("ok", {"text": str(i)}, experiment=f"e{i}") for i in range(5)]
        results = run_jobs(jobs, workers=2)
        assert [r.output for r in results] == ["0", "1", "2", "3", "4"]
        assert all(r.ok and not r.cache_hit for r in results)

    def test_pool_isolates_failures(self):
        jobs = [_job("ok", experiment="a"), _job("boom", experiment="b"),
                _job("ok", experiment="c")]
        results = run_jobs(jobs, workers=2, retries=0)
        assert [r.ok for r in results] == [True, False, True]
        assert "RuntimeError: boom" in results[1].error

    def test_pool_retry_recovers_flaky_job(self, tmp_path):
        jobs = [_job("flaky", {"marker_dir": str(tmp_path)}),
                _job("ok", experiment="other")]
        results = run_jobs(jobs, workers=2, retries=1)
        assert results[0].ok and results[0].output == "recovered"
        assert results[0].attempts == 2
        assert results[1].ok

    def test_pool_timeout_watchdog(self):
        jobs = [_job("sleepy", {"seconds": 1.5}, experiment="slow"),
                _job("ok", experiment="fast")]
        results = run_jobs(jobs, workers=2, timeout=0.2, retries=0)
        assert results[0].status == "timeout" and not results[0].ok
        assert "timed out after" in results[0].error
        assert results[1].ok

    def test_pool_uses_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = [_job("ok", {"text": str(i)}, experiment=f"e{i}") for i in range(3)]
        run_jobs(jobs, workers=2, cache=cache)
        warm = run_jobs(jobs, workers=2, cache=cache)
        assert all(r.cache_hit for r in warm)


class TestMetricsAndArtifacts:
    def _results(self, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = [_job("ok", {"text": "x"}, experiment="a"), _job("boom", experiment="b")]
        return run_jobs(jobs, cache=cache, retries=0)

    def test_summarize(self, tmp_path):
        totals = summarize(self._results(tmp_path))
        assert totals["jobs"] == 2 and totals["experiments"] == 2
        assert totals["ok"] == 1 and totals["failed"] == 1
        assert totals["cache_hits"] == 0

    def test_format_summary_mentions_counts(self, tmp_path):
        line = format_summary(self._results(tmp_path))
        assert "2 job(s)" in line and "1 failure(s)" in line

    def test_artifact_schema(self, tmp_path):
        document = build_artifact(self._results(tmp_path), workers=2, cache_dir="c")
        assert document["schema"] == ARTIFACT_SCHEMA
        assert document["workers"] == 2 and document["cache_dir"] == "c"
        ok, failed = document["results"]
        assert ok["status"] == "ok" and len(ok["output_sha256"]) == 64
        assert ok["output_chars"] == 1 and ok["error"] is None
        assert failed["status"] == "failed" and failed["output_sha256"] is None
        assert "RuntimeError" in failed["error"]

    def test_write_artifact(self, tmp_path):
        path = write_artifact(tmp_path / "out" / "run.json", self._results(tmp_path))
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded["schema"] == ARTIFACT_SCHEMA
        assert len(loaded["results"]) == 2

    def test_artifact_is_json_stable_across_identical_runs(self, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = [_job("ok", {"text": "x"}, experiment="a")]
        one = build_artifact(run_jobs(jobs, cache=cache))
        two = build_artifact(run_jobs(jobs, cache=cache))
        def strip(d):
            return [
                {k: v for k, v in r.items() if k != "wall_time_s"} | {"cache_hit": None, "attempts": None}
                for r in d["results"]
            ]

        assert strip(one) == strip(two)
        assert one["results"][0]["output_sha256"] == two["results"][0]["output_sha256"]
