"""Prioritized shared-ALU scheduling via cyclic prefix (Ultrascalar Memo 2).

The paper replicates an ALU per station but notes: "In practice, ALUs
can be effectively shared ... We have shown how to implement efficient
scheduling logic for a superscalar processor that shares ALUs [6]" and
"We know how to separate the two parameters [window size and issue
width] by issuing instructions to a smaller pool of shared ALUs.  Our
ALU scheduling circuitry ... fits within the bounds described here."

The scheduler grants up to ``k`` free ALUs to the *oldest* requesting
stations.  Mechanically it is one more cyclic segmented scan, with the
integer + operator this time: each station's input is its request bit,
the oldest station raises the segment, and a station wins a grant iff
it requests and the count of earlier requests is below the number of
free ALUs.

Both a behavioural function and a gate-level netlist are provided; the
netlist's count scan is a balanced tree of ripple adders, keeping the
Θ(log n) gate-delay bound (times the counter width log k).
"""

from __future__ import annotations

from typing import Sequence

from repro.circuits.cspp import cyclic_segmented_scan
from repro.circuits.netlist import GateKind, Net, Netlist
from repro.circuits.prefix import ScanOp, _mux_bus


def prioritized_grants(
    requests: Sequence[bool], oldest: int, num_alus: int
) -> list[bool]:
    """Grant ALUs to the oldest *num_alus* requesting stations.

    Args:
        requests: per ring position, does the station want an ALU.
        oldest: ring position of the oldest station (scan priority origin).
        num_alus: ALUs available this cycle.

    Returns a grant bit per ring position.  The count of earlier
    requests is a cyclic segmented + scan seeded at the oldest station;
    the oldest requester always wins first.
    """
    n = len(requests)
    if not 0 <= oldest < n:
        raise ValueError("oldest out of range")
    if num_alus < 0:
        raise ValueError("num_alus must be non-negative")
    if num_alus == 0 or not any(requests):
        return [False] * n
    segments = [i == oldest for i in range(n)]
    counts = cyclic_segmented_scan(
        [int(r) for r in requests], segments, lambda a, b: a + b
    )
    # counts[i] for the oldest wraps around the whole ring; like every
    # other CSPP, the oldest ignores its incoming value (no older
    # requesters exist).
    grants = []
    for i in range(n):
        earlier = 0 if i == oldest else counts[i]
        grants.append(bool(requests[i]) and earlier < num_alus)
    return grants


class AddOp(ScanOp):
    """Integer + over ``width``-bit buses, built from ripple adders.

    Saturation is unnecessary: the scheduler only compares the count to
    ``k < 2**width``, so the bus width is chosen as ``ceil(log2(n+1))``.
    """

    def __init__(self, width: int):
        self.width = width

    def combine(self, netlist: Netlist, a: list[Net], b: list[Net]) -> list[Net]:
        from repro.circuits.alu import build_ripple_adder

        sums, _carry = build_ripple_adder(netlist, a, b, netlist.constant(False))
        return sums


class SchedulerCircuit:
    """A gate-level prioritized scheduler over *n* stations, *k* ALUs.

    Built as a cyclic segmented + scan (count of earlier requests)
    followed by a per-station ``count < k`` comparator AND request.
    """

    def __init__(self, n: int, num_alus: int):
        if n < 1:
            raise ValueError("need at least one station")
        if num_alus < 1:
            raise ValueError("num_alus must be positive")
        self.n = n
        # more ALUs than stations is indistinguishable from n ALUs
        self.num_alus = min(num_alus, n)
        num_alus = self.num_alus
        self.width = max(1, (n).bit_length())
        self.netlist = Netlist(name=f"scheduler(n={n},k={num_alus})")
        nl = self.netlist

        self.requests = [nl.add_input(f"req{i}") for i in range(n)]
        self.segments = [nl.add_input(f"seg{i}") for i in range(n)]

        # request bit widened to a count bus
        zeros = [nl.constant(False) for _ in range(self.width - 1)]
        values = [[self.requests[i]] + list(zeros) for i in range(n)]

        op = AddOp(self.width)
        summaries: dict[tuple[int, int], tuple[list[Net], Net]] = {}

        def up(lo: int, hi: int) -> tuple[list[Net], Net]:
            if (lo, hi) in summaries:
                return summaries[(lo, hi)]
            if hi - lo == 1:
                result = (values[lo], self.segments[lo])
            else:
                mid = (lo + hi) // 2
                v_l, s_l = up(lo, mid)
                v_r, s_r = up(mid, hi)
                combined = op.combine(nl, v_l, v_r)
                v = _mux_bus(nl, s_r, v_r, combined)
                s = nl.add_gate(GateKind.OR, s_l, s_r)
                result = (v, s)
            summaries[(lo, hi)] = result
            return result

        root_v, _ = up(0, n)
        self.counts: list[list[Net]] = [None] * n  # type: ignore[list-item]

        def down(lo: int, hi: int, incoming: list[Net]) -> None:
            if hi - lo == 1:
                self.counts[lo] = incoming
                return
            mid = (lo + hi) // 2
            v_l, s_l = up(lo, mid)
            combined = op.combine(nl, incoming, v_l)
            incoming_right = _mux_bus(nl, s_l, v_l, combined)
            down(lo, mid, incoming)
            down(mid, hi, incoming_right)

        down(0, n, root_v)

        # grant[i] = request[i] AND (count[i] < k), with the oldest's
        # wrap-around count overridden to zero by its segment bit.
        self.grants: list[Net] = []
        for i in range(n):
            below = self._build_less_than(self.counts[i], num_alus, self.segments[i])
            self.grants.append(nl.add_gate(GateKind.AND, self.requests[i], below))
            nl.mark_output(f"grant{i}", self.grants[-1])

    def _build_less_than(self, count: list[Net], k: int, is_oldest: Net) -> Net:
        """``(count < k) OR is_oldest`` as gates (unsigned comparison)."""
        nl = self.netlist
        # count < k  <=>  NOT (count >= k); build borrow chain of count - k
        borrow = nl.constant(False)
        for bit_index, bit in enumerate(count):
            k_bit = nl.constant(bool((k >> bit_index) & 1))
            # borrow_out = (~a & (b | borrow)) | (b & borrow), a=count bit, b=k bit... we
            # want count < k i.e. count - k borrows out:
            not_a = nl.add_gate(GateKind.NOT, bit)
            b_or_borrow = nl.add_gate(GateKind.OR, k_bit, borrow)
            term1 = nl.add_gate(GateKind.AND, not_a, b_or_borrow)
            term2 = nl.add_gate(GateKind.AND, k_bit, borrow)
            borrow = nl.add_gate(GateKind.OR, term1, term2)
        # borrow set => count < k
        return nl.add_gate(GateKind.OR, borrow, is_oldest)

    def evaluate(self, requests: Sequence[bool], oldest: int) -> list[bool]:
        """Run the netlist; returns grant bits (checked against behavioural)."""
        if len(requests) != self.n:
            raise ValueError(f"expected {self.n} requests")
        if not 0 <= oldest < self.n:
            raise ValueError("oldest out of range")
        assignment: dict[Net, bool] = {}
        for i in range(self.n):
            assignment[self.requests[i]] = bool(requests[i])
            assignment[self.segments[i]] = i == oldest
        result = self.netlist.simulate(assignment)
        return [result.value_of(net) for net in self.grants]

    @property
    def gate_count(self) -> int:
        """Gates in the scheduler netlist."""
        return self.netlist.gate_count
