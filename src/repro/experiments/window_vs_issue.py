"""Experiment E12 — window size vs. issue width, decoupled.

The paper: "From an empirical point of view, it is doubtless worth
investigating the impact of changing the window size independently from
the issue width.  We know how to separate the two parameters by issuing
instructions to a smaller pool of shared ALUs."

With the Memo-2 shared-ALU scheduler implemented, we run that
investigation: IPC over a (window, ALU-pool) grid, for a
medium-ILP workload.  The qualitative shape: IPC saturates along both
axes, and a large window with few ALUs beats a small window with many —
big windows find the parallelism, ALUs merely execute it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ultrascalar import IdealMemory, ProcessorConfig, make_ultrascalar1
from repro.util.tables import Table
from repro.workloads import Workload, random_ilp


#: sweep points the runner executes and the cache keys (kwargs for
#: :func:`report`)
SWEEP_POINTS: list[dict] = [
    {"sizes": [4, 8, 16, 32, 64], "alu_pools": [1, 2, 4, 8, 16]}
]


@dataclass
class WindowIssueResult:
    """The IPC grid."""

    windows: list[int]
    alu_pools: list[int]
    #: ipc[window][alus]
    ipc: dict[int, dict[int, float]]

    def ipc_at(self, window: int, alus: int) -> float:
        """IPC at one grid point."""
        return self.ipc[window][alus]

    def monotone_in_window(self) -> bool:
        """At fixed ALUs, a bigger window never hurts."""
        for alus in self.alu_pools:
            series = [self.ipc[w][alus] for w in self.windows]
            if any(b < a - 1e-9 for a, b in zip(series, series[1:])):
                return False
        return True

    def monotone_in_alus(self) -> bool:
        """At fixed window, more ALUs never hurt."""
        for window in self.windows:
            series = [self.ipc[window][a] for a in self.alu_pools]
            if any(b < a - 1e-9 for a, b in zip(series, series[1:])):
                return False
        return True


def run(
    workload: Workload | None = None,
    sizes: list[int] | None = None,
    alu_pools: list[int] | None = None,
) -> WindowIssueResult:
    """Sweep the (window size, ALU pool) grid."""
    workload = workload or random_ilp(400, 0.55, seed=401)
    windows = sizes or [4, 8, 16, 32, 64]
    alu_pools = alu_pools or [1, 2, 4, 8, 16]
    grid: dict[int, dict[int, float]] = {}
    for window in windows:
        grid[window] = {}
        for alus in alu_pools:
            config = ProcessorConfig(
                window_size=window,
                fetch_width=min(window, 16),
                num_alus=min(alus, window),
            )
            processor = make_ultrascalar1(
                workload.program, config, memory=IdealMemory(),
                initial_registers=workload.registers_for(),
            )
            grid[window][alus] = processor.run().ipc
    return WindowIssueResult(windows=windows, alu_pools=alu_pools, ipc=grid)


def report(
    sizes: list[int] | None = None,
    alu_pools: list[int] | None = None,
) -> str:
    """The IPC grid as a table."""
    outcome = run(sizes=sizes, alu_pools=alu_pools)
    table = Table(
        ["window \\ ALUs"] + [str(a) for a in outcome.alu_pools],
        title="E12 — IPC over (window size, shared-ALU pool) "
        "(the paper's window-vs-issue-width separation, Memo 2)",
    )
    for window in outcome.windows:
        table.add_row(
            [window] + [round(outcome.ipc[window][a], 2) for a in outcome.alu_pools]
        )
    return table.render()


if __name__ == "__main__":  # pragma: no cover
    print(report())
