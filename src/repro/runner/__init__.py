"""Parallel, cached experiment runner (see DESIGN.md §4 and README).

The runner turns the experiment suite into a list of independent jobs —
one per (experiment, sweep point) — and executes them with:

* a :class:`~concurrent.futures.ProcessPoolExecutor` fan-out
  (``--jobs N`` on the CLI),
* a content-addressed on-disk result cache under ``.repro_cache/``
  keyed by (experiment name, arguments, package version),
* a per-job timeout watchdog with one retry and per-experiment failure
  isolation (one crashing experiment no longer aborts ``all``), and
* structured observability: per-job wall-time/cache-hit metrics and a
  JSON artifact (``--json PATH``) that CI can diff across runs.

Experiment modules declare their sweep points as a module-level
``SWEEP_POINTS`` list of keyword-argument dicts for their ``report``
function; :mod:`repro.runner.registry` expands those into jobs.
"""

from repro.runner.artifacts import ARTIFACT_SCHEMA, build_artifact, write_artifact
from repro.runner.cache import CacheEntry, ResultCache
from repro.runner.metrics import JobResult, format_summary, summarize
from repro.runner.pool import run_jobs
from repro.runner.registry import REGISTRY, ExperimentSpec, JobSpec, build_jobs

__all__ = [
    "ARTIFACT_SCHEMA",
    "build_artifact",
    "write_artifact",
    "CacheEntry",
    "ResultCache",
    "JobResult",
    "format_summary",
    "summarize",
    "run_jobs",
    "REGISTRY",
    "ExperimentSpec",
    "JobSpec",
    "build_jobs",
]
