"""Gate-level circuit constructions and an event-driven timing simulator.

The paper's scalability claims are claims about *circuits*: mux rings
settle in Θ(n) gate delays, cyclic segmented parallel-prefix (CSPP) trees
in Θ(log n), the Ultrascalar II comparator grid in Θ(n + L) and its
mesh-of-trees refinement in Θ(log(n + L)).  This subpackage builds those
circuits as real netlists of single-bit gates and *measures* their settle
times with an event-driven simulator, rather than asserting the bounds.

Modules:

* :mod:`repro.circuits.netlist` -- gates, nets, the event-driven
  simulator (cyclic netlists supported via fixed-point settling), and
  topological depth for acyclic circuits.
* :mod:`repro.circuits.prefix` -- behavioural segmented-scan semantics
  (the reference used for property testing) and prefix-tree netlists.
* :mod:`repro.circuits.cspp` -- the cyclic segmented parallel prefix of
  Ultrascalar Memo 1: behavioural model and tree netlist.
* :mod:`repro.circuits.mux_ring` -- the linear-gate-delay mux ring of the
  paper's Figure 1.
* :mod:`repro.circuits.fanout` -- buffer fan-out trees (Figure 8).
* :mod:`repro.circuits.comparator` -- register-number equality
  comparators used by the Ultrascalar II columns.
* :mod:`repro.circuits.grid` -- the Ultrascalar II register-routing
  network: linear comparator columns (Figure 7) and the mesh-of-trees
  version (Figure 8).
* :mod:`repro.circuits.alu` -- a gate-level ripple-carry ALU used for
  standard-cell counts in the VLSI model.
"""

from repro.circuits.cspp import (
    CsppTree,
    cyclic_segmented_and,
    cyclic_segmented_copy,
    cyclic_segmented_scan,
)
from repro.circuits.fanout import build_fanout_tree
from repro.circuits.grid import GridNetwork, TreeGridNetwork, route_arguments
from repro.circuits.mux_ring import MuxRing
from repro.circuits.netlist import Gate, GateKind, Net, Netlist, SimulationResult
from repro.circuits.prefix import (
    segmented_scan,
    build_linear_scan,
    build_tree_scan,
)

__all__ = [
    "CsppTree",
    "cyclic_segmented_and",
    "cyclic_segmented_copy",
    "cyclic_segmented_scan",
    "build_fanout_tree",
    "GridNetwork",
    "TreeGridNetwork",
    "route_arguments",
    "MuxRing",
    "Gate",
    "GateKind",
    "Net",
    "Netlist",
    "SimulationResult",
    "segmented_scan",
    "build_linear_scan",
    "build_tree_scan",
]
