"""The hybrid Ultrascalar floorplan (the paper's Figure 10 and Section 6).

Clusters of C stations, each an Ultrascalar II grid, connected by the
Ultrascalar I H-tree.  The side-length recurrence::

    U(n) = O(n + L)                      if n <= C   (one cluster)
    U(n) = O(L + M(n)) + 2 U(n/4)        if n > C

has solution ``U(n) = Theta(M(n) + L sqrt(n)/sqrt(C) + sqrt(n C))`` for
n >= C, minimized at C = Theta(L), giving the optimal
``U(n) = Theta(M(n) + sqrt(n L))``.

The paper's Magic layouts route incoming registers over the datapath on
spare metal and pack ALUs in columns off the diagonal, shrinking the
cluster below the schematic Figure 10 floorplan; the
``cluster_packing`` factor models that (documented calibration, see
EXPERIMENTS.md E3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.vlsi.grid_layout import Ultrascalar2Layout
from repro.vlsi.htree_layout import zero_bandwidth
from repro.vlsi.tech import Technology, PAPER_TECH


@dataclass(eq=False)
class HybridLayout:
    """Parametric hybrid layout.

    Args:
        n: total stations.
        cluster_size: ``C`` stations per Ultrascalar II cluster.
        num_registers: ``L``.
        word_bits: ``w``.
        bandwidth: memory-bandwidth function M (default zero, matching
            the paper's register-datapath-only empirical layouts, which
            "left space ... for a small datapath of size M(n) = O(1)").
        cluster_packing: linear shrink factor for the Magic-layout
            optimizations described in Section 7 (over-the-cell routing
            of incoming registers, ALU columns off the diagonal).
    """

    n: int
    cluster_size: int
    num_registers: int = 32
    word_bits: int = 32
    bandwidth: Callable[[int], float] = zero_bandwidth
    cluster_packing: float = 1.0
    variant: str = "linear"
    tech: Technology = PAPER_TECH

    def __post_init__(self) -> None:
        if self.n < 1 or self.cluster_size < 1:
            raise ValueError("n and cluster_size must be positive")
        if self.n % self.cluster_size:
            raise ValueError("cluster_size must divide n")
        if not 0 < self.cluster_packing <= 1.0:
            raise ValueError("cluster_packing must be in (0, 1]")
        self.cluster = Ultrascalar2Layout(
            n=self.cluster_size,
            num_registers=self.num_registers,
            word_bits=self.word_bits,
            variant=self.variant,
            tech=self.tech,
        )
        self._side_memo: dict[int, float] = {}

    @property
    def num_clusters(self) -> int:
        """Clusters on the H-tree."""
        return self.n // self.cluster_size

    @property
    def cluster_side(self) -> float:
        """One cluster's side in tracks (packed Ultrascalar II grid)."""
        return self.cluster.side_length() * self.cluster_packing

    @property
    def register_wires(self) -> int:
        """Inter-cluster datapath wires: L x (w + 1), as in Ultrascalar I."""
        return self.num_registers * (self.word_bits + 1)

    def switch_block_side(self, stations: int) -> float:
        """H-tree switch-block side at a subtree of *stations* stations."""
        register_part = self.register_wires * self.tech.prefix_node_pitch
        memory_part = (
            self.bandwidth(stations) * self.word_bits * self.tech.memory_wire_pitch
        )
        return register_part + memory_part

    def _rounded_clusters(self) -> int:
        m = 1
        while m < self.num_clusters:
            m *= 4
        return m

    def side_length(self, clusters: int | None = None) -> float:
        """U(n) in tracks: the Ultrascalar I recurrence over clusters."""
        clusters = self._rounded_clusters() if clusters is None else clusters
        if clusters <= 1:
            return self.cluster_side
        if clusters not in self._side_memo:
            self._side_memo[clusters] = (
                self.switch_block_side(clusters * self.cluster_size)
                + 2 * self.side_length(clusters // 4)
            )
        return self._side_memo[clusters]

    @property
    def area(self) -> float:
        """Area in tracks squared."""
        return self.side_length() ** 2

    def root_to_leaf_wire(self) -> float:
        """Root-to-cluster wire, then across the cluster: Θ(U(n))."""
        total = 0.0
        m = self._rounded_clusters()
        while m > 1:
            total += self.side_length(m) / 2.0 + self.switch_block_side(
                m * self.cluster_size
            )
            m //= 4
        return total + self.cluster_side

    @property
    def critical_wire(self) -> float:
        """Longest datapath signal: up the inter-cluster tree and down."""
        return 2.0 * self.root_to_leaf_wire()

    @property
    def stations_per_m2(self) -> float:
        """Density in stations per square metre."""
        side_cm = self.tech.tracks_to_cm(self.side_length())
        return self.n / (side_cm / 100.0) ** 2

    def summary(self) -> dict[str, float]:
        """Headline numbers in physical units."""
        side_cm = self.tech.tracks_to_cm(self.side_length())
        return {
            "n": self.n,
            "C": self.cluster_size,
            "L": self.num_registers,
            "clusters": self.num_clusters,
            "side_cm": side_cm,
            "area_cm2": side_cm**2,
            "critical_wire_cm": self.tech.tracks_to_cm(self.critical_wire),
            "stations_per_m2": self.stations_per_m2,
        }


def optimal_cluster_size(
    n: int,
    num_registers: int,
    word_bits: int = 32,
    bandwidth: Callable[[int], float] = zero_bandwidth,
    tech: Technology = PAPER_TECH,
) -> tuple[int, dict[int, float]]:
    """Sweep C over the divisors-of-n powers of two; return (best C, U(C) map).

    The paper: "one can differentiate and solve ... to conclude that the
    side-length is minimized when C = Theta(L)".  This sweep is the
    empirical check (experiment E5).
    """
    if n < 1:
        raise ValueError("n must be positive")
    sides: dict[int, float] = {}
    c = 1
    while c <= n:
        if n % c == 0:
            layout = HybridLayout(
                n=n,
                cluster_size=c,
                num_registers=num_registers,
                word_bits=word_bits,
                bandwidth=bandwidth,
                tech=tech,
            )
            sides[c] = layout.side_length()
        c *= 2
    best = min(sides, key=sides.get)
    return best, sides
