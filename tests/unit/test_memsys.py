"""Unit tests for the processor-facing memory systems."""

import pytest

from repro.memory.interleaved_cache import InterleavedCache
from repro.ultrascalar.memsys import CachedMemory, IdealMemory


class TestIdealMemory:
    def test_load_completes_after_latency(self):
        mem = IdealMemory(load_latency=3)
        mem.load_image({8: 42})
        request = mem.submit_load(8)
        assert mem.tick() == {}          # cycle 1
        assert mem.tick() == {}          # cycle 2
        assert mem.tick() == {request: 42}

    def test_store_completes_and_is_visible(self):
        mem = IdealMemory(store_latency=2)
        request = mem.submit_store(4, 7)
        # the data is architecturally visible immediately
        assert mem.peek_word(4) == 7
        assert mem.tick() == {}
        assert mem.tick() == {request: None}

    def test_unit_latency(self):
        mem = IdealMemory()
        request = mem.submit_load(0)
        assert mem.tick() == {request: 0}

    def test_request_ids_unique(self):
        mem = IdealMemory()
        ids = {mem.submit_load(0), mem.submit_store(4, 1), mem.submit_load(8)}
        assert len(ids) == 3

    def test_values_masked(self):
        mem = IdealMemory()
        mem.submit_store(0, (1 << 40) | 5)
        assert mem.peek_word(0) == 5

    def test_unaligned_rejected(self):
        mem = IdealMemory()
        with pytest.raises(ValueError):
            mem.submit_load(2)
        with pytest.raises(ValueError):
            mem.submit_store(3, 1)
        with pytest.raises(ValueError):
            mem.load_image({1: 1})

    def test_final_state(self):
        mem = IdealMemory()
        mem.load_image({0: 1})
        mem.submit_store(4, 2)
        assert mem.final_state() == {0: 1, 4: 2}

    def test_latency_validation(self):
        with pytest.raises(ValueError):
            IdealMemory(load_latency=0)


class TestCachedMemory:
    def make(self):
        cache = InterleavedCache(banks=2, lines_per_bank=4, words_per_line=2)
        return CachedMemory(cache)

    def test_store_then_load(self):
        mem = self.make()
        store = mem.submit_store(8, 99)
        done: dict[int, int | None] = {}
        for _ in range(50):
            done.update(mem.tick())
            if store in done:
                break
        load = mem.submit_load(8)
        for _ in range(50):
            done.update(mem.tick())
            if load in done:
                break
        assert done[load] == 99

    def test_peek_sees_cache_content(self):
        mem = self.make()
        mem.submit_store(8, 5)
        for _ in range(50):
            if mem.tick():
                break
        # dirty line not yet in main memory, but peek must see it
        assert mem.peek_word(8) == 5
        assert mem.cache.memory.read_word(8) == 0

    def test_final_state_flushes(self):
        mem = self.make()
        mem.submit_store(8, 5)
        for _ in range(50):
            if mem.tick():
                break
        assert mem.final_state()[8] == 5

    def test_load_image_reaches_backing_store(self):
        mem = self.make()
        mem.load_image({16: 3})
        load = mem.submit_load(16)
        done: dict[int, int | None] = {}
        for _ in range(50):
            done.update(mem.tick())
            if load in done:
                break
        assert done[load] == 3
