"""Integration: the Ultrascalar extracts exactly the ILP of an ideal superscalar.

The paper (Section 2, Figure 3): "the datapath ... exploits the same
instruction-level parallelism as today's superscalars ... This timing
diagram is exactly what would be produced in a traditional superscalar
processor that has enough functional units to exploit the parallelism
of the code sequence."

We verify cycle-exactly: with a window at least as large as the dynamic
instruction count (and fetch width to match), the Ultrascalar I's
per-instruction issue times equal the idealized dataflow schedule's.
"""

import pytest

from repro.baseline.dataflow import dataflow_schedule
from repro.isa.interpreter import MachineState, run_program
from repro.ultrascalar import IdealMemory, ProcessorConfig, make_ultrascalar1
from repro.workloads import (
    dependency_chain,
    independent_ops,
    memory_stream,
    paper_sequence,
    random_ilp,
)


def issue_times_of(workload, window, fetch_width):
    config = ProcessorConfig(window_size=window, fetch_width=fetch_width)
    memory = IdealMemory()
    memory.load_image(workload.memory_image)
    processor = make_ultrascalar1(
        workload.program, config, memory=memory, initial_registers=workload.registers_for()
    )
    result = processor.run()
    ordered = sorted(result.timings, key=lambda t: t.seq)
    return [t.issue_cycle for t in ordered], result


def oracle_times(workload):
    golden = run_program(
        workload.program,
        state=MachineState(workload.registers_for(), dict(workload.memory_image)),
    )
    return dataflow_schedule(golden.trace)


WORKLOADS = [
    paper_sequence(),
    dependency_chain(25),
    independent_ops(30),
    random_ilp(50, 0.2, seed=51),
    random_ilp(50, 0.5, seed=52),
    random_ilp(50, 0.9, seed=53),
    memory_stream(10),
]


@pytest.mark.parametrize("workload", WORKLOADS, ids=lambda w: w.name)
class TestCycleExactEquivalence:
    def test_issue_times_match_dataflow_oracle(self, workload):
        golden = run_program(
            workload.program,
            state=MachineState(workload.registers_for(), dict(workload.memory_image)),
        )
        n = golden.dynamic_length
        got, _ = issue_times_of(workload, window=n, fetch_width=n)
        want = oracle_times(workload).issue_times()
        assert got == want

    def test_total_cycles_match(self, workload):
        golden = run_program(
            workload.program,
            state=MachineState(workload.registers_for(), dict(workload.memory_image)),
        )
        n = golden.dynamic_length
        _, result = issue_times_of(workload, window=n, fetch_width=n)
        assert result.cycles == oracle_times(workload).cycles


class TestFigure3:
    """The paper's Figure 3 timing diagram, cycle for cycle."""

    def test_exact_figure3_schedule(self):
        workload = paper_sequence()
        times, result = issue_times_of(workload, window=9, fetch_width=9)
        # Figure 3 (div=10, mul=3, add=1):
        #   R3=R1/R2  issues at 0, busy through 9
        #   R0=R0+R3  issues at 10
        #   R1=R5+R6  issues at 0
        #   R1=R0+R1  issues at 11
        #   R2=R5*R6  issues at 0, busy through 2
        #   R2=R2+R4  issues at 3
        #   R0=R5-R6  issues at 0
        #   R4=R0+R7  issues at 1
        assert times[:8] == [0, 10, 0, 11, 0, 3, 0, 1]
        assert result.cycles == 12  # the figure's 12-cycle horizon

    def test_figure3_execution_spans(self):
        workload = paper_sequence()
        _, result = issue_times_of(workload, window=9, fetch_width=9)
        spans = {
            str(t.instruction): t.execute_span
            for t in result.timings
        }
        assert spans["div r3, r1, r2"] == (0, 10)   # ten cycles of divide
        assert spans["mul r2, r5, r6"] == (0, 3)    # three cycles of multiply
        assert spans["add r0, r0, r3"] == (10, 11)

    def test_out_of_order_issue_demonstrated(self):
        """Station 4's instruction "computes right away" while the older
        divide is still running — the paper's out-of-order claim."""
        workload = paper_sequence()
        times, _ = issue_times_of(workload, window=9, fetch_width=9)
        assert times[4] == 0   # R2=R5*R6 issues immediately
        assert times[1] == 10  # while the older R0=R0+R3 waits for the divide


class TestWindowShrinksParallelism:
    def test_small_window_costs_cycles(self):
        workload = random_ilp(60, 0.3, seed=61)
        _, wide = issue_times_of(workload, window=64, fetch_width=16)
        _, narrow = issue_times_of(workload, window=4, fetch_width=4)
        assert narrow.cycles > wide.cycles

    def test_window_beyond_program_changes_nothing(self):
        workload = random_ilp(30, 0.5, seed=62)
        times_a, a = issue_times_of(workload, window=40, fetch_width=40)
        times_b, b = issue_times_of(workload, window=400, fetch_width=40)
        assert times_a == times_b
        assert a.cycles == b.cycles
