"""Memory systems the processor models plug into.

Two implementations of one small protocol:

* :class:`IdealMemory` — a flat store with a fixed load latency: loads
  complete ``load_latency`` cycles after issue, stores are visible
  immediately at execution.  Used for scheduling-equivalence experiments
  where memory contention must not add noise.
* :class:`CachedMemory` — the paper's proposal: an interleaved banked
  cache reached through a fat-tree of bandwidth ``M(n)``.  Load/store
  completion times become dynamic (bank conflicts, misses, network
  admission), exercising the paper's memory-bandwidth discussion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.memory.interleaved_cache import InterleavedCache, MemoryRequest
from repro.util.bitops import WORD_MASK


class MemorySystem(Protocol):
    """What a processor model needs from memory."""

    def submit_load(self, address: int, leaf: int = 0) -> int:
        """Begin a load; returns a request id."""
        ...

    def submit_store(self, address: int, value: int, leaf: int = 0) -> int:
        """Begin a store; returns a request id."""
        ...

    def tick(self) -> dict[int, int | None]:
        """Advance a cycle; maps completed request ids to load values."""
        ...

    def peek_word(self, address: int) -> int:
        """Architectural value at *address* (for final-state checks)."""
        ...

    def load_image(self, image: dict[int, int]) -> None:
        """Preload memory contents."""
        ...

    def final_state(self) -> dict[int, int]:
        """All written words, flushed (for golden-model comparison)."""
        ...

    def counters(self) -> dict[str, int]:
        """Telemetry counters (``mem.*`` namespace) for run statistics."""
        ...


@dataclass
class IdealMemory:
    """Fixed-latency magic memory (see module docstring)."""

    load_latency: int = 1
    store_latency: int = 1
    words: dict[int, int] = field(default_factory=dict)
    _next_id: int = 0
    _in_flight: list[tuple[int, int, bool, int, int]] = field(default_factory=list)
    # each entry: (request_id, finish_in, is_store, address, value)

    def __post_init__(self) -> None:
        if self.load_latency < 1 or self.store_latency < 1:
            raise ValueError("latencies must be >= 1")

    def _check(self, address: int) -> None:
        if address % 4 != 0:
            raise ValueError(f"unaligned address {address:#x}")

    def submit_load(self, address: int, leaf: int = 0) -> int:
        self._check(address)
        request_id = self._next_id
        self._next_id += 1
        self._in_flight.append((request_id, self.load_latency, False, address, 0))
        return request_id

    def submit_store(self, address: int, value: int, leaf: int = 0) -> int:
        self._check(address)
        request_id = self._next_id
        self._next_id += 1
        # Stores take effect immediately (the ring's ordering conditions
        # already guarantee no earlier load can still need the old value),
        # but completion is signalled after store_latency cycles.
        self.words[address] = value & WORD_MASK
        self._in_flight.append((request_id, self.store_latency, True, address, value))
        return request_id

    def tick(self) -> dict[int, int | None]:
        completed: dict[int, int | None] = {}
        remaining = []
        for request_id, cycles, is_store, address, value in self._in_flight:
            if cycles <= 1:
                completed[request_id] = None if is_store else self.words.get(address, 0)
            else:
                remaining.append((request_id, cycles - 1, is_store, address, value))
        self._in_flight = remaining
        return completed

    def peek_word(self, address: int) -> int:
        return self.words.get(address, 0)

    def load_image(self, image: dict[int, int]) -> None:
        for address, value in image.items():
            self._check(address)
            self.words[address] = value & WORD_MASK

    def final_state(self) -> dict[int, int]:
        return dict(self.words)

    def counters(self) -> dict[str, int]:
        return {"mem.requests": self._next_id}


class CachedMemory:
    """Interleaved cache + fat-tree admission behind the protocol."""

    def __init__(self, cache: InterleavedCache):
        self.cache = cache
        self._next_id = 0

    def submit_load(self, address: int, leaf: int = 0) -> int:
        request_id = self._next_id
        self._next_id += 1
        self.cache.submit(
            MemoryRequest(request_id=request_id, address=address, is_store=False, leaf=leaf)
        )
        return request_id

    def submit_store(self, address: int, value: int, leaf: int = 0) -> int:
        request_id = self._next_id
        self._next_id += 1
        self.cache.submit(
            MemoryRequest(
                request_id=request_id, address=address, is_store=True, value=value, leaf=leaf
            )
        )
        return request_id

    def tick(self) -> dict[int, int | None]:
        return {
            req.request_id: (None if req.is_store else req.result)
            for req in self.cache.tick()
        }

    def peek_word(self, address: int) -> int:
        # architectural view = cache content if present else memory
        bank, set_index, tag = self.cache._line_index(address)
        line = self.cache._lines[bank].get(set_index)
        if line is not None and line.tag == tag:
            word = (address // 4 // self.cache.banks) % self.cache.words_per_line
            return line.words[word]
        return self.cache.memory.read_word(address)

    def load_image(self, image: dict[int, int]) -> None:
        self.cache.memory.load_image(image)

    def final_state(self) -> dict[int, int]:
        self.cache.flush()
        return {a: v for a, v in self.cache.memory.snapshot().items()}

    def counters(self) -> dict[str, int]:
        counters = {"mem.requests": self._next_id}
        counters.update(self.cache.stats.counters())
        return counters
