"""Experiment E13 — the dominance map over the (n, L) design space.

Section 7: "The analysis shows that the hybrid dominates the other
processors.  The Ultrascalar I and Ultrascalar II are incomparable,
each beating the other in certain cases."

We evaluate all three layout models over a grid of (n, L) and mark the
winner (shortest critical wire) in each cell — the "who wins where"
picture behind the paper's crossover statements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.tables import Table
from repro.vlsi.grid_layout import Ultrascalar2Layout
from repro.vlsi.htree_layout import Ultrascalar1Layout
from repro.vlsi.hybrid_layout import HybridLayout


#: sweep points the runner executes and the cache keys (kwargs for
#: :func:`report`)
SWEEP_POINTS: list[dict] = [
    {
        "sizes": [16, 64, 256, 1024, 4096, 16384],
        "L_values": [8, 16, 32, 64, 128],
    }
]


@dataclass
class DominanceMap:
    """Winner per (n, L) cell."""

    n_values: list[int]
    L_values: list[int]
    #: (n, L) -> "US1" | "US2" | "HYB" ignoring the hybrid / including it
    winner_pairwise: dict[tuple[int, int], str]
    winner_overall: dict[tuple[int, int], str]

    def us2_wins_somewhere(self) -> bool:
        """The incomparability claim needs US-II to win some cell."""
        return any(w == "US2" for w in self.winner_pairwise.values())

    def us1_wins_somewhere(self) -> bool:
        """... and US-I to win some other cell."""
        return any(w == "US1" for w in self.winner_pairwise.values())

    def hybrid_wins_at_scale(self, factor: int = 16) -> bool:
        """The hybrid dominates wherever n >= factor * L.

        The paper's dominance claim is asymptotic ("For n >= L the
        hybrid dominates both"); at small n the hybrid degenerates to a
        single Ultrascalar II cluster plus H-tree overhead, so the
        constant-factor threshold is where the claim bites.
        """
        return all(
            self.winner_overall[(n, L)] == "HYB"
            for n in self.n_values
            for L in self.L_values
            if n >= factor * L
        )

    def pairwise_boundary_is_monotone(self) -> bool:
        """Along each L row, once US-I starts winning it keeps winning
        as n grows (a single crossover, as Θ(L²) implies)."""
        for L in self.L_values:
            seen_us1 = False
            for n in self.n_values:
                winner = self.winner_pairwise[(n, L)]
                if winner == "US1":
                    seen_us1 = True
                elif seen_us1:
                    return False
        return True


def _hybrid_for(n: int, L: int) -> HybridLayout:
    cluster = min(L, n)
    while n % cluster:
        cluster //= 2
    return HybridLayout(n, max(1, cluster), L)


def run(
    sizes: list[int] | None = None,
    L_values: list[int] | None = None,
) -> DominanceMap:
    """Evaluate the grid over window sizes (the n axis) and L."""
    n_values = sizes or [16, 64, 256, 1024, 4096, 16384]
    L_values = L_values or [8, 16, 32, 64, 128]
    pairwise: dict[tuple[int, int], str] = {}
    overall: dict[tuple[int, int], str] = {}
    for n in n_values:
        for L in L_values:
            us1 = Ultrascalar1Layout(n, L).critical_wire
            us2 = Ultrascalar2Layout(n, L).critical_wire
            hybrid = _hybrid_for(n, L).critical_wire
            pairwise[(n, L)] = "US1" if us1 <= us2 else "US2"
            best = min(("HYB", hybrid), ("US1", us1), ("US2", us2), key=lambda t: t[1])
            overall[(n, L)] = best[0]
    return DominanceMap(
        n_values=n_values,
        L_values=L_values,
        winner_pairwise=pairwise,
        winner_overall=overall,
    )


def report(
    sizes: list[int] | None = None,
    L_values: list[int] | None = None,
) -> str:
    """Two maps: US-I vs US-II, and overall (with the hybrid)."""
    outcome = run(sizes, L_values)
    pair = Table(
        ["n \\ L"] + [str(L) for L in outcome.L_values],
        title="E13 — shortest critical wire, US-I vs US-II "
        "(the incomparability map; crossover at n = Θ(L²))",
    )
    for n in outcome.n_values:
        pair.add_row([n] + [outcome.winner_pairwise[(n, L)] for L in outcome.L_values])
    full = Table(
        ["n \\ L"] + [str(L) for L in outcome.L_values],
        title="Overall winner including the hybrid",
    )
    for n in outcome.n_values:
        full.add_row([n] + [outcome.winner_overall[(n, L)] for L in outcome.L_values])
    return pair.render() + "\n\n" + full.render()


if __name__ == "__main__":  # pragma: no cover
    print(report())
