"""End-to-end bench runs (marked ``bench``; excluded from tier-1).

Run with ``pytest -m bench tests/unit/test_bench_smoke.py`` — the CI
bench-smoke job does, tier-1 does not (timed runs are too slow and too
noisy for the default gate).
"""

import json

import pytest

from repro.bench.artifact import BENCH_SCHEMA, validate_bench_artifact
from repro.bench.cli import main as bench_main

pytestmark = pytest.mark.bench


class TestQuickRunEndToEnd:
    def test_quick_json_artifact(self, tmp_path, capsys):
        path = tmp_path / "BENCH_smoke.json"
        assert bench_main(["--quick", "--repeats", "2",
                           "--json", str(path)]) == 0
        document = json.loads(path.read_text(encoding="utf-8"))
        assert validate_bench_artifact(document) == []
        assert document["schema"] == BENCH_SCHEMA
        assert document["mode"] == "quick"

        names = [entry["name"] for entry in document["results"]]
        # the acceptance bar: all three processor designs are covered
        designs = {
            entry["metadata"].get("design") for entry in document["results"]
        }
        assert {"us1", "us2", "hybrid"} <= designs
        assert any(name.startswith("cspp.") for name in names)
        assert any(name.startswith("isa.") for name in names)

        # engine records carry the simulated-cycle join
        engine = next(e for e in document["results"]
                      if e["name"].startswith("engine."))
        assert engine["stats"]["cycles"] > 0
        assert engine["rates"]["sim_cycles_per_s"] > 0
        capsys.readouterr()

    def test_profile_writes_pstats_and_collapsed(self, tmp_path, capsys):
        out = tmp_path / "profiles"
        assert bench_main(["--filter", "isa", "--repeats", "1",
                           "--profile", "--profile-dir", str(out)]) == 0
        pstats_files = list(out.glob("*.pstats"))
        collapsed_files = list(out.glob("*.collapsed.txt"))
        assert pstats_files and collapsed_files
        text = collapsed_files[0].read_text(encoding="utf-8")
        # flamegraph folded format: "frame[;frame] <count>"
        for line in text.strip().splitlines():
            frames, count = line.rsplit(" ", 1)
            assert frames and int(count) >= 1
        capsys.readouterr()
