"""Job execution: sequential or process-pool fan-out with a watchdog.

Jobs are pure functions of their :class:`~repro.runner.registry.JobSpec`
(module path + function name + kwargs), so they pickle cheaply and run
identically inline or in a worker process.  The parent owns the cache:
workers never touch disk, results are stored once per miss on the way
back.  Each job gets ``1 + retries`` attempts; a timeout or crash on the
final attempt marks that job failed and the run continues — one broken
experiment no longer aborts ``all``.
"""

from __future__ import annotations

import importlib
import traceback
from concurrent.futures import Future, ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from time import perf_counter
from typing import Callable

from repro.runner.cache import ResultCache
from repro.runner.metrics import STATUS_FAILED, STATUS_OK, STATUS_TIMEOUT, JobResult
from repro.runner.registry import JobSpec
from repro.util.log import get_logger
from repro.util.rng import derive_seed, seed_bare_rngs

log = get_logger("runner.pool")


def _execute(
    module: str, func: str, kwargs: dict, collect: bool = False, attempt: int = 1
) -> tuple[str, str, float, dict[str, int] | None]:
    """Run one job; errors come back as data so the parent can retry.

    Runs in worker processes (and inline when ``workers == 1``), so it
    must stay a picklable top-level function.  With ``collect`` a
    telemetry session wraps the call: every processor the experiment
    builds reports to one :class:`~repro.telemetry.tracer.CountingTracer`
    whose counters ride back with the result (a plain dict, so it
    pickles across the pool boundary).

    Each attempt reseeds the process-global RNGs from the job identity
    plus the attempt number, so a retried job (e.g. a fuzz shard whose
    worker was OOM-killed) replays a deterministic stream instead of
    inheriting whatever state the worker happened to accumulate.
    """
    start = perf_counter()
    seed_bare_rngs(derive_seed(module, func, sorted(kwargs.items()), attempt))
    try:
        fn = getattr(importlib.import_module(module), func)
        if collect:
            from repro.telemetry.session import collecting

            with collecting() as tracer:
                output = fn(**kwargs)
            stats = tracer.snapshot()
        else:
            output = fn(**kwargs)
            stats = None
        if not isinstance(output, str):
            raise TypeError(
                f"{module}.{func} returned {type(output).__name__}, expected str"
            )
        return (STATUS_OK, output, perf_counter() - start, stats)
    except Exception:
        return (STATUS_FAILED, traceback.format_exc(), perf_counter() - start, None)


def _hit_result(job: JobSpec, entry, elapsed: float) -> JobResult:
    return JobResult(
        experiment=job.experiment,
        title=job.title,
        kwargs=dict(job.kwargs),
        index=job.index,
        count=job.count,
        status=STATUS_OK,
        cache_hit=True,
        attempts=0,
        wall_time_s=elapsed,
        output=entry.output,
        compute_time_s=entry.compute_time_s,
    )


def _miss_result(
    job: JobSpec,
    status: str,
    payload: str,
    elapsed: float,
    attempts: int,
    stats: dict[str, int] | None = None,
) -> JobResult:
    ok = status == STATUS_OK
    return JobResult(
        experiment=job.experiment,
        title=job.title,
        kwargs=dict(job.kwargs),
        index=job.index,
        count=job.count,
        status=status,
        cache_hit=False,
        attempts=attempts,
        wall_time_s=elapsed,
        output=payload if ok else None,
        error=None if ok else payload,
        compute_time_s=elapsed if ok else 0.0,
        stats=stats if ok else None,
    )


def _run_inline(job: JobSpec, attempts: int, collect: bool = False) -> JobResult:
    """Execute with retry in this process (the ``--jobs 1`` path)."""
    for attempt in range(1, attempts + 1):
        status, payload, elapsed, stats = _execute(
            job.module, job.func, dict(job.kwargs), collect, attempt
        )
        if status == STATUS_OK or attempt == attempts:
            return _miss_result(job, status, payload, elapsed, attempt, stats)
        log.debug(
            "job %s[%d/%d] %s on attempt %d/%d; retrying inline",
            job.experiment, job.index + 1, job.count, status, attempt, attempts,
        )
    raise AssertionError("unreachable")  # pragma: no cover


def run_jobs(
    jobs: list[JobSpec],
    *,
    workers: int = 1,
    cache: ResultCache | None = None,
    timeout: float | None = None,
    retries: int = 1,
    on_result: Callable[[JobResult], None] | None = None,
    collect_stats: bool = False,
) -> list[JobResult]:
    """Run every job; emit results in job order via ``on_result``.

    Cache hits are resolved in the parent before any worker spawns, so a
    fully warm run never pays pool start-up.  ``timeout`` bounds each
    wait on a parallel job (the inline path has no watchdog — there is
    no second process to keep the CLI responsive).  Failed jobs are
    recorded, not raised.  ``collect_stats`` turns on telemetry
    collection for jobs that actually execute; cache hits carry no stats
    (the cache stores report text only, so its on-disk format — and
    therefore ``--jobs`` behaviour — is unchanged by collection).
    """
    attempts_allowed = 1 + max(0, retries)
    hits: dict[int, object] = {}
    for idx, job in enumerate(jobs):
        if cache is not None:
            start = perf_counter()
            entry = cache.get(job.experiment, job.kwargs)
            if entry is not None:
                hits[idx] = (entry, perf_counter() - start)

    results: list[JobResult] = []

    def emit(result: JobResult) -> None:
        if cache is not None and result.ok and not result.cache_hit:
            cache.put(
                result.experiment, result.kwargs, result.output, result.wall_time_s
            )
        results.append(result)
        if on_result is not None:
            on_result(result)

    misses = [idx for idx in range(len(jobs)) if idx not in hits]
    if workers <= 1 or len(misses) <= 1:
        for idx, job in enumerate(jobs):
            if idx in hits:
                entry, elapsed = hits[idx]
                emit(_hit_result(job, entry, elapsed))
            else:
                emit(_run_inline(job, attempts_allowed, collect_stats))
        return results

    pool = ProcessPoolExecutor(max_workers=min(workers, len(misses)))
    futures: dict[int, Future] = {}
    attempts: dict[int, int] = {}

    def submit(idx: int) -> None:
        job = jobs[idx]
        attempts[idx] = attempts.get(idx, 0) + 1
        futures[idx] = pool.submit(
            _execute,
            job.module,
            job.func,
            dict(job.kwargs),
            collect_stats,
            attempts[idx],
        )

    try:
        for idx in misses:
            submit(idx)
        for idx, job in enumerate(jobs):
            if idx in hits:
                entry, elapsed = hits[idx]
                emit(_hit_result(job, entry, elapsed))
                continue
            while True:
                stats = None
                try:
                    status, payload, elapsed, stats = futures[idx].result(
                        timeout=timeout
                    )
                except FutureTimeout:
                    futures[idx].cancel()
                    status = STATUS_TIMEOUT
                    payload = (
                        f"timed out after {timeout}s "
                        f"(attempt {attempts[idx]}/{attempts_allowed})"
                    )
                    elapsed = float(timeout or 0.0)
                    log.warning(
                        "job %s[%d/%d] timed out after %ss (attempt %d/%d)",
                        job.experiment, job.index + 1, job.count,
                        timeout, attempts[idx], attempts_allowed,
                    )
                except BrokenProcessPool:
                    # a worker died hard (e.g. OOM-kill); the whole pool
                    # is poisoned, so rebuild it for the remaining jobs
                    log.warning(
                        "worker pool broke during %s[%d/%d]; rebuilding "
                        "for the remaining jobs",
                        job.experiment, job.index + 1, job.count,
                    )
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = ProcessPoolExecutor(max_workers=min(workers, len(misses)))
                    for other in misses:
                        if other > idx and not futures[other].done():
                            attempts[other] -= 1  # not this job's fault
                            submit(other)
                    status = STATUS_FAILED
                    payload = (
                        "worker process died before returning "
                        f"(attempt {attempts[idx]}/{attempts_allowed})"
                    )
                    elapsed = 0.0
                if status == STATUS_OK or attempts[idx] >= attempts_allowed:
                    emit(
                        _miss_result(
                            job, status, payload, elapsed, attempts[idx], stats
                        )
                    )
                    break
                log.debug(
                    "job %s[%d/%d] %s; resubmitting (attempt %d/%d)",
                    job.experiment, job.index + 1, job.count,
                    status, attempts[idx] + 1, attempts_allowed,
                )
                submit(idx)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return results
