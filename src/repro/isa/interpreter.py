"""The golden sequential interpreter.

Every processor model in this repository — Ultrascalar I, Ultrascalar II,
the hybrid, and the dataflow baseline — is differentially tested against
this interpreter: same program, same initial state, same final registers
and memory, and the same dynamic instruction trace.

Arithmetic follows RISC-V conventions for the edge cases so that all
models agree on well-defined results: division by zero yields all-ones
(-1), remainder by zero yields the dividend, and the signed-overflow case
``INT_MIN / -1`` yields ``INT_MIN`` with remainder 0.  Shifts use the low
five bits of the shift amount.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Instruction
from repro.isa.latency import LatencyModel
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.util.bitops import WORD_MASK, to_signed, to_unsigned


class InterpreterError(RuntimeError):
    """Raised on invalid execution (bad PC, unaligned access, runaway loop)."""


@dataclass
class MachineState:
    """Architectural state: registers and a sparse word memory."""

    registers: list[int]
    memory: dict[int, int] = field(default_factory=dict)

    @staticmethod
    def zeroed(num_registers: int) -> "MachineState":
        """A state with all registers zero and empty memory."""
        return MachineState([0] * num_registers)

    def copy(self) -> "MachineState":
        """Deep copy (registers and memory)."""
        return MachineState(list(self.registers), dict(self.memory))

    def load_word(self, address: int) -> int:
        """Read the 32-bit word at byte *address* (must be 4-aligned)."""
        if address % 4 != 0:
            raise InterpreterError(f"unaligned load at {address:#x}")
        return self.memory.get(address, 0)

    def store_word(self, address: int, value: int) -> None:
        """Write the 32-bit word at byte *address* (must be 4-aligned)."""
        if address % 4 != 0:
            raise InterpreterError(f"unaligned store at {address:#x}")
        self.memory[address] = value & WORD_MASK


@dataclass(frozen=True)
class StepOutcome:
    """One dynamic instruction execution, recorded into the trace.

    Attributes:
        static_index: position of the instruction in the program.
        instruction: the static instruction.
        operand_values: the values read for (rs1, rs2), where present.
        result: value written to ``rd`` (``None`` if no write).
        address: effective address for loads/stores (``None`` otherwise).
        taken: branch outcome (``None`` for non-control instructions;
            unconditional jumps record ``True``).
        next_pc: the PC after this instruction.
    """

    static_index: int
    instruction: Instruction
    operand_values: tuple[int, ...]
    result: int | None
    address: int | None
    taken: bool | None
    next_pc: int


@dataclass
class ExecutionResult:
    """The result of running a whole program."""

    state: MachineState
    trace: list[StepOutcome]
    halted: bool

    @property
    def dynamic_length(self) -> int:
        """Number of dynamic instructions executed (including HALT)."""
        return len(self.trace)

    def total_latency_cycles(self, latencies: LatencyModel) -> int:
        """Sum of per-instruction latencies: a purely sequential machine's runtime."""
        return sum(latencies.latency_of(step.instruction.op) for step in self.trace)


def alu_result(op: Opcode, a: int, b: int, imm: int | None) -> int:
    """Compute the 32-bit result of a computational opcode."""
    sa, sb = to_signed(a), to_signed(b)
    if op in (Opcode.ADD, Opcode.ADDI):
        return to_unsigned(a + (b if op is Opcode.ADD else imm))
    if op is Opcode.SUB:
        return to_unsigned(a - b)
    if op in (Opcode.AND, Opcode.ANDI):
        return a & (b if op is Opcode.AND else to_unsigned(imm))
    if op in (Opcode.OR, Opcode.ORI):
        return a | (b if op is Opcode.OR else to_unsigned(imm))
    if op in (Opcode.XOR, Opcode.XORI):
        return a ^ (b if op is Opcode.XOR else to_unsigned(imm))
    if op in (Opcode.SLL, Opcode.SLLI):
        shift = (b if op is Opcode.SLL else imm) & 0x1F
        return to_unsigned(a << shift)
    if op in (Opcode.SRL, Opcode.SRLI):
        shift = (b if op is Opcode.SRL else imm) & 0x1F
        return a >> shift
    if op is Opcode.SRA:
        return to_unsigned(sa >> (b & 0x1F))
    if op is Opcode.SLT:
        return int(sa < sb)
    if op is Opcode.SLTI:
        return int(sa < imm)
    if op is Opcode.SLTU:
        return int(a < b)
    if op in (Opcode.MUL, Opcode.MULI):
        return to_unsigned(sa * (sb if op is Opcode.MUL else imm))
    if op is Opcode.DIV:
        if sb == 0:
            return WORD_MASK  # RISC-V: division by zero -> -1
        if sa == -(1 << 31) and sb == -1:
            return to_unsigned(-(1 << 31))  # overflow -> INT_MIN
        quotient = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            quotient = -quotient
        return to_unsigned(quotient)
    if op is Opcode.REM:
        if sb == 0:
            return a  # RISC-V: remainder by zero -> dividend
        if sa == -(1 << 31) and sb == -1:
            return 0
        remainder = abs(sa) % abs(sb)
        if sa < 0:
            remainder = -remainder
        return to_unsigned(remainder)
    if op is Opcode.MOV:
        return a
    if op is Opcode.NOT:
        return to_unsigned(~a)
    if op is Opcode.NEG:
        return to_unsigned(-sa)
    if op is Opcode.LI:
        return to_unsigned(imm)
    if op is Opcode.LUI:
        return to_unsigned(imm << 16)
    raise InterpreterError(f"opcode {op} is not a computational opcode")


def branch_taken(op: Opcode, a: int, b: int) -> bool:
    """Evaluate a conditional branch's outcome on operand values (a, b)."""
    sa, sb = to_signed(a), to_signed(b)
    if op is Opcode.BEQ:
        return a == b
    if op is Opcode.BNE:
        return a != b
    if op is Opcode.BLT:
        return sa < sb
    if op is Opcode.BGE:
        return sa >= sb
    if op is Opcode.BLTU:
        return a < b
    if op is Opcode.BGEU:
        return a >= b
    raise InterpreterError(f"opcode {op} is not a conditional branch")


def execute_instruction(
    inst: Instruction, static_index: int, state: MachineState
) -> StepOutcome:
    """Execute one instruction against *state*, mutating it; returns the outcome.

    This is the single source of truth for instruction semantics; the
    processor models call it when an instruction's operands become ready.
    """
    regs = state.registers
    a = regs[inst.rs1] if inst.rs1 is not None else 0
    b = regs[inst.rs2] if inst.rs2 is not None else 0
    operands = tuple(
        value for value, present in ((a, inst.rs1 is not None), (b, inst.rs2 is not None)) if present
    )

    result: int | None = None
    address: int | None = None
    taken: bool | None = None
    next_pc = static_index + 1

    op = inst.op
    if op is Opcode.HALT or op is Opcode.NOP:
        pass
    elif op is Opcode.LW:
        address = to_unsigned(a + inst.imm)
        result = state.load_word(address)
        regs[inst.rd] = result
    elif op is Opcode.SW:
        address = to_unsigned(a + inst.imm)
        state.store_word(address, b)
    elif inst.is_branch:
        taken = branch_taken(op, a, b)
        if taken:
            next_pc = inst.target
    elif op is Opcode.J:
        taken = True
        next_pc = inst.target
    else:
        result = alu_result(op, a, b, inst.imm)
        regs[inst.rd] = result

    return StepOutcome(
        static_index=static_index,
        instruction=inst,
        operand_values=operands,
        result=result,
        address=address,
        taken=taken,
        next_pc=next_pc,
    )


def run_program(
    program: Program,
    state: MachineState | None = None,
    max_steps: int = 1_000_000,
) -> ExecutionResult:
    """Run *program* to HALT (or falling off the end) and return the result.

    Raises :class:`InterpreterError` if more than *max_steps* dynamic
    instructions execute (runaway loop protection).
    """
    state = state if state is not None else MachineState.zeroed(program.spec.num_registers)
    trace: list[StepOutcome] = []
    pc = 0
    halted = False
    while 0 <= pc < len(program):
        if len(trace) >= max_steps:
            raise InterpreterError(f"exceeded {max_steps} steps without halting")
        inst = program[pc]
        outcome = execute_instruction(inst, pc, state)
        trace.append(outcome)
        if inst.is_halt:
            halted = True
            break
        pc = outcome.next_pc
    return ExecutionResult(state=state, trace=trace, halted=halted)
