"""Unit tests for the dataflow oracle and the conventional complexity model."""

import pytest

from repro.baseline.complexity import (
    bypass_delay,
    conventional_superscalar_delay,
    rename_delay,
    select_delay,
    wakeup_delay,
)
from repro.baseline.dataflow import dataflow_schedule
from repro.isa import LatencyModel, assemble, run_program
from repro.isa.interpreter import MachineState
from repro.workloads import paper_sequence


class TestDataflowSchedule:
    def test_paper_figure3_issue_times(self):
        """The schedule must reproduce the paper's Figure 3 exactly."""
        w = paper_sequence()
        golden = run_program(w.program, state=MachineState(w.registers_for()))
        schedule = dataflow_schedule(golden.trace)
        # div@0, add(R0+R3)@10, add(R5+R6)@0, add(R0+R1)@11,
        # mul@0, add(R2+R4)@3, sub@0, add(R0+R7)@1, halt@0
        assert schedule.issue_times() == [0, 10, 0, 11, 0, 3, 0, 1, 0]
        assert schedule.cycles == 12

    def test_serial_chain(self):
        golden = run_program(assemble("li r1, 1\nadd r2, r1, r1\nadd r3, r2, r2\nhalt"))
        schedule = dataflow_schedule(golden.trace)
        assert schedule.issue_times() == [0, 1, 2, 0]

    def test_latency_propagates(self):
        golden = run_program(assemble("li r1, 8\nli r2, 2\nmul r3, r1, r2\nadd r4, r3, r3\nhalt"))
        schedule = dataflow_schedule(golden.trace, LatencyModel(mul=3))
        entries = schedule.entries
        assert entries[2].issue_cycle == 1       # waits for both LIs (avail at 1)
        assert entries[2].complete_cycle == 3    # 3-cycle multiply
        assert entries[3].issue_cycle == 4       # forwarded a cycle later

    def test_load_waits_for_stores(self):
        golden = run_program(
            assemble("li r1, 8\nsw r1, 0(r1)\nlw r2, 0(r1)\nhalt")
        )
        schedule = dataflow_schedule(golden.trace)
        store, load = schedule.entries[1], schedule.entries[2]
        assert load.issue_cycle >= store.complete_cycle + 1

    def test_store_waits_for_prior_loads_and_branches(self):
        golden = run_program(
            assemble(
                """
                li r1, 8
                lw r2, 0(r1)
                beq r2, r0, next
              next:
                sw r1, 4(r1)
                halt
                """
            )
        )
        schedule = dataflow_schedule(golden.trace)
        load = schedule.entries[1]
        branch = schedule.entries[2]
        store = schedule.entries[3]
        assert store.issue_cycle >= load.complete_cycle + 1
        assert store.issue_cycle >= branch.complete_cycle + 1

    def test_fetch_width_staggers_entry(self):
        golden = run_program(assemble("nop\nnop\nnop\nnop\nhalt"))
        schedule = dataflow_schedule(golden.trace, fetch_width=2)
        assert [e.fetch_cycle for e in schedule.entries] == [0, 0, 1, 1, 2]

    def test_taken_branch_breaks_fetch_group(self):
        golden = run_program(assemble("j next\nnop\nnext: halt"))
        schedule = dataflow_schedule(golden.trace, fetch_width=4)
        assert schedule.entries[0].fetch_cycle == 0
        assert schedule.entries[1].fetch_cycle == 1  # halt after the jump

    def test_window_limits_inflight(self):
        golden = run_program(assemble("nop\nnop\nnop\nnop\nhalt"))
        tight = dataflow_schedule(golden.trace, window_size=1)
        loose = dataflow_schedule(golden.trace)
        assert tight.cycles > loose.cycles

    def test_commit_is_monotone(self):
        w = paper_sequence()
        golden = run_program(w.program, state=MachineState(w.registers_for()))
        schedule = dataflow_schedule(golden.trace)
        commits = [e.commit_cycle for e in schedule.entries]
        assert commits == sorted(commits)

    def test_empty_trace(self):
        schedule = dataflow_schedule([])
        assert schedule.cycles == 0
        assert schedule.ipc == 0.0


class TestConventionalComplexity:
    def test_quadratic_growth_in_issue_width(self):
        d4 = conventional_superscalar_delay(4).critical
        d8 = conventional_superscalar_delay(8).critical
        d16 = conventional_superscalar_delay(16).critical
        d64 = conventional_superscalar_delay(64).critical
        assert d4 < d8 < d16 < d64
        # the quadratic term dominates eventually: quadrupling width from
        # 16 to 64 should much more than quadruple the delay
        assert d64 / d16 > 4

    def test_wakeup_grows_with_window(self):
        assert wakeup_delay(4, 128) > wakeup_delay(4, 32)

    def test_select_is_logarithmic(self):
        assert select_delay(64) - select_delay(32) == pytest.approx(
            select_delay(128) - select_delay(64), rel=0.01
        )

    def test_bypass_quadratic(self):
        assert bypass_delay(8) - bypass_delay(4) < bypass_delay(16) - bypass_delay(8)

    def test_rename_depends_on_register_count(self):
        assert rename_delay(4, 64) > rename_delay(4, 32)

    def test_default_window_is_8x(self):
        explicit = conventional_superscalar_delay(4, window_size=32)
        default = conventional_superscalar_delay(4)
        assert default == explicit

    def test_validation(self):
        with pytest.raises(ValueError):
            rename_delay(0, 32)
        with pytest.raises(ValueError):
            select_delay(0)
        with pytest.raises(ValueError):
            bypass_delay(0)
