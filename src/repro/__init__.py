"""Reproduction of *A Comparison of Scalable Superscalar Processors* (SPAA 1999).

This package implements, in pure Python + NumPy, the three scalable
superscalar microarchitectures compared by Kuszmaul, Henry, and Loh:

* :mod:`repro.ultrascalar` -- the Ultrascalar I (CSPP ring datapath), the
  Ultrascalar II (mesh-of-trees grid datapath) and the hybrid clustered
  processor, as cycle-accurate behavioural simulators.
* :mod:`repro.circuits` -- a gate-level netlist framework with an
  event-driven timing simulator, used to *measure* the paper's gate-delay
  claims on real circuit constructions (cyclic segmented parallel prefix,
  mux rings, comparator columns, fan-out trees).
* :mod:`repro.vlsi` -- a parametric layout model (standard cells, H-tree,
  grid and hybrid floorplans) reproducing the paper's area and wire-length
  recurrences and its empirical Magic-layout density comparison.
* :mod:`repro.analysis` -- recurrence solvers, asymptotic tables
  (the paper's Figure 11), crossover and cluster-size analysis, and 3-D
  packaging bounds.
* :mod:`repro.isa`, :mod:`repro.memory`, :mod:`repro.network`,
  :mod:`repro.frontend`, :mod:`repro.baseline`, :mod:`repro.workloads` --
  the substrates: a simple RISC ISA with golden interpreter, interleaved
  caches behind fat-tree networks, trace-cache fetch with branch
  prediction, an idealized dataflow baseline, and workload generators.

See ``DESIGN.md`` for the full system inventory and the per-experiment
index, and ``EXPERIMENTS.md`` for paper-vs-measured results.
"""

from repro._version import __version__

__all__ = ["__version__"]
