"""Segmented parallel-prefix (scan) circuits: semantics and netlists.

The paper builds everything from segmented scans:

* The Ultrascalar I register datapath is a *cyclic* segmented scan with
  the copy operator ``a (x) b = a`` (the nearest earlier writer's value
  propagates); see :mod:`repro.circuits.cspp`.
* The instruction-sequencing circuits (oldest-station tracking,
  load/store ordering, branch commit) are cyclic segmented scans with
  the AND operator (Figure 5).
* The Ultrascalar II columns are *noncyclic* segmented scans with the
  copy operator, with the comparator match bits as segment bits
  (Figure 7/8).

This module defines the reference semantics (:func:`segmented_scan` and
helpers, against which everything is property-tested), NumPy-vectorized
helpers for the fast processor engine, and two generic netlist builders
— a linear (Θ(n) delay) chain and a balanced tree (Θ(log n) delay) —
used to *measure* the paper's gate-delay claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

import numpy as np

from repro.circuits.netlist import GateKind, Net, Netlist

T = TypeVar("T")


# ---------------------------------------------------------------------------
# Reference (behavioural) semantics
# ---------------------------------------------------------------------------


def segmented_scan(
    xs: Sequence[T],
    segments: Sequence[bool],
    op: Callable[[T, T], T],
    initial: T,
) -> list[T]:
    """Noncyclic segmented scan.

    Returns ``y`` where ``y[i]`` is the reduction (by *op*) of
    ``x[j] .. x[i-1]``, with ``j`` the nearest index ``<= i-1`` whose
    segment bit is set; positions before any segment accumulate from
    *initial*.  This matches the paper's definition: "the accumulative
    result of applying an associative operator to all the preceding nodes
    up to and including the nearest node whose segment bit is high."
    """
    if len(xs) != len(segments):
        raise ValueError("xs and segments must have equal length")
    ys: list[T] = []
    acc = initial
    for x, seg in zip(xs, segments):
        ys.append(acc)
        acc = x if seg else op(acc, x)
    return ys


def cyclic_segmented_scan_reference(
    xs: Sequence[T],
    segments: Sequence[bool],
    op: Callable[[T, T], T],
) -> list[T]:
    """Cyclic segmented scan (reference implementation).

    ``y[i]`` reduces ``x[j] .. x[i-1]`` taken cyclically, with ``j`` the
    nearest *cyclically* preceding position whose segment bit is set.
    Requires at least one segment bit (in the Ultrascalar the oldest
    station always raises its segment bits, so this always holds).
    """
    n = len(xs)
    if len(segments) != n:
        raise ValueError("xs and segments must have equal length")
    if not any(segments):
        raise ValueError("cyclic segmented scan requires at least one segment bit")
    start = max(i for i in range(n) if segments[i])
    ys: list[T | None] = [None] * n
    acc = xs[start]
    for k in range(1, n + 1):
        i = (start + k) % n
        ys[i] = acc
        acc = xs[i] if segments[i] else op(acc, xs[i])
    return ys  # type: ignore[return-value]


def nearest_preceding_writer(segments: Sequence[bool]) -> list[int | None]:
    """For each position, the nearest earlier index with a set segment bit.

    Noncyclic; ``None`` where no earlier writer exists.  This is the
    index view of the copy-operator scan.
    """
    result: list[int | None] = []
    last: int | None = None
    for i, seg in enumerate(segments):
        result.append(last)
        if seg:
            last = i
    return result


def cyclic_nearest_preceding_writer(segments: Sequence[bool]) -> list[int]:
    """Cyclic version of :func:`nearest_preceding_writer`.

    Requires at least one segment bit.  ``result[i]`` is the index of the
    nearest cyclically-preceding position with its segment bit set.
    """
    n = len(segments)
    if not any(segments):
        raise ValueError("requires at least one segment bit")
    result = [0] * n
    # walk twice around the ring so every position sees a preceding writer
    last = max(i for i in range(n) if segments[i])
    for k in range(1, n + 1):
        i = (last + k) % n
        j = (last + k - 1) % n
        result[i] = j if segments[j] else result[j]
    return result


# ---------------------------------------------------------------------------
# NumPy-vectorized helpers (used by the fast processor engine)
# ---------------------------------------------------------------------------


def np_cyclic_nearest_preceding_writer(segments: np.ndarray) -> np.ndarray:
    """Vectorized :func:`cyclic_nearest_preceding_writer`.

    *segments* is a boolean array of shape ``(..., n)``; the scan runs
    along the last axis independently for each leading index (one row
    per logical register in the Ultrascalar datapath).  Every row must
    contain at least one True.
    """
    segments = np.asarray(segments, dtype=bool)
    n = segments.shape[-1]
    if not np.all(segments.any(axis=-1)):
        raise ValueError("every row needs at least one segment bit")
    # Work in a doubled index domain so "nearest preceding" is monotone
    # across the wrap, then fold back with mod n.
    doubled_segments = np.concatenate([segments, segments], axis=-1)
    indices = np.where(doubled_segments, np.arange(2 * n), -1)
    running = np.maximum.accumulate(indices, axis=-1)
    # incoming to position i = last writer at a position <= i-1, wrapped:
    # positions n+i-1 of the doubled running max cover exactly that.
    return running[..., n - 1 : 2 * n - 1] % n


def np_cyclic_segmented_and(conditions: np.ndarray, segments: np.ndarray) -> np.ndarray:
    """Vectorized cyclic segmented AND scan (the paper's Figure 5 circuit).

    ``out[i]`` is True iff every position from the nearest cyclically
    preceding segment position through ``i-1`` (inclusive of the segment
    position) meets its condition.  Operates on 1-D arrays.
    """
    conditions = np.asarray(conditions, dtype=bool)
    segments = np.asarray(segments, dtype=bool)
    n = conditions.shape[0]
    if not segments.any():
        raise ValueError("requires at least one segment bit")
    start = int(np.max(np.nonzero(segments)[0]))
    order = (start + 1 + np.arange(n)) % n  # positions after the start segment
    # rotate so the scan is a plain (noncyclic) segmented AND starting at `start`
    conds = conditions[np.concatenate(([start], order[:-1]))]
    segs = segments[np.concatenate(([start], order[:-1]))]
    out_rot = np.empty(n, dtype=bool)
    acc = True
    for k in range(n):  # small n per call; rows vectorized by caller when needed
        if segs[k]:
            acc = bool(conds[k])
        else:
            acc = acc and bool(conds[k])
        out_rot[k] = acc
    out = np.empty(n, dtype=bool)
    out[order] = out_rot
    return out


# ---------------------------------------------------------------------------
# Netlist builders
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScanPorts:
    """Primary nets of a constructed scan netlist.

    Attributes:
        values: per-position payload input nets, ``values[i][b]`` = bit b.
        segments: per-position segment-bit input nets.
        outputs: per-position scan output nets (same shape as values).
        initial: the initial-value input nets (noncyclic scans only).
    """

    values: list[list[Net]]
    segments: list[Net]
    outputs: list[list[Net]]
    initial: list[Net] | None = None


class ScanOp:
    """Gate-level description of an associative operator for scan netlists."""

    #: payload width in bits
    width: int = 1

    def combine(self, netlist: Netlist, a: list[Net], b: list[Net]) -> list[Net]:
        """Build gates computing ``a (x) b``; returns the output nets."""
        raise NotImplementedError


class AndOp(ScanOp):
    """The 1-bit AND operator of the paper's Figure 5 sequencing circuits."""

    width = 1

    def combine(self, netlist: Netlist, a: list[Net], b: list[Net]) -> list[Net]:
        return [netlist.add_gate(GateKind.AND, a[0], b[0])]


class CopyOp(ScanOp):
    """The copy operator ``a (x) b = a`` used by the register datapaths.

    Combining is free (wires); all cost is in the segment muxes the scan
    builders insert.
    """

    def __init__(self, width: int = 1):
        self.width = width

    def combine(self, netlist: Netlist, a: list[Net], b: list[Net]) -> list[Net]:
        return list(a)


def _mux_bus(netlist: Netlist, sel: Net, a: list[Net], b: list[Net]) -> list[Net]:
    """Per-bit ``sel ? a : b``."""
    return [netlist.mux(sel, ai, bi) for ai, bi in zip(a, b)]


def build_linear_scan(
    netlist: Netlist, n: int, op: ScanOp, name: str = "scan"
) -> ScanPorts:
    """Noncyclic segmented scan as a linear chain: Θ(n) gate delay.

    Recurrence per position: ``y[0] = initial``,
    ``y[i+1] = s[i] ? x[i] : (y[i] (x) x[i])``.
    """
    values = [[netlist.add_input(f"{name}_x{i}[{b}]") for b in range(op.width)] for i in range(n)]
    segments = [netlist.add_input(f"{name}_s{i}") for i in range(n)]
    initial = [netlist.add_input(f"{name}_init[{b}]") for b in range(op.width)]
    outputs: list[list[Net]] = []
    acc = initial
    for i in range(n):
        outputs.append(acc)
        combined = op.combine(netlist, acc, values[i])
        acc = _mux_bus(netlist, segments[i], values[i], combined)
    for i, out in enumerate(outputs):
        for b, net in enumerate(out):
            netlist.mark_output(f"{name}_y{i}[{b}]", net)
    return ScanPorts(values=values, segments=segments, outputs=outputs, initial=initial)


def build_tree_scan(
    netlist: Netlist, n: int, op: ScanOp, name: str = "tscan"
) -> ScanPorts:
    """Noncyclic segmented scan as a balanced tree: Θ(log n) gate delay.

    Up-sweep computes per-subtree summaries ``(v, s)`` with
    ``v = s_r ? v_r : (v_l (x) v_r)`` and ``s = s_l | s_r``; the
    down-sweep routes incoming prefixes:
    ``in_left = in_node``, ``in_right = s_l ? v_l : (in_node (x) v_l)``.
    """
    values = [[netlist.add_input(f"{name}_x{i}[{b}]") for b in range(op.width)] for i in range(n)]
    segments = [netlist.add_input(f"{name}_s{i}") for i in range(n)]
    initial = [netlist.add_input(f"{name}_init[{b}]") for b in range(op.width)]

    summaries: dict[tuple[int, int], tuple[list[Net], Net]] = {}

    def up_memo(lo: int, hi: int) -> tuple[list[Net], Net]:
        if (lo, hi) not in summaries:
            if hi - lo == 1:
                summaries[(lo, hi)] = (values[lo], segments[lo])
            else:
                mid = (lo + hi) // 2
                v_l, s_l = up_memo(lo, mid)
                v_r, s_r = up_memo(mid, hi)
                combined = op.combine(netlist, v_l, v_r)
                v = _mux_bus(netlist, s_r, v_r, combined)
                s = netlist.add_gate(GateKind.OR, s_l, s_r)
                summaries[(lo, hi)] = (v, s)
        return summaries[(lo, hi)]

    up_memo(0, n)
    outputs: list[list[Net]] = [None] * n  # type: ignore[list-item]

    def down(lo: int, hi: int, incoming: list[Net]) -> None:
        if hi - lo == 1:
            outputs[lo] = incoming
            return
        mid = (lo + hi) // 2
        v_l, s_l = up_memo(lo, mid)
        combined = op.combine(netlist, incoming, v_l)
        incoming_right = _mux_bus(netlist, s_l, v_l, combined)
        down(lo, mid, incoming)
        down(mid, hi, incoming_right)

    down(0, n, initial)
    for i, out in enumerate(outputs):
        for b, net in enumerate(out):
            netlist.mark_output(f"{name}_y{i}[{b}]", net)
    return ScanPorts(values=values, segments=segments, outputs=outputs, initial=initial)


def assign_scan_inputs(
    ports: ScanPorts,
    xs: Sequence[int],
    segments: Sequence[bool],
    initial: int = 0,
) -> dict[Net, bool]:
    """Build a simulator assignment dict for a scan netlist's inputs."""
    if len(xs) != len(ports.values) or len(segments) != len(ports.segments):
        raise ValueError("input length mismatch")
    assignment: dict[Net, bool] = {}
    for i, x in enumerate(xs):
        for b, net in enumerate(ports.values[i]):
            assignment[net] = bool((x >> b) & 1)
        assignment[ports.segments[i]] = bool(segments[i])
    if ports.initial is not None:
        for b, net in enumerate(ports.initial):
            assignment[net] = bool((initial >> b) & 1)
    return assignment


def read_scan_outputs(ports: ScanPorts, result) -> list[int]:
    """Read integer scan outputs back out of a simulation result."""
    outs = []
    for nets in ports.outputs:
        value = 0
        for b, net in enumerate(nets):
            if result.value_of(net):
                value |= 1 << b
        outs.append(value)
    return outs
