"""Unit tests for the differential-verification subsystem (repro.verify).

The centerpiece is the mutation test: inject a forwarding bug into the
US-I register-view walk and show that the fuzzer (a) detects the
divergence against the architectural oracle, (b) shrinks the failing
program to a minimal reproducer (at most 8 instructions), and (c) the
recorded reproducer replays the failure.
"""

import json

import pytest

from repro.ultrascalar.ring import RingProcessor
from repro.verify import (
    DESIGNS,
    InvariantChecker,
    build_verify_artifact,
    corpus_cases,
    generate_case,
    load_reproducer,
    run_case,
    run_differential,
    run_oracle,
    shard_report,
    shrink_case,
    validate_verify_artifact,
    write_reproducer,
)
from repro.verify.cli import main as verify_main
from repro.verify.fuzz import parse_shard_report
from repro.workloads import memory_stream, paper_sequence, random_ilp

#: fuzz parameters kept small so the mutation tests stay fast
FAST = dict(sizes=(4,), designs=("us1",), check_invariants=False)


class TestOracle:
    def test_paper_sequence_commits(self):
        w = paper_sequence()
        oracle = run_oracle(w.program, w.registers_for(), dict(w.memory_image))
        assert oracle.halted
        assert oracle.dynamic_length == len(w.program)
        # commits follow the static order for this straight-line program
        assert [c[0] for c in oracle.commits] == list(range(len(w.program)))

    def test_memory_image_round_trips(self):
        w = memory_stream(6)
        oracle = run_oracle(w.program, w.registers_for(), dict(w.memory_image))
        # every preloaded address is still present in the final image
        assert set(w.memory_image) <= set(oracle.memory)


class TestRunDifferential:
    @pytest.mark.parametrize("window", [None, 4, 8])
    def test_known_workloads_agree(self, window):
        w = random_ilp(30, 0.5, seed=7)
        report = run_differential(
            w.program,
            initial_registers=w.registers_for(),
            memory_image=dict(w.memory_image),
            window=window,
        )
        assert report.ok, report.divergences
        assert set(report.cycles) >= {"us1", "us2", "hybrid"}
        assert report.invariant_checks > 0

    def test_wrap_free_ilp_equivalence_enforced(self):
        w = paper_sequence()
        report = run_differential(
            w.program, initial_registers=w.registers_for()
        )
        assert report.ok
        engine_cycles = {report.cycles[d] for d in ("us1", "us2", "hybrid")}
        assert len(engine_cycles) == 1

    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError, match="unknown design"):
            run_differential(paper_sequence().program, designs=("us1", "nope"))

    def test_stats_collected_for_triage(self):
        w = paper_sequence()
        report = run_differential(
            w.program, initial_registers=w.registers_for(), collect_stats=True
        )
        assert set(report.stats) == {"us1", "us2", "hybrid"}
        assert all(report.stats[d] for d in report.stats)


class TestInvariantChecker:
    def test_clean_runs_accumulate_checks(self):
        checker = InvariantChecker()
        w = random_ilp(20, 0.3, seed=11)
        report = run_differential(
            w.program,
            initial_registers=w.registers_for(),
            memory_image=dict(w.memory_image),
            window=4,
        )
        assert report.ok and report.invariant_checks > 0
        assert checker.checks == 0  # fresh checker untouched

    def test_commit_fifo_violation_detected(self, monkeypatch):
        # corrupt commitment: report the stream in reversed order
        original = RingProcessor.step

        def scrambled(self):
            outcome = original(self)
            if len(self.committed) >= 2:
                self.committed[-1], self.committed[-2] = (
                    self.committed[-2],
                    self.committed[-1],
                )
            return outcome

        monkeypatch.setattr(RingProcessor, "step", scrambled)
        w = paper_sequence()
        report = run_differential(
            w.program,
            initial_registers=w.registers_for(),
            designs=("us1",),
        )
        assert not report.ok
        assert any(d.field in ("invariant", "commits") for d in report.divergences)


def _forwarding_bug(monkeypatch):
    """Install the classic bug: DONE station forwards a stale value.

    A station that writes r1 asserts its ready bit but the overlaid
    value stays the committed register file's (pre-write) value — a
    broken result bus, invisible to anything but differential testing.
    """
    healthy = RingProcessor._register_views

    def buggy(self, occupied):
        views = healthy(self, occupied)
        stale = list(self.committed_regs)
        for view in views:
            if view.ready[1]:
                view.values[1] = stale[1]
        return views

    monkeypatch.setattr(RingProcessor, "_register_views", buggy)


class TestMutationCatchAndShrink:
    def test_forwarding_bug_caught_and_shrunk(self, monkeypatch, tmp_path):
        _forwarding_bug(monkeypatch)
        failure = None
        for seed in range(50):
            failure = run_case(generate_case(seed, 24), **FAST)
            if failure is not None:
                break
        assert failure is not None, "fuzzer missed the injected forwarding bug"

        shrunk = shrink_case(failure, **FAST)
        assert len(shrunk.program) <= 8, shrunk.program.disassemble()
        # the minimal program still fails on its own
        assert run_case(shrunk, **FAST) is not None

        path = write_reproducer(tmp_path, failure, shrunk)
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro-failure/1"
        assert payload["shrunk_size"] == len(shrunk.program)

        # the recorded reproducer replays the failure (shrunk program)
        replayed = load_reproducer(path)
        assert len(replayed.program) == len(shrunk.program)
        assert run_case(replayed, **FAST) is not None

    def test_reproducer_clean_after_fix(self, monkeypatch, tmp_path):
        _forwarding_bug(monkeypatch)
        failure = None
        for seed in range(50):
            failure = run_case(generate_case(seed, 24), **FAST)
            if failure is not None:
                break
        assert failure is not None
        path = write_reproducer(tmp_path, failure)
        monkeypatch.undo()  # "fix" the bug
        assert run_case(load_reproducer(path), **FAST) is None


class TestShardAndReproducers:
    def test_clean_shard(self):
        outcome = parse_shard_report(shard_report(seed=0, budget=60))
        assert outcome.ok
        # the corpus workloads run first, so the budget can overshoot
        assert outcome.instructions >= 60
        assert outcome.cases >= len(corpus_cases(0))

    def test_shard_is_deterministic(self):
        assert shard_report(seed=3, budget=60) == shard_report(seed=3, budget=60)

    def test_corpus_cases_clean_and_deterministic(self):
        cases = corpus_cases(2)
        assert [c.size for c in cases] == [c.size for c in corpus_cases(2)]
        for case in cases:
            assert run_case(case, **FAST) is None

    def test_failing_shard_writes_reproducers(self, monkeypatch, tmp_path):
        _forwarding_bug(monkeypatch)
        outcome = parse_shard_report(
            shard_report(
                seed=1,
                budget=400,
                sizes=(4,),
                designs=("us1",),
                check_invariants=False,
                failures_dir=str(tmp_path),
            )
        )
        assert not outcome.ok
        for failure in outcome.failures:
            assert (tmp_path / f"seed{failure['seed']:08d}.json").exists()

    def test_load_rejects_other_schemas(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"schema": "other/1"}))
        with pytest.raises(ValueError, match="schema"):
            load_reproducer(path)


class TestVerifyArtifact:
    def _document(self, shards):
        return build_verify_artifact(
            shards, designs=DESIGNS, sizes=(4, 16), budget=100, minimize=True
        )

    def test_valid_document(self):
        shard = {
            "seed": 0,
            "status": "ok",
            "cases": 3,
            "instructions": 100,
            "failures": [],
            "error": None,
        }
        document = self._document([shard])
        assert validate_verify_artifact(document) == []
        assert document["totals"]["failures"] == 0

    def test_problems_reported(self):
        assert validate_verify_artifact([]) == ["artifact is not a JSON object"]
        document = self._document(
            [{"seed": 0, "status": "weird", "failures": [{"nope": 1}]}]
        )
        problems = validate_verify_artifact(document)
        assert any("status" in p for p in problems)
        assert any("missing program/divergences" in p for p in problems)


class TestVerifyCli:
    def test_smoke_run_with_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "verify.json"
        code = verify_main(
            [
                "--seeds",
                "0:2",
                "--budget",
                "40",
                "--json",
                str(artifact),
                "--failures-dir",
                str(tmp_path / "failures"),
            ]
        )
        assert code == 0
        document = json.loads(artifact.read_text())
        assert validate_verify_artifact(document) == []
        assert document["totals"]["shards"] == 2
        out = capsys.readouterr()
        assert "verify: 2 shard(s)" in out.err

    def test_divergence_sets_exit_code(self, monkeypatch, tmp_path, capsys):
        _forwarding_bug(monkeypatch)
        code = verify_main(
            [
                "--seeds",
                "0:1",
                "--budget",
                "300",
                "--sizes",
                "4",
                "--designs",
                "us1",
                "--no-invariants",
                "--failures-dir",
                str(tmp_path),
            ]
        )
        assert code == 1
        assert any(tmp_path.glob("seed*.json"))

    def test_repro_replay(self, monkeypatch, tmp_path, capsys):
        _forwarding_bug(monkeypatch)
        failure = None
        for seed in range(50):
            failure = run_case(generate_case(seed, 24), **FAST)
            if failure is not None:
                break
        path = write_reproducer(tmp_path, failure)
        code = verify_main(
            ["--repro", str(path), "--sizes", "4", "--designs", "us1", "--no-invariants"]
        )
        assert code == 1
        monkeypatch.undo()
        code = verify_main(
            ["--repro", str(path), "--sizes", "4", "--designs", "us1", "--no-invariants"]
        )
        assert code == 0

    def test_bad_arguments(self, capsys):
        assert verify_main(["--seeds", "5:5"]) == 2
        assert verify_main(["--designs", "warp-drive"]) == 2
        assert verify_main(["--sizes", "0"]) == 2


class TestMainDispatch:
    def test_verify_routed_from_package_main(self, tmp_path, capsys):
        from repro.__main__ import main

        code = main(
            [
                "verify",
                "--seeds",
                "0:1",
                "--budget",
                "30",
                "--failures-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        assert "shard seed=0" in capsys.readouterr().out
