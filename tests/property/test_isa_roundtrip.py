"""Property tests: the ISA's textual and binary codecs are lossless.

Round trip one: ``Program -> disassemble -> assemble`` reproduces the
exact instruction tuple (the contract the fuzz reproducer files in
:mod:`repro.verify.fuzz` rely on).  Round trip two: ``encode -> decode``
over the 32-bit binary format reproduces every encodable instruction.
Plus the :mod:`repro.util.bitops` edge cases the codecs sit on: zero
width fields and the power-of-two boundary values.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.assembler import assemble
from repro.isa.encoding import EncodingError, decode_instruction, encode_instruction
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, Opcode
from repro.isa.program import Program
from repro.util.bitops import sign_extend, to_signed, to_unsigned

REG = st.integers(0, 31)
IMM16 = st.integers(-(1 << 15), (1 << 15) - 1)

_BY_FORMAT = {
    fmt: [op for op in Opcode if op.fmt is fmt] for fmt in Format
}


@st.composite
def instructions(draw, max_target: int = (1 << 16) - 1):
    """Any single encodable instruction (targets bounded by *max_target*)."""
    fmt = draw(st.sampled_from(list(Format)))
    op = draw(st.sampled_from(_BY_FORMAT[fmt]))
    if fmt is Format.R3:
        return Instruction(op, rd=draw(REG), rs1=draw(REG), rs2=draw(REG))
    if fmt is Format.R2:
        return Instruction(op, rd=draw(REG), rs1=draw(REG))
    if fmt is Format.I2:
        return Instruction(op, rd=draw(REG), rs1=draw(REG), imm=draw(IMM16))
    if fmt is Format.I1:
        return Instruction(op, rd=draw(REG), imm=draw(IMM16))
    if fmt is Format.MEM:
        if op is Opcode.LW:
            return Instruction(op, rd=draw(REG), rs1=draw(REG), imm=draw(IMM16))
        return Instruction(op, rs1=draw(REG), rs2=draw(REG), imm=draw(IMM16))
    if fmt is Format.B2:
        return Instruction(
            op, rs1=draw(REG), rs2=draw(REG), target=draw(st.integers(0, max_target))
        )
    if fmt is Format.J:
        return Instruction(op, target=draw(st.integers(0, max_target)))
    return Instruction(op)


@st.composite
def programs(draw):
    """Instruction sequences whose targets stay inside the program."""
    count = draw(st.integers(1, 24))
    body = [
        draw(instructions(max_target=count)) for _ in range(count)
    ]
    return Program.from_instructions(body)


class TestTextualRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(programs())
    def test_assemble_of_disassemble_is_identity(self, program):
        rebuilt = assemble(program.disassemble())
        assert rebuilt.instructions == program.instructions

    @settings(max_examples=150, deadline=None)
    @given(instructions(max_target=99))
    def test_str_of_instruction_reassembles(self, inst):
        # nop padding so any rendered "@n" target index exists
        source = "\n".join(["nop"] * 100 + [str(inst)])
        rebuilt = assemble(source)
        assert rebuilt.instructions[-1] == inst


class TestBinaryRoundTrip:
    @settings(max_examples=300, deadline=None)
    @given(instructions())
    def test_decode_of_encode_is_identity(self, inst):
        assert decode_instruction(encode_instruction(inst)) == inst

    @settings(max_examples=300, deadline=None)
    @given(instructions())
    def test_encoding_fits_a_word(self, inst):
        assert 0 <= encode_instruction(inst) < (1 << 32)

    def test_out_of_range_operands_are_rejected(self):
        with pytest.raises(EncodingError):
            encode_instruction(
                Instruction(Opcode.ADDI, rd=0, rs1=0, imm=1 << 15)
            )
        with pytest.raises(EncodingError):
            encode_instruction(
                Instruction(Opcode.BEQ, rs1=0, rs2=0, target=1 << 16)
            )
        with pytest.raises(EncodingError):
            encode_instruction(Instruction(Opcode.J, target=1 << 26))


class TestBitopsEdgeCases:
    @settings(max_examples=200, deadline=None)
    @given(st.integers(-(1 << 40), 1 << 40), st.integers(1, 64))
    def test_signed_unsigned_round_trip(self, value, bits):
        # reducing then re-reducing is stable in both views
        unsigned = to_unsigned(value, bits)
        assert 0 <= unsigned < (1 << bits)
        assert to_unsigned(to_signed(value, bits), bits) == unsigned
        assert to_signed(to_unsigned(value, bits), bits) == to_signed(value, bits)

    @settings(max_examples=200, deadline=None)
    @given(st.integers(0, (1 << 16) - 1), st.integers(1, 16))
    def test_sign_extend_preserves_signed_value(self, value, from_bits):
        extended = sign_extend(to_unsigned(value, from_bits), from_bits, 32)
        assert to_signed(extended, 32) == to_signed(value, from_bits)

    def test_zero_width_field(self):
        # a 0-bit field holds only the value 0 in the unsigned view...
        assert to_unsigned(12345, 0) == 0
        # ...and has no signed interpretation at all
        with pytest.raises(ValueError):
            to_signed(12345, 0)

    @pytest.mark.parametrize("bits", [1, 2, 8, 16, 31, 32])
    def test_power_of_two_boundaries(self, bits):
        top = 1 << (bits - 1)
        # the most positive value stays itself
        assert to_signed(top - 1, bits) == top - 1
        # the sign-boundary value wraps to the most negative
        assert to_signed(top, bits) == -top
        # -1 is all ones
        assert to_unsigned(-1, bits) == (1 << bits) - 1
        # sign_extend of the boundary keeps it negative at full width
        assert to_signed(sign_extend(top, bits), 32) == -top

    def test_sign_extend_to_narrower_is_rejected(self):
        with pytest.raises(ValueError):
            sign_extend(1, 8, 4)
