"""Instruction memory: the program as encoded 32-bit words.

The processor models normally fetch decoded :class:`Instruction`
objects directly; this module closes the realism gap by storing the
program in its binary encoding (:mod:`repro.isa.encoding`) and decoding
words at fetch time.  Branch/jump targets survive the round trip because
the encoding stores static instruction indices, the same address space
the fetch unit uses.

Limited to machines with L <= 32 (the 5-bit register fields of the
encoding) — which covers the paper's empirical configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.encoding import decode_instruction, encode_instruction
from repro.isa.instruction import Instruction
from repro.isa.program import Program


@dataclass
class InstructionMemory:
    """The program, stored encoded; decodes on demand."""

    words: list[int]

    @staticmethod
    def from_program(program: Program) -> "InstructionMemory":
        """Encode every instruction (raises EncodingError if L > 32)."""
        return InstructionMemory([encode_instruction(inst) for inst in program])

    def __len__(self) -> int:
        return len(self.words)

    def fetch_word(self, pc: int) -> int:
        """The raw 32-bit word at *pc*."""
        return self.words[pc]

    def fetch_decode(self, pc: int) -> Instruction:
        """Decode the instruction at *pc*."""
        return decode_instruction(self.words[pc])

    def verify_against(self, program: Program) -> bool:
        """Round-trip check: decoding every word reproduces the program."""
        if len(self.words) != len(program):
            return False
        return all(
            self.fetch_decode(pc) == program[pc] for pc in range(len(program))
        )
