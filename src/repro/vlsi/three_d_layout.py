"""Three-dimensional layout models (the paper's Section 7 discussion).

"In a true three-dimensional packaging technology the Ultrascalar
bounds do improve because, intuitively, there is more space in three
dimensions than in two."

The 3-D analogue of the H-tree is an 8-way recursive cube: each level
splits the stations into octants, and the central switch block carries
the L(w+1) register wires through a *face* rather than an edge — so the
block's side contribution is Θ(√(L w)) instead of Θ(L w):

    X3(n) = Θ(√L') + 2 X3(n/8),   L' = L (w+1) wires

with solution X3(n) = Θ(n^(1/3) √L') — volume Θ(n L'^(3/2)) and wire
delay Θ(n^(1/3) √L'), the paper's bounds.  The 3-D hybrid packs
Ultrascalar II clusters into the octree; sweeping the cluster size
reproduces the paper's optimal C = Θ(L^(3/4)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.vlsi.grid_layout import Ultrascalar2Layout
from repro.vlsi.htree_layout import zero_bandwidth
from repro.vlsi.tech import Technology, PAPER_TECH


def _round_up_power(n: int, base: int) -> int:
    m = 1
    while m < n:
        m *= base
    return m


@dataclass(eq=False)
class ThreeDUltrascalar1Layout:
    """3-D octree layout of the Ultrascalar I."""

    n: int
    num_registers: int = 32
    word_bits: int = 32
    bandwidth: Callable[[int], float] = zero_bandwidth
    tech: Technology = PAPER_TECH

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("n must be positive")
        self._memo: dict[int, float] = {}

    @property
    def register_wires(self) -> int:
        """Datapath wires per link: L x (w + 1)."""
        return self.num_registers * (self.word_bits + 1)

    def _station_side(self) -> float:
        # station content packs in 3-D; wires land on a face
        wire_face = math.sqrt(self.register_wires) * self.tech.prefix_node_pitch
        content = (self.register_wires * 20.0) ** (1.0 / 3.0)
        return max(wire_face, content)

    def switch_block_side(self, subtree: int) -> float:
        """Side of the central block: register wires + memory wires
        crossing a face, Θ(√wires) each."""
        register_part = math.sqrt(self.register_wires) * self.tech.prefix_node_pitch
        memory_wires = self.bandwidth(subtree) * self.word_bits
        memory_part = math.sqrt(memory_wires) * self.tech.memory_wire_pitch
        return register_part + memory_part

    def side_length(self, n: int | None = None) -> float:
        """X3(n): the 8-way recurrence, solved numerically."""
        n = _round_up_power(self.n, 8) if n is None else n
        if n <= 1:
            return self._station_side()
        if n not in self._memo:
            self._memo[n] = self.switch_block_side(n) + 2 * self.side_length(n // 8)
        return self._memo[n]

    @property
    def volume(self) -> float:
        """Chip volume in tracks cubed: X3(n)^3."""
        return self.side_length() ** 3

    @property
    def critical_wire(self) -> float:
        """Root-to-leaf and back: Θ(X3(n)) as in two dimensions."""
        total = 0.0
        m = _round_up_power(self.n, 8)
        while m > 1:
            total += self.side_length(m) / 2.0 + self.switch_block_side(m)
            m //= 8
        return 2.0 * total


@dataclass(eq=False)
class ThreeDHybridLayout:
    """3-D hybrid: Ultrascalar II clusters on the octree."""

    n: int
    cluster_size: int
    num_registers: int = 32
    word_bits: int = 32
    bandwidth: Callable[[int], float] = zero_bandwidth
    tech: Technology = PAPER_TECH

    def __post_init__(self) -> None:
        if self.n < 1 or self.cluster_size < 1:
            raise ValueError("n and cluster_size must be positive")
        if self.n % self.cluster_size:
            raise ValueError("cluster_size must divide n")
        self._memo: dict[int, float] = {}
        # an Ultrascalar II cluster is planar logic; in 3-D it folds into
        # a cube of equal volume
        planar = Ultrascalar2Layout(
            self.cluster_size, self.num_registers, self.word_bits, tech=self.tech
        )
        self.cluster_side = planar.side_length() ** (2.0 / 3.0)

    @property
    def register_wires(self) -> int:
        """Inter-cluster wires: L x (w + 1)."""
        return self.num_registers * (self.word_bits + 1)

    def switch_block_side(self, stations: int) -> float:
        """Central block side: wires cross a face, Θ(√wires)."""
        register_part = math.sqrt(self.register_wires) * self.tech.prefix_node_pitch
        memory_wires = self.bandwidth(stations) * self.word_bits
        memory_part = math.sqrt(memory_wires) * self.tech.memory_wire_pitch
        return register_part + memory_part

    def side_length(self, clusters: int | None = None) -> float:
        """U3 over the octree of clusters.

        Evaluated in closed form with fractional levels,
        ``U3 = B (2^levels - 1) + 2^levels * cluster_side`` where
        ``levels = log8(m)`` — the exact geometric-sum solution of the
        recurrence, smooth in C so cluster sweeps have no octree
        rounding sawtooth.
        """
        m = (self.n / self.cluster_size) if clusters is None else clusters
        if m <= 1:
            return self.cluster_side
        levels = math.log(m, 8)
        scale = 2.0**levels  # = m^(1/3)
        block = self.switch_block_side(self.n)
        return block * (scale - 1.0) + scale * self.cluster_side

    @property
    def volume(self) -> float:
        """Chip volume in tracks cubed."""
        return self.side_length() ** 3


def optimal_cluster_size_3d(
    n: int,
    num_registers: int,
    word_bits: int = 32,
    tech: Technology = PAPER_TECH,
) -> tuple[int, dict[int, float]]:
    """Sweep power-of-two C; the paper predicts the optimum at Θ(L^(3/4))."""
    if n < 1:
        raise ValueError("n must be positive")
    sides: dict[int, float] = {}
    c = 1
    while c <= n:
        if n % c == 0:
            layout = ThreeDHybridLayout(n, c, num_registers, word_bits, tech=tech)
            sides[c] = layout.side_length()
        c *= 2
    best = min(sides, key=sides.get)
    return best, sides
