"""Experiment E10 — ILP equivalence and the conventional quadratic wall.

Three claims:

1. The Ultrascalar I extracts exactly the ILP of an idealized dataflow
   superscalar (cycle-for-cycle, given a big enough window).
2. The Ultrascalar II (no wrap-around) loses throughput by idling.
3. Conventional rename/wakeup/bypass circuits scale quadratically with
   issue width while the Ultrascalar's gate delay scales as Θ(log n) —
   the paper's motivating comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.baseline.complexity import conventional_superscalar_delay
from repro.baseline.dataflow import dataflow_schedule
from repro.isa.interpreter import MachineState, run_program
from repro.ultrascalar import (
    IdealMemory,
    ProcessorConfig,
    make_hybrid,
    make_ultrascalar1,
    make_ultrascalar2,
)
from repro.util.tables import Table
from repro.workloads import (
    Workload,
    daxpy_loop,
    dependency_chain,
    independent_ops,
    random_ilp,
    reduction_loop,
)


#: sweep points the runner executes and the cache keys (kwargs for
#: :func:`report`); the workload set is a rich in-code fixture, so the
#: experiment exposes a single canonical point
SWEEP_POINTS: list[dict] = [{}]


@dataclass
class IpcRow:
    """IPC of every design on one workload."""

    workload: str
    dataflow_ipc: float
    us1_ipc: float
    us2_ipc: float
    hybrid_ipc: float
    #: exact on branch-free code; within 10% on loops (the oracle's fetch
    #: model and the commit-lagged oracle predictor differ by at most a
    #: misprediction bubble at loop exit)
    us1_matches_dataflow: bool


@dataclass
class IpcResult:
    """E10 outcome."""

    rows: list[IpcRow]
    conventional_delays: dict[int, float]    # issue width -> critical delay
    ultrascalar_gate_delays: dict[int, float]  # issue width -> Θ(log n)

    def us1_always_matches(self) -> bool:
        """Claim 1 holds on every workload."""
        return all(row.us1_matches_dataflow for row in self.rows)

    def us2_never_faster(self) -> bool:
        """Claim 2: batch idling never beats the wrap-around ring."""
        return all(row.us2_ipc <= row.us1_ipc + 1e-9 for row in self.rows)


def _run_design(workload: Workload, kind: str, window: int) -> float:
    config = ProcessorConfig(window_size=window, fetch_width=window)
    memory = IdealMemory()
    memory.load_image(workload.memory_image)
    if kind == "us1":
        processor = make_ultrascalar1(
            workload.program, config, memory=memory,
            initial_registers=workload.registers_for(),
        )
    elif kind == "us2":
        processor = make_ultrascalar2(
            workload.program, config, memory=memory,
            initial_registers=workload.registers_for(),
        )
    else:
        # largest power-of-two cluster <= window/4 that divides the window
        cluster = 1
        while cluster * 2 <= max(1, window // 4) and window % (cluster * 2) == 0:
            cluster *= 2
        processor = make_hybrid(
            workload.program, cluster, config, memory=memory,
            initial_registers=workload.registers_for(),
        )
    return processor.run().ipc


def run(workloads: list[Workload] | None = None) -> IpcResult:
    """Measure IPC of all designs plus the conventional delay curve."""
    workloads = workloads or [
        dependency_chain(40),
        independent_ops(40),
        random_ilp(60, 0.2, seed=101),
        random_ilp(60, 0.8, seed=102),
        reduction_loop(10),
        daxpy_loop(8),
    ]
    rows = []
    for workload in workloads:
        golden = run_program(
            workload.program,
            state=MachineState(workload.registers_for(), dict(workload.memory_image)),
        )
        n = golden.dynamic_length
        # the oracle fetches like the processor: n-wide, one taken
        # transfer per fetch group
        oracle = dataflow_schedule(golden.trace, fetch_width=n)
        us1 = _run_design(workload, "us1", n)
        us2 = _run_design(workload, "us2", n)
        hybrid = _run_design(workload, "hybrid", n)
        branchy = any(inst.is_branch for inst in workload.program)
        if branchy:
            matches = abs(us1 - oracle.ipc) / oracle.ipc < 0.10
        else:
            matches = math.isclose(us1, oracle.ipc, rel_tol=1e-9)
        rows.append(
            IpcRow(
                workload=workload.name,
                dataflow_ipc=oracle.ipc,
                us1_ipc=us1,
                us2_ipc=us2,
                hybrid_ipc=hybrid,
                us1_matches_dataflow=matches,
            )
        )
    widths = [2, 4, 8, 16, 32, 64]
    conventional = {w: conventional_superscalar_delay(w).critical for w in widths}
    ultrascalar = {w: math.log2(max(2, 8 * w)) for w in widths}  # window = 8x width
    return IpcResult(
        rows=rows,
        conventional_delays=conventional,
        ultrascalar_gate_delays=ultrascalar,
    )


def report() -> str:
    """IPC comparison and the quadratic-vs-logarithmic delay curve."""
    outcome = run()
    table = Table(
        ["Workload", "Dataflow", "US-I", "US-II", "Hybrid", "US-I = oracle?"],
        title="E10 — IPC at window = dynamic length (perfect prediction)",
    )
    for row in outcome.rows:
        table.add_row(
            [
                row.workload,
                round(row.dataflow_ipc, 3),
                round(row.us1_ipc, 3),
                round(row.us2_ipc, 3),
                round(row.hybrid_ipc, 3),
                "yes" if row.us1_matches_dataflow else "NO",
            ]
        )
    delays = Table(
        ["Issue width", "Conventional critical delay", "Ultrascalar gate delay Θ(log n)"],
        title="Conventional quadratic wall vs Ultrascalar logarithmic growth",
    )
    for width, delay in outcome.conventional_delays.items():
        delays.add_row([width, round(delay, 2), round(outcome.ultrascalar_gate_delays[width], 2)])
    return table.render() + "\n\n" + delays.render()


if __name__ == "__main__":  # pragma: no cover
    print(report())
