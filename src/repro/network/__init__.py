"""Interconnection-network substrates.

The Ultrascalar processors use three network families:

* :mod:`repro.network.htree` -- H-tree geometry: the recursive 4-way
  layout that places execution stations on a square and routes the CSPP
  and fat-tree links (the paper's Figure 6 floorplan).
* :mod:`repro.network.fattree` -- fat-trees "with bandwidth increasing
  along each link on the way to the root" (Leiserson), used to connect
  stations to the interleaved data cache with capacity ``M(n)`` at the
  root; includes a cycle-level contention model.
* :mod:`repro.network.butterfly` -- the butterfly alternative the paper
  mentions for the memory interface.
* :mod:`repro.network.meshoftrees` -- mesh-of-trees structural counts
  used by the Ultrascalar II layout analysis.
"""

from repro.network.butterfly import ButterflyNetwork
from repro.network.fattree import FatTree, FatTreeRouting
from repro.network.htree import (
    htree_leaf_positions,
    htree_side_length,
    successor_tree_distances,
    wire_length_root_to_leaf,
)
from repro.network.meshoftrees import mesh_of_trees_stats

__all__ = [
    "ButterflyNetwork",
    "FatTree",
    "FatTreeRouting",
    "htree_leaf_positions",
    "htree_side_length",
    "successor_tree_distances",
    "wire_length_root_to_leaf",
    "mesh_of_trees_stats",
]
