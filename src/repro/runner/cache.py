"""Content-addressed on-disk result cache for experiment jobs.

Each cached entry is one JSON file under the cache root (default
``.repro_cache/``), named ``<experiment>-<digest>.json`` where the
digest is the SHA-256 of the canonical JSON encoding of::

    {"experiment": <key>, "kwargs": <sweep point>, "version": <repro.__version__>}

Keying on the package version means a release invalidates every entry
without any bookkeeping; keying on the kwargs means every sweep point
caches independently.  Entries are written atomically (temp file +
``os.replace``) so concurrent jobs never observe a torn file, and any
unreadable or mismatched entry is treated as a miss.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro._version import __version__

DEFAULT_CACHE_DIR = ".repro_cache"

#: sidecar file memoizing each experiment's declared sweep points, so a
#: fully warm run can key every job without importing the (heavy)
#: experiment modules at all
SWEEP_INDEX_FILE = "_sweep_points.json"


def canonical_kwargs(kwargs: dict[str, Any]) -> str:
    """Deterministic JSON encoding of a sweep point (sorted, compact)."""
    return json.dumps(kwargs, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class CacheEntry:
    """One stored result: the report text plus its provenance."""

    key: str
    experiment: str
    kwargs: dict[str, Any]
    version: str
    output: str
    compute_time_s: float


class ResultCache:
    """A directory of content-addressed experiment results."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR):
        self.root = Path(root)

    def key_for(self, experiment: str, kwargs: dict[str, Any]) -> str:
        """SHA-256 digest identifying (experiment, kwargs, version)."""
        payload = json.dumps(
            {
                "experiment": experiment,
                "kwargs": json.loads(canonical_kwargs(kwargs)),
                "version": __version__,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def path_for(self, experiment: str, kwargs: dict[str, Any]) -> Path:
        """Where the entry for (experiment, kwargs) lives on disk."""
        safe = "".join(c if c.isalnum() or c in "-_" else "_" for c in experiment)
        return self.root / f"{safe}-{self.key_for(experiment, kwargs)[:16]}.json"

    def get(self, experiment: str, kwargs: dict[str, Any]) -> CacheEntry | None:
        """Look up a result; any corruption or mismatch is a miss."""
        path = self.path_for(experiment, kwargs)
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        expected = self.key_for(experiment, kwargs)
        if (
            not isinstance(raw, dict)
            or raw.get("key") != expected
            or raw.get("experiment") != experiment
            or raw.get("version") != __version__
            or not isinstance(raw.get("output"), str)
        ):
            return None
        return CacheEntry(
            key=expected,
            experiment=experiment,
            kwargs=dict(kwargs),
            version=__version__,
            output=raw["output"],
            compute_time_s=float(raw.get("compute_time_s", 0.0)),
        )

    def put(
        self,
        experiment: str,
        kwargs: dict[str, Any],
        output: str,
        compute_time_s: float,
    ) -> Path:
        """Store a result atomically; returns the entry path."""
        path = self.path_for(experiment, kwargs)
        self.root.mkdir(parents=True, exist_ok=True)
        entry = {
            "key": self.key_for(experiment, kwargs),
            "experiment": experiment,
            "kwargs": json.loads(canonical_kwargs(kwargs)),
            "version": __version__,
            "compute_time_s": compute_time_s,
            "output": output,
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(entry, indent=1), encoding="utf-8")
        os.replace(tmp, path)
        return path

    def clear(self) -> int:
        """Delete every entry; returns how many files were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def _read_sweep_index(self) -> dict[str, Any]:
        try:
            raw = json.loads((self.root / SWEEP_INDEX_FILE).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {}
        if not isinstance(raw, dict) or raw.get("version") != __version__:
            return {}
        points = raw.get("points")
        return points if isinstance(points, dict) else {}

    def get_sweep_points(self, experiment: str) -> list[dict[str, Any]] | None:
        """Memoized sweep points for *experiment*, if this version stored them."""
        points = self._read_sweep_index().get(experiment)
        if isinstance(points, list) and all(isinstance(p, dict) for p in points):
            return [dict(p) for p in points]
        return None

    def put_sweep_points(self, experiment: str, points: list[dict[str, Any]]) -> None:
        """Merge *experiment*'s sweep points into the sidecar index."""
        merged = self._read_sweep_index()
        merged[experiment] = json.loads(json.dumps(points))
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.root / SWEEP_INDEX_FILE
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps({"version": __version__, "points": merged}, indent=1),
            encoding="utf-8",
        )
        os.replace(tmp, path)
