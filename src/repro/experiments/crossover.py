"""Experiment E4 — the Section 7 dominance crossovers.

* Ultrascalar II beats Ultrascalar I by Θ(L/√n) wire delay for n = o(L²);
* Ultrascalar I wins beyond the crossover at n = Θ(L²);
* the hybrid beats the Ultrascalar I by an additional Θ(√L).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.crossover import find_crossover, hybrid_advantage, wire_delay_ratio
from repro.analysis.fitting import fit_exponent
from repro.util.tables import Table


#: sweep points the runner executes and the cache keys (kwargs for
#: :func:`report`)
SWEEP_POINTS: list[dict] = [
    {
        "L_values": [8, 16, 32, 64],
        "sizes": [16, 64, 256, 1024, 4096, 16384],
        "n": 65536,
    }
]


@dataclass
class CrossoverResult:
    """Measured crossovers and dominance factors."""

    crossovers: dict[int, int | None]          # L -> n*
    ratio_sweep: dict[int, list[tuple[int, float]]]  # L -> [(n, US1/US2 wire ratio)]
    hybrid_factors: dict[int, float]           # L -> US1/hybrid wire ratio at large n

    def crossover_tracks_L_squared(self) -> bool:
        """n*/L² constant across L (the Θ(L²) claim)."""
        ratios = [
            n_star / (L * L)
            for L, n_star in self.crossovers.items()
            if n_star is not None
        ]
        if len(ratios) < 2:
            return False
        return max(ratios) / min(ratios) < 2.0

    def hybrid_factor_grows_like_sqrt_L(self) -> bool:
        """US1/hybrid advantage exponent in L ~ 0.5."""
        Ls = sorted(self.hybrid_factors)
        exponent = fit_exponent(Ls, [self.hybrid_factors[L] for L in Ls])
        return 0.3 <= exponent <= 0.7


def run(
    L_values: list[int] | None = None,
    sizes: list[int] | None = None,
    n: int = 65536,
) -> CrossoverResult:
    """Sweep the layout model over window sizes and L; ``n`` is the
    large-window point the hybrid-advantage factor is evaluated at."""
    L_values = L_values or [8, 16, 32, 64]
    sizes = sizes or [16, 64, 256, 1024, 4096, 16384]
    crossovers = {L: find_crossover(L) for L in L_values}
    ratio_sweep = {
        L: [(size, wire_delay_ratio(size, L)) for size in sizes] for L in L_values
    }
    hybrid_factors = {L: hybrid_advantage(n, L) for L in L_values}
    return CrossoverResult(
        crossovers=crossovers,
        ratio_sweep=ratio_sweep,
        hybrid_factors=hybrid_factors,
    )


def report(
    L_values: list[int] | None = None,
    sizes: list[int] | None = None,
    n: int = 65536,
) -> str:
    """Crossover and dominance tables."""
    outcome = run(L_values, sizes, n)
    table = Table(
        ["L", "crossover n*", "n*/L²", "US1/hybrid wire ratio @ n=65536"],
        title="E4 — dominance crossovers (US-II wins below n*, US-I above; "
        "paper: n* = Θ(L²), hybrid advantage Θ(√L))",
    )
    for L, n_star in outcome.crossovers.items():
        table.add_row(
            [
                L,
                n_star if n_star is not None else ">max",
                round(n_star / L**2, 2) if n_star else "-",
                round(outcome.hybrid_factors[L], 2),
            ]
        )
    sweep = Table(
        ["n"] + [f"L={L}" for L in outcome.ratio_sweep],
        title="US-I wire delay / US-II wire delay (>1 means US-II wins)",
    )
    swept_sizes = [size for size, _ in next(iter(outcome.ratio_sweep.values()))]
    for i, n in enumerate(swept_sizes):
        sweep.add_row([n] + [round(outcome.ratio_sweep[L][i][1], 2) for L in outcome.ratio_sweep])
    return table.render() + "\n\n" + sweep.render()


if __name__ == "__main__":  # pragma: no cover
    print(report())
