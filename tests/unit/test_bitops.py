"""Unit tests for fixed-width two's-complement helpers."""

import pytest

from repro.util.bitops import WORD_MASK, sign_extend, to_signed, to_unsigned


class TestToUnsigned:
    def test_identity_for_small_positive(self):
        assert to_unsigned(42) == 42

    def test_wraps_negative(self):
        assert to_unsigned(-1) == WORD_MASK

    def test_wraps_overflow(self):
        assert to_unsigned(1 << 32) == 0
        assert to_unsigned((1 << 32) + 5) == 5

    def test_custom_width(self):
        assert to_unsigned(-1, bits=8) == 255
        assert to_unsigned(256, bits=8) == 0


class TestToSigned:
    def test_positive_below_midpoint(self):
        assert to_signed(5) == 5
        assert to_signed((1 << 31) - 1) == (1 << 31) - 1

    def test_negative_above_midpoint(self):
        assert to_signed(WORD_MASK) == -1
        assert to_signed(1 << 31) == -(1 << 31)

    def test_custom_width(self):
        assert to_signed(0x80, bits=8) == -128
        assert to_signed(0x7F, bits=8) == 127

    def test_masks_out_high_bits_first(self):
        assert to_signed((1 << 40) | 3) == 3


class TestSignExtend:
    def test_positive_unchanged(self):
        assert sign_extend(0x7FFF, 16) == 0x7FFF

    def test_negative_extends(self):
        assert sign_extend(0x8000, 16) == 0xFFFF8000

    def test_roundtrip_with_to_signed(self):
        assert to_signed(sign_extend(0xFFFF, 16)) == -1

    def test_rejects_narrowing(self):
        with pytest.raises(ValueError):
            sign_extend(1, 32, 16)


class TestInverses:
    @pytest.mark.parametrize("value", [0, 1, -1, 2**31 - 1, -(2**31), 123456789, -987654321])
    def test_signed_unsigned_roundtrip(self, value):
        assert to_signed(to_unsigned(value)) == value
