"""The registry of hot-path benchmarks.

Each :class:`Benchmark` names one hot path and knows how to build a
timed thunk for it.  Setup (program generation, engine-independent
state) happens in :meth:`Benchmark.make`, *outside* the timed region;
the returned thunk performs exactly the work the benchmark is named
for.  Benchmarks are deterministic in structure: fixed seeds, fixed
sizes, so two runs of the same tree produce artifacts that differ only
in their timings.

Groups (mirroring the subsystems the ROADMAP cares about):

* ``engine`` — full-program throughput of the three paper designs
  (us1 / us2 / hybrid), driven through :mod:`repro.api` exactly the
  way users drive them, across window sizes;
* ``vector`` — the NumPy-vectorized large-*n* ring engine;
* ``cspp`` — the behavioural cyclic-segmented-scan kernel the
  datapaths are built from;
* ``network`` — the Ultrascalar II argument-routing reference;
* ``isa`` — assemble → encode → decode round-trip throughput;
* ``runner`` — the result cache's store/hit path;
* ``verify`` — fuzz program generation (the verify CLI's hot loop).

The ``--quick`` subset keeps one representative per group (always
covering all three processor designs) sized for CI smoke runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

#: canonical registry: name -> Benchmark, in registration order
REGISTRY: dict[str, "Benchmark"] = {}


@dataclass(frozen=True)
class Benchmark:
    """One registered hot-path benchmark."""

    name: str
    group: str
    title: str
    #: builds the timed thunk; runs once per benchmark, untimed
    make: Callable[[], Callable[[], Any]]
    #: part of the ``--quick`` CI subset
    quick: bool = False
    #: structural parameters (design, window, size, ...) for the artifact
    metadata: dict[str, Any] = field(default_factory=dict)


def register(benchmark: Benchmark) -> Benchmark:
    """Add *benchmark* to the registry; duplicate names are a bug."""
    if benchmark.name in REGISTRY:
        raise ValueError(f"duplicate benchmark name {benchmark.name!r}")
    REGISTRY[benchmark.name] = benchmark
    return benchmark


def select(
    *, quick: bool = False, substrings: tuple[str, ...] = ()
) -> list[Benchmark]:
    """The benchmarks a run should execute, in registration order.

    *quick* restricts to the CI subset; *substrings* (when non-empty)
    keeps benchmarks whose name contains any of them.
    """
    chosen = [b for b in REGISTRY.values() if b.quick or not quick]
    if substrings:
        chosen = [b for b in chosen if any(s in b.name for s in substrings)]
    return chosen


# ----------------------------------------------------------------------
# engine throughput (us1 / us2 / hybrid via repro.api)


def _engine_thunk(design: str, window: int, count: int) -> Callable[[], Any]:
    from repro.api import ProcessorConfig, build_processor
    from repro.workloads.generators import random_ilp

    workload = random_ilp(count, 0.5, seed=1999)
    processor = build_processor(design, ProcessorConfig(window_size=window))
    program = workload.program
    registers = workload.registers_for()

    def thunk() -> None:
        processor.run(program, initial_registers=list(registers))

    return thunk


def _register_engines() -> None:
    for design in ("us1", "us2", "hybrid"):
        for window, count, quick in ((8, 48, True), (32, 192, False)):
            register(
                Benchmark(
                    name=f"engine.{design}.w{window}",
                    group="engine",
                    title=f"{design} end-to-end run, window {window}",
                    make=(
                        lambda design=design, window=window, count=count:
                        _engine_thunk(design, window, count)
                    ),
                    quick=quick,
                    metadata={
                        "design": design,
                        "window_size": window,
                        "instructions": count,
                        "seed": 1999,
                    },
                )
            )


# ----------------------------------------------------------------------
# vector engine


def _vector_thunk(window: int, count: int) -> Callable[[], Any]:
    from repro.ultrascalar.vector_engine import VectorRingEngine
    from repro.workloads.generators import random_ilp

    workload = random_ilp(count, 0.5, seed=1999)
    program = workload.program
    registers = workload.registers_for()

    def thunk() -> None:
        VectorRingEngine(
            program, window_size=window, fetch_width=4,
            initial_registers=list(registers),
        ).run()

    return thunk


def _register_vector() -> None:
    for window, count, quick in ((64, 256, True), (512, 2048, False)):
        register(
            Benchmark(
                name=f"vector.ring.n{window}",
                group="vector",
                title=f"vector ring engine, {window} stations",
                make=lambda window=window, count=count: _vector_thunk(window, count),
                quick=quick,
                metadata={
                    "design": "vector",
                    "window_size": window,
                    "instructions": count,
                    "seed": 1999,
                },
            )
        )


# ----------------------------------------------------------------------
# CSPP scan kernel


def _cspp_thunk(n: int) -> Callable[[], Any]:
    from repro.circuits.cspp import cyclic_segmented_copy

    xs = list(range(n))
    segments = [i % 8 == 0 for i in range(n)]

    def thunk() -> None:
        cyclic_segmented_copy(xs, segments)

    return thunk


def _register_cspp() -> None:
    for n, quick in ((512, True), (4096, False)):
        register(
            Benchmark(
                name=f"cspp.scan.n{n}",
                group="cspp",
                title=f"cyclic segmented scan over {n} positions",
                make=lambda n=n: _cspp_thunk(n),
                quick=quick,
                metadata={"positions": n, "segment_stride": 8},
            )
        )


# ----------------------------------------------------------------------
# mesh-of-trees argument routing (the US-II network reference)


def _route_thunk(n: int, num_registers: int) -> Callable[[], Any]:
    from repro.circuits.grid import RegisterBinding, route_arguments

    initial = [(r * 3 + 1, True) for r in range(num_registers)]
    writes = [
        RegisterBinding(reg=i % num_registers, value=i, ready=i % 3 != 0)
        if i % 4 != 0
        else None
        for i in range(n)
    ]
    reads = [
        [(i + 1) % num_registers, (i * 7 + 3) % num_registers] for i in range(n)
    ]

    def thunk() -> None:
        route_arguments(num_registers, initial, writes, reads)

    return thunk


def _register_network() -> None:
    for n, quick in ((128, True), (1024, False)):
        register(
            Benchmark(
                name=f"network.route.n{n}",
                group="network",
                title=f"US-II argument routing, {n} stations",
                make=lambda n=n: _route_thunk(n, 32),
                quick=quick,
                metadata={"stations": n, "num_registers": 32},
            )
        )


# ----------------------------------------------------------------------
# assembler / encoding round-trip


def _isa_thunk(size: int) -> Callable[[], Any]:
    from repro.isa.assembler import assemble
    from repro.isa.encoding import decode_instruction, encode_instruction
    from repro.workloads.kernels import matmul

    source = matmul(size).program.disassemble()

    def thunk() -> None:
        program = assemble(source)
        for inst in program:
            decode_instruction(encode_instruction(inst))

    return thunk


def _register_isa() -> None:
    register(
        Benchmark(
            name="isa.roundtrip.matmul",
            group="isa",
            title="assemble + encode/decode the matmul kernel",
            make=lambda: _isa_thunk(4),
            quick=True,
            metadata={"kernel": "matmul", "size": 4},
        )
    )


# ----------------------------------------------------------------------
# runner result-cache store/hit path


def _cache_thunk(entries: int) -> Callable[[], Any]:
    import shutil
    import tempfile

    from repro.runner.cache import ResultCache

    def thunk() -> None:
        root = tempfile.mkdtemp(prefix="repro-bench-cache-")
        try:
            cache = ResultCache(root)
            for i in range(entries):
                kwargs = {"size": i, "mode": "bench"}
                cache.put("bench", kwargs, f"report {i}\n" * 8, 0.01)
            for i in range(entries):
                kwargs = {"size": i, "mode": "bench"}
                entry = cache.get("bench", kwargs)
                assert entry is not None
            assert cache.get("bench", {"size": -1}) is None  # miss path
        finally:
            shutil.rmtree(root, ignore_errors=True)

    return thunk


def _register_runner() -> None:
    register(
        Benchmark(
            name="runner.cache.roundtrip",
            group="runner",
            title="result cache store + hit + miss path",
            make=lambda: _cache_thunk(32),
            quick=True,
            metadata={"entries": 32},
        )
    )


# ----------------------------------------------------------------------
# verify-fuzz program generation


def _fuzz_thunk(cases: int, size: int) -> Callable[[], Any]:
    from repro.verify.fuzz import generate_case

    def thunk() -> None:
        for seed in range(cases):
            generate_case(seed, size)

    return thunk


def _register_verify() -> None:
    register(
        Benchmark(
            name="verify.fuzz.generate",
            group="verify",
            title="fuzz program generation (16 cases of 48)",
            make=lambda: _fuzz_thunk(16, 48),
            quick=True,
            metadata={"cases": 16, "size": 48},
        )
    )


_register_engines()
_register_vector()
_register_cspp()
_register_network()
_register_isa()
_register_runner()
_register_verify()
