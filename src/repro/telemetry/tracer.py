"""The tracer protocol and its three implementations.

A tracer is the observer the engines report to: every processor model
accepts one and calls a small set of hooks from its per-cycle phases.
The default :class:`NullTracer` makes the hooks free — engines gate
every instrumentation block on ``tracer.enabled`` (a plain attribute),
so an untraced run executes exactly the code it executed before the
telemetry subsystem existed and produces byte-identical reports.

Implementations:

* :class:`NullTracer` — ``enabled = False``; every hook is a no-op and
  :meth:`~NullTracer.snapshot` is empty.  The default.
* :class:`CountingTracer` — aggregates named integer counters
  (``count``) and ignores timeline events.  The snapshot is a plain
  ``dict[str, int]`` with deterministically sorted keys, suitable for
  golden-value pinning and cross-commit diffing.
* :class:`EventTracer` — a :class:`CountingTracer` that additionally
  records :class:`TraceEvent` timeline entries (one per committed
  instruction, emitted by the engines), exportable to the Chrome
  trace-event format via :mod:`repro.telemetry.chrome`.

Counter names form a dotted hierarchy (``fetch.*``, ``issue.*``,
``forward.*``, ``mem.*``, ``commit.*``); the full vocabulary is
documented in ``docs/observability.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable


@runtime_checkable
class Tracer(Protocol):
    """What the engines need from a telemetry sink."""

    #: engines skip their instrumentation blocks entirely when False
    enabled: bool

    def count(self, name: str, amount: int = 1) -> None:
        """Add *amount* to the named counter."""
        ...

    def event(
        self, name: str, *, cat: str, ts: int, dur: int = 0, **args: Any
    ) -> None:
        """Record a timeline event (cycle timestamps, engine-defined args)."""
        ...

    def snapshot(self) -> dict[str, int]:
        """The aggregated counters, sorted by name."""
        ...


class NullTracer:
    """The zero-cost default: records nothing."""

    enabled = False

    def count(self, name: str, amount: int = 1) -> None:
        pass

    def event(
        self, name: str, *, cat: str, ts: int, dur: int = 0, **args: Any
    ) -> None:
        pass

    def snapshot(self) -> dict[str, int]:
        return {}


#: shared instance — the tracer resolution default (stateless, so safe)
NULL_TRACER = NullTracer()


class CountingTracer:
    """Aggregates named counters; timeline events are dropped."""

    enabled = True

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def event(
        self, name: str, *, cat: str, ts: int, dur: int = 0, **args: Any
    ) -> None:
        pass

    def merge(self, counters: dict[str, int]) -> None:
        """Fold another counter mapping into this one (summing)."""
        for name, amount in counters.items():
            self.count(name, amount)

    def snapshot(self) -> dict[str, int]:
        return {name: self.counters[name] for name in sorted(self.counters)}


def diff_counters(
    a: dict[str, int], b: dict[str, int]
) -> dict[str, tuple[int, int]]:
    """Counters that differ between two snapshots: ``name -> (a, b)``.

    Missing counters count as zero; the result is sorted by name.  Used
    by :mod:`repro.verify.diff` to show *where* two designs' executions
    diverged, not just that they did.
    """
    return {
        name: (a.get(name, 0), b.get(name, 0))
        for name in sorted(set(a) | set(b))
        if a.get(name, 0) != b.get(name, 0)
    }


@dataclass(frozen=True)
class TraceEvent:
    """One timeline entry (maps 1:1 onto a Chrome complete event)."""

    name: str
    cat: str
    #: start timestamp, in simulated cycles
    ts: int
    #: duration, in simulated cycles
    dur: int = 0
    #: lane the event renders on (e.g. a station or worker index)
    tid: int = 0
    args: dict[str, Any] = field(default_factory=dict)


class EventTracer(CountingTracer):
    """Counts like :class:`CountingTracer` and keeps the event timeline."""

    def __init__(self) -> None:
        super().__init__()
        self.events: list[TraceEvent] = []

    def event(
        self, name: str, *, cat: str, ts: int, dur: int = 0, **args: Any
    ) -> None:
        tid = int(args.pop("tid", 0))
        self.events.append(
            TraceEvent(name=name, cat=cat, ts=ts, dur=dur, tid=tid, args=args)
        )
