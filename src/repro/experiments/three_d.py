"""Experiment E7 — the Section 7 three-dimensional packaging bounds."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.three_d import three_d_table, volume_improvement_2d_to_3d
from repro.util.tables import Table


#: sweep points the runner executes and the cache keys (kwargs for
#: :func:`report`)
SWEEP_POINTS: list[dict] = [{"n": 4096, "L_values": [8, 16, 32, 64, 128]}]


@dataclass
class ThreeDResult:
    """Evaluated 3-D bounds and 2-D vs 3-D comparisons."""

    bounds_table: str
    hybrid_improvements: dict[int, float]   # L -> 2-D area / 3-D volume ratio
    optimal_cluster_3d: dict[int, float]    # L -> Θ(L^(3/4))

    def improvement_grows_with_L(self) -> bool:
        """The Θ(L^(1/4)) footprint gain increases with L."""
        Ls = sorted(self.hybrid_improvements)
        values = [self.hybrid_improvements[L] for L in Ls]
        return values == sorted(values) and values[-1] > values[0]


def run(n: int = 4096, L_values: list[int] | None = None) -> ThreeDResult:
    """Evaluate the 3-D bounds across register-file sizes."""
    L_values = L_values or [8, 16, 32, 64, 128]
    improvements = {L: volume_improvement_2d_to_3d(n, L) for L in L_values}
    clusters = {L: L**0.75 for L in L_values}
    return ThreeDResult(
        bounds_table=three_d_table(n=n).render(),
        hybrid_improvements=improvements,
        optimal_cluster_3d=clusters,
    )


def report(n: int = 4096, L_values: list[int] | None = None) -> str:
    """Bounds table plus the 2-D -> 3-D hybrid improvements."""
    outcome = run(n, L_values)
    table = Table(
        ["L", "2-D optimal C = Θ(L)", "3-D optimal C = Θ(L^3/4)", "2-D area / 3-D volume"],
        title="E7 — hybrid in three dimensions (paper Section 7)",
    )
    for L, improvement in outcome.hybrid_improvements.items():
        table.add_row([L, L, round(outcome.optimal_cluster_3d[L], 1), round(improvement, 2)])
    return outcome.bounds_table + "\n\n" + table.render()


if __name__ == "__main__":  # pragma: no cover
    print(report())
