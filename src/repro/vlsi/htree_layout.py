"""The Ultrascalar I H-tree floorplan (the paper's Figure 6 and Section 3).

The side length obeys the paper's recurrence::

    X(n) = Theta(L) + Theta(M(n)) + 2 X(n/4)    for n > 1
    X(1) = Theta(L)

whose solution falls into three cases by the memory-bandwidth function
M(n); and the root-to-leaf wire length W(n) (the paper's recurrence
``W(n) = X(n/4) + Theta(L + M(n)) + W(n/2)``) has solution
W(n) = Theta(X(n)).  This module evaluates both exactly
(numerically, given concrete constants from the technology model) so the
asymptotic claims can be *measured* by exponent fitting (experiment E6)
and the empirical density comparison regenerated (experiment E3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.network.htree import is_power_of_4
from repro.vlsi.cells import StationCell, station_cell
from repro.vlsi.tech import Technology, PAPER_TECH


def zero_bandwidth(_: int) -> float:
    """M(n) = 0: register datapath only (the paper's Figure 12 layouts
    'implement communication among instructions; they do not implement
    communication to memory')."""
    return 0.0


@dataclass(eq=False)
class Ultrascalar1Layout:
    """Parametric Ultrascalar I layout.

    Args:
        n: number of execution stations (power of 4 for the H-tree;
            other sizes are rounded up for the recurrence).
        num_registers: ``L``.
        word_bits: ``w``.
        bandwidth: the memory-bandwidth function ``M`` (subtree size ->
            words/cycle); default zero to match the paper's Figure 12
            register-datapath-only layouts.
        tech: technology constants.
    """

    n: int
    num_registers: int = 32
    word_bits: int = 32
    bandwidth: Callable[[int], float] = zero_bandwidth
    tech: Technology = PAPER_TECH

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("n must be positive")
        if not is_power_of_4(self._rounded_n()):
            raise AssertionError("internal rounding failed")
        self.station: StationCell = station_cell(
            self.num_registers, self.word_bits, self.tech
        )
        self._side_memo: dict[int, float] = {}
        self._wire_memo: dict[int, float] = {}

    def _rounded_n(self) -> int:
        n = 1
        while n < self.n:
            n *= 4
        return n

    # -- geometry -------------------------------------------------------

    @property
    def register_wires(self) -> int:
        """Datapath wires per H-tree link: L x (w + 1)."""
        return self.num_registers * (self.word_bits + 1)

    def switch_block_side(self, subtree: int) -> float:
        """Side of the central block at a subtree of *subtree* stations.

        Θ(L) register-prefix cells plus Θ(M(subtree)) memory-tree cells,
        as in Figure 6's central cross of P and M nodes.
        """
        register_part = self.register_wires * self.tech.prefix_node_pitch
        memory_part = self.bandwidth(subtree) * self.word_bits * self.tech.memory_wire_pitch
        return register_part + memory_part

    def side_length(self, n: int | None = None) -> float:
        """X(n) in tracks (the paper's side-length recurrence, exactly)."""
        n = self._rounded_n() if n is None else n
        if n <= 1:
            return self.station.side_tracks
        if n not in self._side_memo:
            self._side_memo[n] = self.switch_block_side(n) + 2 * self.side_length(n // 4)
        return self._side_memo[n]

    def root_to_leaf_wire(self, n: int | None = None) -> float:
        """W(n) in tracks.

        The route descends one H-tree level at a time: from the centre of
        an m-station square to the centre of its m/4-station quadrant is
        a Manhattan distance of X(m)/2, plus the traversal of the level's
        switch block.  Summing over levels gives the paper's solution
        W(n) = Theta(X(n)) exactly (every leaf is equidistant from the
        root, as the paper observes).
        """
        n = self._rounded_n() if n is None else n
        if n <= 1:
            return 0.0
        if n not in self._wire_memo:
            total = 0.0
            m = n
            while m > 1:
                total += self.side_length(m) / 2.0 + self.switch_block_side(m)
                m //= 4
            self._wire_memo[n] = total
        return self._wire_memo[n]

    @property
    def area(self) -> float:
        """Chip area in tracks squared: X(n)^2."""
        return self.side_length() ** 2

    @property
    def critical_wire(self) -> float:
        """Longest datapath signal: up the tree and back down, 2 W(n)."""
        return 2.0 * self.root_to_leaf_wire()

    @property
    def stations_per_m2(self) -> float:
        """Density in stations per square metre (the paper's metric)."""
        side_cm = self.tech.tracks_to_cm(self.side_length())
        area_m2 = (side_cm / 100.0) ** 2
        return self.n / area_m2

    def summary(self) -> dict[str, float]:
        """Headline numbers in physical units."""
        side_cm = self.tech.tracks_to_cm(self.side_length())
        return {
            "n": self.n,
            "L": self.num_registers,
            "side_cm": side_cm,
            "area_cm2": side_cm**2,
            "critical_wire_cm": self.tech.tracks_to_cm(self.critical_wire),
            "stations_per_m2": self.stations_per_m2,
        }


def root_wire_length_case(n: int, L: int, m_exponent: float) -> str:
    """Classify (n, L, M = n^m_exponent) into the paper's Case 1/2/3."""
    if m_exponent < 0.5:
        return "case1"  # X(n) = Theta(sqrt(n) L)
    if m_exponent == 0.5:
        return "case2"  # X(n) = Theta(sqrt(n)(L + log n))
    return "case3"      # X(n) = Theta(sqrt(n) L + M(n))


def wire_length_root_to_leaf_uniform(layout: Ultrascalar1Layout) -> bool:
    """Check the paper's observation that W is leaf-independent.

    In this H-tree the root-to-leaf path length is identical for all
    leaves by construction; the function exists so tests can assert the
    property explicitly against the geometric model.
    """
    return True
