"""A two-pass text assembler for the reproduced RISC ISA.

Syntax (one instruction per line; ``#`` or ``;`` start comments)::

    start:
        li   r1, 10
        li   r2, 3
        div  r3, r1, r2      # r3 = r1 / r2
        lw   r4, 8(r5)
        sw   r4, 0(r6)
        beq  r1, r0, done
        j    start
    done:
        halt

Labels may be used anywhere a branch/jump target is expected; numeric
targets (``@12``) are also accepted.
"""

from __future__ import annotations

import re

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, MNEMONICS, Opcode
from repro.isa.program import Program
from repro.isa.registers import MachineSpec


class AssemblerError(ValueError):
    """Raised on any syntax or semantic error, with line information."""

    def __init__(self, line_no: int, message: str):
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):\s*(.*)$")
_REG_RE = re.compile(r"^[rR](\d+)$")
_MEM_RE = re.compile(r"^(-?(?:0[xX][0-9a-fA-F]+|\d+))\(([rR]\d+)\)$")
_NUM_RE = re.compile(r"^-?(?:0[xX][0-9a-fA-F]+|\d+)$")
_TARGET_RE = re.compile(r"^@(\d+)$")


def _parse_reg(token: str, spec: MachineSpec, line_no: int) -> int:
    match = _REG_RE.match(token)
    if not match:
        raise AssemblerError(line_no, f"expected register, got {token!r}")
    reg = int(match.group(1))
    try:
        return spec.validate_register(reg)
    except ValueError as exc:
        raise AssemblerError(line_no, str(exc)) from exc


def _parse_imm(token: str, line_no: int) -> int:
    if not _NUM_RE.match(token):
        raise AssemblerError(line_no, f"expected immediate, got {token!r}")
    return int(token, 0)


def _split_operands(rest: str) -> list[str]:
    rest = rest.strip()
    if not rest:
        return []
    return [part.strip() for part in rest.split(",")]


def assemble(source: str, spec: MachineSpec | None = None) -> Program:
    """Assemble *source* text into a :class:`Program`.

    Raises :class:`AssemblerError` on any malformed line or undefined
    label.
    """
    spec = spec or MachineSpec()
    labels: dict[str, int] = {}
    parsed: list[tuple[int, Opcode, list[str]]] = []  # (line_no, opcode, operand tokens)

    # Pass 1: strip comments, record labels, tokenize instructions.
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = re.split(r"[#;]", raw, maxsplit=1)[0].strip()
        while line:
            match = _LABEL_RE.match(line)
            if match:
                name = match.group(1)
                if name in labels:
                    raise AssemblerError(line_no, f"duplicate label {name!r}")
                labels[name] = len(parsed)
                line = match.group(2).strip()
                continue
            break
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        if mnemonic not in MNEMONICS:
            raise AssemblerError(line_no, f"unknown mnemonic {mnemonic!r}")
        operands = _split_operands(parts[1] if len(parts) > 1 else "")
        parsed.append((line_no, MNEMONICS[mnemonic], operands))

    # Pass 2: build instructions, resolving label targets.
    def resolve_target(token: str, line_no: int) -> int:
        match = _TARGET_RE.match(token)
        if match:
            return int(match.group(1))
        if token in labels:
            return labels[token]
        raise AssemblerError(line_no, f"undefined label {token!r}")

    instructions: list[Instruction] = []
    for line_no, op, operands in parsed:
        fmt = op.fmt
        try:
            if fmt is Format.R3:
                _expect_count(operands, 3, line_no)
                instructions.append(
                    Instruction(
                        op,
                        rd=_parse_reg(operands[0], spec, line_no),
                        rs1=_parse_reg(operands[1], spec, line_no),
                        rs2=_parse_reg(operands[2], spec, line_no),
                    )
                )
            elif fmt is Format.R2:
                _expect_count(operands, 2, line_no)
                instructions.append(
                    Instruction(
                        op,
                        rd=_parse_reg(operands[0], spec, line_no),
                        rs1=_parse_reg(operands[1], spec, line_no),
                    )
                )
            elif fmt is Format.I2:
                _expect_count(operands, 3, line_no)
                instructions.append(
                    Instruction(
                        op,
                        rd=_parse_reg(operands[0], spec, line_no),
                        rs1=_parse_reg(operands[1], spec, line_no),
                        imm=_parse_imm(operands[2], line_no),
                    )
                )
            elif fmt is Format.I1:
                _expect_count(operands, 2, line_no)
                instructions.append(
                    Instruction(
                        op,
                        rd=_parse_reg(operands[0], spec, line_no),
                        imm=_parse_imm(operands[1], line_no),
                    )
                )
            elif fmt is Format.MEM:
                _expect_count(operands, 2, line_no)
                mem_match = _MEM_RE.match(operands[1])
                if not mem_match:
                    raise AssemblerError(
                        line_no, f"expected offset(reg) operand, got {operands[1]!r}"
                    )
                offset = int(mem_match.group(1), 0)
                base = _parse_reg(mem_match.group(2), spec, line_no)
                if op is Opcode.LW:
                    instructions.append(
                        Instruction(
                            op,
                            rd=_parse_reg(operands[0], spec, line_no),
                            rs1=base,
                            imm=offset,
                        )
                    )
                else:
                    instructions.append(
                        Instruction(
                            op,
                            rs2=_parse_reg(operands[0], spec, line_no),
                            rs1=base,
                            imm=offset,
                        )
                    )
            elif fmt is Format.B2:
                _expect_count(operands, 3, line_no)
                instructions.append(
                    Instruction(
                        op,
                        rs1=_parse_reg(operands[0], spec, line_no),
                        rs2=_parse_reg(operands[1], spec, line_no),
                        target=resolve_target(operands[2], line_no),
                    )
                )
            elif fmt is Format.J:
                _expect_count(operands, 1, line_no)
                instructions.append(Instruction(op, target=resolve_target(operands[0], line_no)))
            else:  # Format.NONE
                _expect_count(operands, 0, line_no)
                instructions.append(Instruction(op))
        except ValueError as exc:
            if isinstance(exc, AssemblerError):
                raise
            raise AssemblerError(line_no, str(exc)) from exc

    try:
        return Program(tuple(instructions), labels, spec)
    except ValueError as exc:
        raise AssemblerError(0, str(exc)) from exc


def _expect_count(operands: list[str], count: int, line_no: int) -> None:
    if len(operands) != count:
        raise AssemblerError(line_no, f"expected {count} operands, got {len(operands)}")
