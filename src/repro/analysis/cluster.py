"""Optimal hybrid cluster size (Section 6).

"To find the value of C that minimizes U(n), one can differentiate and
solve for dU/dC(n) = 0, to conclude that the side-length is minimized
when C = Θ(L)."  This module provides both the analytic minimum of the
closed form and the empirical sweep over the layout model.
"""

from __future__ import annotations

import math

from repro.analysis.recurrences import u_closed_form
from repro.vlsi.hybrid_layout import optimal_cluster_size


def analytic_optimal_cluster(L: int) -> float:
    """Minimize U(C) = L sqrt(n)/sqrt(C) + sqrt(n C) over continuous C.

    dU/dC = 0 gives C = L exactly (the n factors cancel), the paper's
    C = Θ(L).
    """
    if L < 1:
        raise ValueError("L must be positive")
    return float(L)


def closed_form_sweep(n: int, L: int, m_exponent: float = 0.0) -> dict[int, float]:
    """U(C) from the closed form over power-of-two cluster sizes."""
    sides: dict[int, float] = {}
    c = 1
    while c <= n:
        sides[c] = u_closed_form(n, c, L, m_exponent)
        c *= 2
    return sides


def empirical_optimal_cluster(n: int, L: int, word_bits: int = 32) -> int:
    """Best power-of-two C from the full layout model (experiment E5)."""
    best, _ = optimal_cluster_size(n, L, word_bits)
    return best


def cluster_is_theta_L(n: int, L: int, slack: float = 4.0) -> bool:
    """Check the empirical optimum lies within a constant factor of L."""
    best = empirical_optimal_cluster(n, L)
    return L / slack <= best <= L * slack or math.isclose(best, L)
