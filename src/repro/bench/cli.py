"""The ``python -m repro bench`` subcommand.

Runs the registered hot-path benchmarks under the stable timing
protocol and, optionally, records an artifact, diffs against a
baseline, gates on regressions, or profiles each benchmark.

Usage::

    python -m repro bench                       # full suite, table out
    python -m repro bench --quick               # the CI smoke subset
    python -m repro bench --filter engine       # names containing a substring
    python -m repro bench --quick --json BENCH_0.json
    python -m repro bench --compare BENCH_0.json
    python -m repro bench --compare BASE.json --fail-on-regress 25
    python -m repro bench --quick --profile     # cProfile + collapsed stacks

Options::

    --quick           run the CI subset (one representative per group;
                      always covers us1, us2, and hybrid)
    --filter S        keep benchmarks whose name contains S (repeatable)
    --list            print the selected benchmarks and exit
    --repeats N       timed repeats per benchmark (default 5, quick 3)
    --warmup N        untimed warmup calls (default 1)
    --json PATH       write a repro-bench/1 artifact
    --compare BASE    diff this run against a baseline artifact
    --fail-on-regress PCT  with --compare: exit 1 when any benchmark is
                      more than PCT percent slower than the baseline
    --profile         cProfile each benchmark; writes .pstats plus
                      collapsed-stack text files
    --profile-dir D   where profiles land (default .repro_cache/profiles)

Exit status: 0 clean, 1 gated regression or internal error, 2 usage.
A bare ``--compare`` never gates (cross-host baselines are
informational); only ``--fail-on-regress`` turns deltas into failures.
"""

from __future__ import annotations

import argparse
import sys
from time import perf_counter

from repro.bench.artifact import (
    build_bench_artifact,
    load_bench_artifact,
    validate_bench_artifact,
    write_bench_artifact,
)
from repro.bench.compare import (
    compare_artifacts,
    format_compare_table,
    hosts_differ,
    regressions,
)
from repro.bench.registry import select
from repro.bench.run import run_benchmarks
from repro.bench.timing import BenchRecord
from repro.util.log import get_logger

DEFAULT_PROFILE_DIR = ".repro_cache/profiles"

log = get_logger("bench")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro bench", add_help=True)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--filter", action="append", default=[], dest="filters")
    parser.add_argument("--list", action="store_true", dest="list_benchmarks")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--warmup", type=int, default=1)
    parser.add_argument("--json", dest="json_path", default=None)
    parser.add_argument("--compare", dest="compare_path", default=None)
    parser.add_argument(
        "--fail-on-regress", dest="fail_pct", type=float, default=None
    )
    parser.add_argument("--profile", action="store_true")
    parser.add_argument(
        "--profile-dir", dest="profile_dir", default=DEFAULT_PROFILE_DIR
    )
    return parser


def _print_record(record: BenchRecord) -> None:
    timing = record.timing
    line = (
        f"{record.name:<28} best {timing.best_s * 1e3:9.3f}ms  "
        f"median {timing.median_s * 1e3:9.3f}ms"
    )
    cycles_per_s = record.rates.get("sim_cycles_per_s")
    if cycles_per_s is not None:
        line += f"  {cycles_per_s:12,.0f} sim-cycles/s"
    print(line)


def main(argv: list[str] | None = None) -> int:
    """Run the bench subcommand; returns a process exit code."""
    args = sys.argv[1:] if argv is None else argv
    try:
        opts = _build_parser().parse_args(args)
    except SystemExit as exc:
        return exc.code if isinstance(exc.code, int) else 2

    if opts.fail_pct is not None and opts.compare_path is None:
        print("--fail-on-regress requires --compare BASE.json", file=sys.stderr)
        return 2
    if opts.fail_pct is not None and opts.fail_pct < 0:
        print("--fail-on-regress threshold must be >= 0", file=sys.stderr)
        return 2
    repeats = opts.repeats if opts.repeats is not None else (3 if opts.quick else 5)
    if repeats < 1 or opts.warmup < 0:
        print("--repeats must be >= 1 and --warmup >= 0", file=sys.stderr)
        return 2

    benchmarks = select(quick=opts.quick, substrings=tuple(opts.filters))
    if not benchmarks:
        print(
            f"no benchmarks match filters {opts.filters!r}; "
            "try `python -m repro bench --list`",
            file=sys.stderr,
        )
        return 2
    if opts.list_benchmarks:
        for benchmark in benchmarks:
            marker = "quick" if benchmark.quick else "full "
            print(f"  {benchmark.name:<28} [{marker}] {benchmark.title}")
        return 0

    baseline = None
    if opts.compare_path is not None:
        try:
            baseline = load_bench_artifact(opts.compare_path)
        except (OSError, ValueError) as exc:
            print(f"cannot load baseline: {exc}", file=sys.stderr)
            return 2

    mode = "quick" if opts.quick else "full"
    log.info("running %d benchmark(s), mode=%s, repeats=%d",
             len(benchmarks), mode, repeats)
    start = perf_counter()
    records = run_benchmarks(
        benchmarks, repeats=repeats, warmup=opts.warmup, on_record=_print_record
    )
    elapsed = perf_counter() - start

    if opts.profile:
        from repro.bench.profile import profile_benchmark

        for benchmark in benchmarks:
            pstats_path, collapsed_path = profile_benchmark(
                benchmark, opts.profile_dir
            )
            print(f"profile: {pstats_path} + {collapsed_path}", file=sys.stderr)

    document = build_bench_artifact(
        records,
        mode=mode,
        repeats=repeats,
        warmup=opts.warmup,
        wall_time_s=elapsed,
    )
    problems = validate_bench_artifact(document)
    if problems:  # a malformed artifact is a bug in this module
        for problem in problems:
            print(f"artifact problem: {problem}", file=sys.stderr)
        return 1
    if opts.json_path:
        write_bench_artifact(opts.json_path, document)

    exit_code = 0
    if baseline is not None:
        threshold = opts.fail_pct if opts.fail_pct is not None else 5.0
        deltas = compare_artifacts(baseline, document, threshold_pct=threshold)
        print()
        print(format_compare_table(deltas, threshold_pct=threshold))
        if hosts_differ(baseline, document):
            print(
                "note: baseline was recorded on a different host; "
                "deltas compare machines as much as code",
                file=sys.stderr,
            )
        regressed = regressions(deltas)
        if opts.fail_pct is not None and regressed:
            for delta in regressed:
                print(
                    f"regression: {delta.name} {delta.pct:+.1f}% "
                    f"(threshold {threshold:g}%)",
                    file=sys.stderr,
                )
            exit_code = 1

    print(
        f"bench: {len(records)} benchmark(s), {repeats} repeat(s) each, "
        f"{elapsed:.1f}s wall-clock",
        file=sys.stderr,
    )
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
