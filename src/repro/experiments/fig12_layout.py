"""Experiment E3 — the paper's empirical layout comparison (Figure 12).

"The Ultrascalar I datapath includes 64 processors in an area of
7 cm x 7 cm, which is 13,000 processors per square meter.  The hybrid
datapath includes 128 processors in an area of 3.2 cm x 2.7 cm, which
is 150,000 processors per square meter (about 11.5 times denser)."

Both layouts: L = 32 x 32-bit registers, register datapath only
(no memory network), 0.35 um / 3 metal constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.tables import Table, format_ratio
from repro.vlsi.htree_layout import Ultrascalar1Layout
from repro.vlsi.hybrid_layout import HybridLayout

#: the paper's published numbers
PAPER_US1 = {"n": 64, "side_cm": 7.0, "area_cm2": 49.0, "stations_per_m2": 13_000.0}
PAPER_HYBRID = {
    "n": 128,
    "area_cm2": 3.2 * 2.7,
    "stations_per_m2": 150_000.0,
}
PAPER_DENSITY_RATIO = 150_000.0 / 13_000.0  # ~11.5x

#: sweep points the runner executes and the cache keys (kwargs for
#: :func:`report`); the comparison is pinned to the paper's two layouts
SWEEP_POINTS: list[dict] = [{}]


@dataclass
class Fig12Result:
    """Model vs paper for the two Figure 12 layouts."""

    us1: dict[str, float]
    hybrid: dict[str, float]
    density_ratio: float

    @property
    def ratio_matches_paper(self) -> bool:
        """Within a third of the paper's ~11.5x (model-vs-silicon slack)."""
        return abs(self.density_ratio - PAPER_DENSITY_RATIO) / PAPER_DENSITY_RATIO < 0.34


def run() -> Fig12Result:
    """Build the two Figure 12 layouts in the parametric model."""
    us1 = Ultrascalar1Layout(64, num_registers=32, word_bits=32)
    hybrid = HybridLayout(128, cluster_size=32, num_registers=32, word_bits=32)
    return Fig12Result(
        us1=us1.summary(),
        hybrid=hybrid.summary(),
        density_ratio=hybrid.stations_per_m2 / us1.stations_per_m2,
    )


def report() -> str:
    """The Figure 12 table, paper vs model."""
    outcome = run()
    table = Table(
        ["Layout", "Quantity", "Paper", "Model"],
        title="E3 / Figure 12 — Magic layouts vs parametric layout model "
        "(L=32x32-bit, register datapath only)",
    )
    table.add_row(["US-I 64-wide", "area (cm²)", PAPER_US1["area_cm2"], round(outcome.us1["area_cm2"], 1)])
    table.add_row(
        ["US-I 64-wide", "stations/m²", PAPER_US1["stations_per_m2"], round(outcome.us1["stations_per_m2"])]
    )
    table.add_row(
        ["Hybrid 128-wide", "area (cm²)", round(PAPER_HYBRID["area_cm2"], 2), round(outcome.hybrid["area_cm2"], 1)]
    )
    table.add_row(
        ["Hybrid 128-wide", "stations/m²", PAPER_HYBRID["stations_per_m2"], round(outcome.hybrid["stations_per_m2"])]
    )
    table.add_row(
        ["—", "density ratio", format_ratio(PAPER_DENSITY_RATIO), format_ratio(outcome.density_ratio)]
    )
    return table.render()


if __name__ == "__main__":  # pragma: no cover
    print(report())
