"""The architectural reference model for differential testing.

The oracle is the sequential interpreter (:mod:`repro.isa.interpreter`)
— the single source of truth for instruction semantics.  Every engine
backend is compared against it on four axes:

* the final register file,
* the final memory image,
* the committed dynamic instruction stream (static index, result,
  effective address, branch outcome, next PC), and
* the halt status.

:func:`run_oracle` packages one golden run into an :class:`OracleResult`
whose :attr:`~OracleResult.commits` tuples are directly comparable with
:func:`commit_stream` applied to a :class:`~repro.ultrascalar.processor.
ProcessorResult` — the comparison :mod:`repro.verify.diff` performs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.interpreter import MachineState, StepOutcome, run_program
from repro.isa.program import Program

#: one committed dynamic instruction, reduced to its architecturally
#: visible effects: (static_index, result, address, taken, next_pc)
Commit = tuple[int, int | None, int | None, bool | None, int]


def _commit_of(step: StepOutcome) -> Commit:
    return (step.static_index, step.result, step.address, step.taken, step.next_pc)


def commit_stream(committed: list[StepOutcome]) -> list[Commit]:
    """Reduce a committed :class:`StepOutcome` list to comparable tuples."""
    return [_commit_of(step) for step in committed]


@dataclass(frozen=True)
class OracleResult:
    """What the architectural reference produced for one program."""

    registers: list[int]
    memory: dict[int, int]
    commits: list[Commit]
    halted: bool

    @property
    def dynamic_length(self) -> int:
        """Number of dynamic instructions the program executes."""
        return len(self.commits)


def run_oracle(
    program: Program,
    initial_registers: list[int] | None = None,
    memory_image: dict[int, int] | None = None,
    max_steps: int = 1_000_000,
) -> OracleResult:
    """Run *program* through the sequential interpreter.

    The initial state mirrors what the engines receive: *initial_registers*
    (zero-padded to the machine's register count) and a preloaded
    *memory_image*.
    """
    registers = list(initial_registers or [])
    registers.extend([0] * (program.spec.num_registers - len(registers)))
    state = MachineState(registers, dict(memory_image or {}))
    golden = run_program(program, state=state, max_steps=max_steps)
    return OracleResult(
        registers=list(golden.state.registers),
        memory=dict(golden.state.memory),
        commits=commit_stream(golden.trace),
        halted=golden.halted,
    )
