"""E1 — regenerate the paper's Figure 3 timing diagram."""

from repro.experiments import fig3_timing


def test_bench_figure3(once):
    outcome = once(fig3_timing.run)
    print()
    print(fig3_timing.report())
    # shape: the Ultrascalar I reproduces the published diagram exactly
    assert outcome.matches_paper
    assert outcome.matches_dataflow
    assert outcome.cycles == 12
    assert outcome.ultrascalar_spans == fig3_timing.PAPER_FIGURE3_SPANS
