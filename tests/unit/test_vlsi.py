"""Unit tests for the VLSI layout models."""

import pytest

from repro.network.fattree import bandwidth_linear, bandwidth_power
from repro.vlsi.cells import station_cell
from repro.vlsi.grid_layout import Ultrascalar2Layout
from repro.vlsi.htree_layout import Ultrascalar1Layout, zero_bandwidth
from repro.vlsi.hybrid_layout import HybridLayout, optimal_cluster_size
from repro.vlsi.tech import PAPER_TECH, Technology
from repro.vlsi.wires import total_delay, wire_delay


class TestTechnology:
    def test_track_conversion(self):
        tech = Technology(track_um=4.0)
        assert tech.tracks_to_cm(25_000) == pytest.approx(10.0)
        assert tech.tracks_to_mm(1000) == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Technology(track_um=0)
        with pytest.raises(ValueError):
            Technology(metal_layers=0)
        with pytest.raises(ValueError):
            Technology(prefix_node_pitch=-1)


class TestPrefixNodeCell:
    def test_measured_gate_density(self):
        from repro.vlsi.cells import prefix_node_gates_per_wire

        # the CSPP's up+down sweeps cost ~2 mux/or gates per wire per
        # node — the circuit-level grounding for prefix_node_pitch
        density = prefix_node_gates_per_wire(8)
        assert 1.5 <= density <= 3.5

    def test_density_independent_of_width(self):
        from repro.vlsi.cells import prefix_node_gates_per_wire

        # per-wire cost is flat in the payload width (bits are independent)
        narrow = prefix_node_gates_per_wire(4)
        wide = prefix_node_gates_per_wire(16)
        assert abs(narrow - wide) < 0.5


class TestStationCell:
    def test_full_interface_dominated_by_wires_for_big_L(self):
        cell = station_cell(32, 32, full_register_interface=True)
        slim = station_cell(32, 32, full_register_interface=False)
        assert cell.side_tracks > slim.side_tracks
        assert cell.datapath_wires == 32 * 33

    def test_area_grows_with_word_width(self):
        assert (
            station_cell(32, 64, full_register_interface=False).area_tracks2
            > station_cell(32, 16, full_register_interface=False).area_tracks2
        )

    def test_area_grows_with_register_count(self):
        assert (
            station_cell(64, 32).area_tracks2 > station_cell(16, 32).area_tracks2
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            station_cell(0, 32)
        with pytest.raises(ValueError):
            station_cell(32, 0)


class TestUltrascalar1Layout:
    def test_side_solves_recurrence(self):
        layout = Ultrascalar1Layout(64, 32)
        lhs = layout.side_length(64)
        rhs = layout.switch_block_side(64) + 2 * layout.side_length(16)
        assert lhs == pytest.approx(rhs)

    def test_side_closed_form_structure(self):
        # X(n) = sqrt(n) s0 + (sqrt(n)-1) B for M = 0
        layout = Ultrascalar1Layout(256, 32)
        s0 = layout.station.side_tracks
        B = layout.switch_block_side(4)
        assert layout.side_length(256) == pytest.approx(16 * s0 + 15 * B)

    def test_wire_is_theta_of_side(self):
        for n in (16, 256, 4096):
            layout = Ultrascalar1Layout(n, 32)
            ratio = layout.root_to_leaf_wire() / layout.side_length()
            assert 0.3 < ratio < 2.0

    def test_sqrt_growth_without_memory(self):
        small = Ultrascalar1Layout(256, 32).side_length()
        large = Ultrascalar1Layout(4096, 32).side_length()
        assert large / small == pytest.approx(4.0, rel=0.15)

    def test_memory_bandwidth_inflates_side(self):
        lean = Ultrascalar1Layout(4096, 32, bandwidth=zero_bandwidth)
        fat = Ultrascalar1Layout(4096, 32, bandwidth=bandwidth_linear(1.0))
        assert fat.side_length() > lean.side_length() * 2

    def test_area_is_side_squared(self):
        layout = Ultrascalar1Layout(64, 32)
        assert layout.area == pytest.approx(layout.side_length() ** 2)

    def test_non_power_of_4_rounds_up(self):
        assert Ultrascalar1Layout(60, 32).side_length() == Ultrascalar1Layout(64, 32).side_length()

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            Ultrascalar1Layout(0, 32)

    def test_paper_calibration_point(self):
        """The Figure 12 anchor: 64 stations, L=32x32b -> ~7 cm, ~13k/m2."""
        layout = Ultrascalar1Layout(64, 32, 32)
        summary = layout.summary()
        assert 6.0 < summary["side_cm"] < 8.0
        assert 11_000 < summary["stations_per_m2"] < 16_000


class TestUltrascalar2Layout:
    def test_linear_growth_in_n(self):
        sides = [Ultrascalar2Layout(n, 32).side_length() for n in (1024, 2048, 4096)]
        assert sides[1] / sides[0] == pytest.approx(2.0, rel=0.2)
        assert sides[2] / sides[1] == pytest.approx(2.0, rel=0.2)

    def test_tree_variant_larger_than_linear(self):
        linear = Ultrascalar2Layout(256, 32, variant="linear").side_length()
        tree = Ultrascalar2Layout(256, 32, variant="tree").side_length()
        mixed = Ultrascalar2Layout(256, 32, variant="mixed").side_length()
        assert mixed == linear  # the mixed strategy keeps the linear area
        assert tree > linear

    def test_gate_delay_ordering(self):
        # tree < mixed < linear gate delay at the same n
        linear = Ultrascalar2Layout(256, 32, variant="linear").gate_delay()
        mixed = Ultrascalar2Layout(256, 32, variant="mixed").gate_delay()
        tree = Ultrascalar2Layout(256, 32, variant="tree").gate_delay()
        assert tree < mixed < linear

    def test_mixed_gate_delay_improves_with_free_levels(self):
        few = Ultrascalar2Layout(256, 32, variant="mixed", free_tree_levels=1).gate_delay()
        many = Ultrascalar2Layout(256, 32, variant="mixed", free_tree_levels=6).gate_delay()
        assert many < few

    def test_rows_and_cols(self):
        layout = Ultrascalar2Layout(8, 4)
        assert layout.rows == 12       # n + L
        assert layout.cols == 20       # 2n + L

    def test_validation(self):
        with pytest.raises(ValueError):
            Ultrascalar2Layout(0, 32)
        with pytest.raises(ValueError):
            Ultrascalar2Layout(8, 32, variant="bogus")
        with pytest.raises(ValueError):
            Ultrascalar2Layout(8, 32, free_tree_levels=-1)


class TestHybridLayout:
    def test_cluster_side_matches_us2(self):
        hybrid = HybridLayout(128, 32, 32)
        cluster = Ultrascalar2Layout(32, 32)
        assert hybrid.cluster_side == pytest.approx(
            cluster.side_length() * hybrid.cluster_packing
        )

    def test_recurrence_structure(self):
        hybrid = HybridLayout(512, 32, 32)  # 16 clusters
        lhs = hybrid.side_length(16)
        rhs = hybrid.switch_block_side(512) + 2 * hybrid.side_length(4)
        assert lhs == pytest.approx(rhs)

    def test_beats_us1_at_scale(self):
        us1 = Ultrascalar1Layout(1024, 32)
        hybrid = HybridLayout(1024, 32, 32)
        assert hybrid.side_length() < us1.side_length()
        assert hybrid.critical_wire < us1.critical_wire

    def test_sqrt_nl_growth(self):
        small = HybridLayout(1024, 32, 32).side_length()
        large = HybridLayout(16384, 32, 32).side_length()
        assert large / small == pytest.approx(4.0, rel=0.25)

    def test_memory_bandwidth_term(self):
        lean = HybridLayout(1024, 32, 32)
        fat = HybridLayout(1024, 32, 32, bandwidth=bandwidth_power(1.0))
        assert fat.side_length() > lean.side_length()

    def test_validation(self):
        with pytest.raises(ValueError):
            HybridLayout(100, 32)  # cluster must divide n
        with pytest.raises(ValueError):
            HybridLayout(0, 1)
        with pytest.raises(ValueError):
            HybridLayout(128, 32, cluster_packing=0)

    def test_optimal_cluster_size_sweep(self):
        best, sides = optimal_cluster_size(1024, 32)
        assert best in sides
        assert sides[best] == min(sides.values())
        assert 8 <= best <= 128  # Θ(L) neighbourhood for L=32

    def test_optimal_cluster_validation(self):
        with pytest.raises(ValueError):
            optimal_cluster_size(0, 32)


class TestWireDelay:
    def test_linear_in_length(self):
        assert wire_delay(200) == pytest.approx(2 * wire_delay(100))

    def test_total_delay_adds(self):
        assert total_delay(5.0, 100) == pytest.approx(5.0 + wire_delay(100))

    def test_validation(self):
        with pytest.raises(ValueError):
            wire_delay(-1)
        with pytest.raises(ValueError):
            total_delay(-1, 0)
