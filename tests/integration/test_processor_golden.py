"""Integration: every processor model executes programs correctly.

Differential testing against the golden sequential interpreter: same
final registers, same memory, same committed dynamic trace — across
window sizes, cluster sizes, predictors, and memory systems.
"""

import pytest

from repro.frontend.branch_predictor import AlwaysNotTaken, AlwaysTaken, BimodalPredictor
from repro.isa.interpreter import MachineState, run_program
from repro.memory.interleaved_cache import InterleavedCache
from repro.network.fattree import FatTree, bandwidth_constant
from repro.ultrascalar import (
    CachedMemory,
    IdealMemory,
    ProcessorConfig,
    make_hybrid,
    make_ultrascalar1,
    make_ultrascalar2,
)
from repro.workloads import (
    daxpy_loop,
    dependency_chain,
    independent_ops,
    memory_stream,
    paper_sequence,
    pointer_chase,
    random_ilp,
    reduction_loop,
)

WORKLOADS = [
    paper_sequence(),
    dependency_chain(20),
    independent_ops(20),
    daxpy_loop(6),
    reduction_loop(8),
    pointer_chase(5),
    memory_stream(6),
    random_ilp(40, 0.3, seed=11),
    random_ilp(40, 0.8, seed=12),
]


def golden_run(workload):
    state = MachineState(workload.registers_for(), dict(workload.memory_image))
    return run_program(workload.program, state=state)


def build(workload, kind, window=16, cluster=4, predictor=None, memory=None):
    config = ProcessorConfig(window_size=window, fetch_width=4)
    mem = memory if memory is not None else IdealMemory()
    mem.load_image(workload.memory_image)
    kwargs = dict(
        config=config,
        memory=mem,
        initial_registers=workload.registers_for(),
    )
    if predictor is not None:
        kwargs["predictor"] = predictor
    if kind == "us1":
        return make_ultrascalar1(workload.program, **kwargs)
    if kind == "us2":
        return make_ultrascalar2(workload.program, **kwargs)
    return make_hybrid(workload.program, cluster, **kwargs)


def assert_matches_golden(workload, result):
    golden = golden_run(workload)
    assert result.halted == golden.halted
    assert result.registers == golden.state.registers, "final registers diverge"
    expected_memory = dict(workload.memory_image)
    expected_memory.update(golden.state.memory)
    for address, value in expected_memory.items():
        assert result.memory.get(address, 0) == value, f"memory diverges at {address:#x}"
    got = [(s.static_index, s.result, s.address, s.taken) for s in result.committed]
    want = [(s.static_index, s.result, s.address, s.taken) for s in golden.trace]
    assert got == want, "committed trace diverges"


@pytest.mark.parametrize("workload", WORKLOADS, ids=lambda w: w.name)
@pytest.mark.parametrize("kind", ["us1", "us2", "hyb"])
class TestGoldenEquivalence:
    def test_matches_golden(self, workload, kind):
        assert_matches_golden(workload, build(workload, kind).run())


@pytest.mark.parametrize("window", [1, 2, 3, 8, 64])
@pytest.mark.parametrize("kind", ["us1", "us2"])
class TestWindowSizes:
    def test_any_window_is_correct(self, window, kind):
        workload = random_ilp(30, 0.5, seed=21)
        assert_matches_golden(workload, build(workload, kind, window=window).run())

    def test_loops_with_any_window(self, window, kind):
        workload = daxpy_loop(4)
        assert_matches_golden(workload, build(workload, kind, window=window).run())


@pytest.mark.parametrize("cluster", [1, 2, 4, 8, 16])
class TestClusterSizes:
    def test_hybrid_correct_at_any_cluster_size(self, cluster):
        workload = daxpy_loop(5)
        assert_matches_golden(
            workload, build(workload, "hyb", window=16, cluster=cluster).run()
        )


class TestClusterValidation:
    def test_cluster_must_divide_window(self):
        workload = paper_sequence()
        with pytest.raises(ValueError):
            build(workload, "hyb", window=16, cluster=3)


@pytest.mark.parametrize(
    "predictor_factory",
    [AlwaysTaken, AlwaysNotTaken, lambda: BimodalPredictor(size=64)],
    ids=["taken", "not-taken", "bimodal"],
)
@pytest.mark.parametrize("kind", ["us1", "us2", "hyb"])
class TestRealPredictors:
    """Mispredictions and squashes must never corrupt architectural state."""

    def test_loopy_code_with_imperfect_prediction(self, predictor_factory, kind):
        workload = daxpy_loop(8)
        result = build(workload, kind, predictor=predictor_factory()).run()
        assert_matches_golden(workload, result)

    def test_branchy_code_with_imperfect_prediction(self, predictor_factory, kind):
        workload = reduction_loop(10)
        result = build(workload, kind, predictor=predictor_factory()).run()
        assert_matches_golden(workload, result)


class TestMispredictionAccounting:
    def test_always_taken_on_loop_exit_mispredicts(self):
        workload = reduction_loop(5)
        result = build(workload, "us1", predictor=AlwaysNotTaken()).run()
        # the backward branch is taken 4 times: 4 mispredictions at least
        assert result.mispredictions >= 4

    def test_squashed_work_is_counted(self):
        workload = reduction_loop(5)
        result = build(workload, "us1", predictor=AlwaysNotTaken()).run()
        assert result.squashed > 0

    def test_perfect_prediction_no_squashes_straightline(self):
        workload = random_ilp(30, 0.5, seed=31)
        result = build(workload, "us1").run()
        assert result.mispredictions == 0
        assert result.squashed == 0


class TestCachedMemory:
    def test_correct_through_interleaved_cache(self):
        workload = daxpy_loop(6)
        cache = InterleavedCache(banks=2, lines_per_bank=4, words_per_line=2)
        result = build(workload, "us1", memory=CachedMemory(cache)).run()
        assert_matches_golden(workload, result)

    def test_correct_through_fat_tree_throttling(self):
        workload = memory_stream(8)
        tree = FatTree(16, bandwidth_constant(1.0), radix=4)
        cache = InterleavedCache(banks=2, lines_per_bank=4, fat_tree=tree)
        result = build(workload, "us2", memory=CachedMemory(cache)).run()
        assert_matches_golden(workload, result)

    def test_bandwidth_throttling_costs_cycles(self):
        workload = memory_stream(12)
        fast = build(workload, "us1").run()
        tree = FatTree(16, bandwidth_constant(1.0), radix=4)
        cache = InterleavedCache(banks=1, lines_per_bank=4, fat_tree=tree)
        slow = build(workload, "us1", memory=CachedMemory(cache)).run()
        assert slow.cycles > fast.cycles


class TestThroughputOrdering:
    """The paper's qualitative claims about the three designs."""

    def test_us2_never_beats_us1(self):
        # "stations idle waiting for everyone to finish before refilling"
        for workload in (dependency_chain(30), random_ilp(60, 0.5, seed=41)):
            us1 = build(workload, "us1").run()
            us2 = build(workload, "us2").run()
            assert us2.cycles >= us1.cycles

    def test_hybrid_between_us1_and_us2(self):
        workload = random_ilp(60, 0.5, seed=42)
        us1 = build(workload, "us1").run()
        us2 = build(workload, "us2").run()
        hybrid = build(workload, "hyb", cluster=4).run()
        assert us1.cycles <= hybrid.cycles <= us2.cycles

    def test_window_one_is_sequential(self):
        workload = dependency_chain(10)
        result = build(workload, "us1", window=1).run()
        # one station: fetch, execute, commit one instruction at a time
        assert result.ipc <= 1.0
