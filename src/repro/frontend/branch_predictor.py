"""Branch predictors.

The paper leaves the predictor unspecified (it affects IPC, not the
VLSI complexity results); we provide the standard menagerie so the
processor experiments can sweep prediction quality: static policies,
a bimodal (2-bit counter) table, gshare, and a perfect oracle used to
isolate scheduling behaviour in the ILP-equivalence experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Instruction


class BranchPredictor:
    """Interface: predict a conditional branch, then learn its outcome."""

    def predict(self, pc: int, instruction: Instruction) -> bool:
        """Predicted taken/not-taken for the branch at *pc*."""
        raise NotImplementedError

    def update(self, pc: int, taken: bool) -> None:
        """Train on the resolved outcome of the branch at *pc*."""

    def reset(self) -> None:
        """Forget all learned state."""


class AlwaysTaken(BranchPredictor):
    """Statically predict taken."""

    def predict(self, pc: int, instruction: Instruction) -> bool:
        return True


class AlwaysNotTaken(BranchPredictor):
    """Statically predict not taken."""

    def predict(self, pc: int, instruction: Instruction) -> bool:
        return False


class BackwardTaken(BranchPredictor):
    """BTFN: backward branches (loops) taken, forward branches not taken."""

    def predict(self, pc: int, instruction: Instruction) -> bool:
        return instruction.target is not None and instruction.target <= pc


@dataclass
class BimodalPredictor(BranchPredictor):
    """A table of 2-bit saturating counters indexed by PC."""

    size: int = 512
    counters: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("predictor table must be non-empty")
        if not self.counters:
            self.counters = [1] * self.size  # weakly not-taken

    def _index(self, pc: int) -> int:
        return pc % self.size

    def predict(self, pc: int, instruction: Instruction) -> bool:
        return self.counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        if taken:
            self.counters[index] = min(3, self.counters[index] + 1)
        else:
            self.counters[index] = max(0, self.counters[index] - 1)

    def reset(self) -> None:
        self.counters = [1] * self.size


@dataclass
class GSharePredictor(BranchPredictor):
    """gshare: global history XORed into the counter index."""

    size: int = 1024
    history_bits: int = 8
    counters: list[int] = field(default_factory=list)
    history: int = 0

    def __post_init__(self) -> None:
        if self.size < 1 or self.size & (self.size - 1):
            raise ValueError("gshare table size must be a power of two")
        if not 0 <= self.history_bits <= 30:
            raise ValueError("history_bits out of range")
        if not self.counters:
            self.counters = [1] * self.size

    def _index(self, pc: int) -> int:
        return (pc ^ self.history) % self.size

    def predict(self, pc: int, instruction: Instruction) -> bool:
        return self.counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        if taken:
            self.counters[index] = min(3, self.counters[index] + 1)
        else:
            self.counters[index] = max(0, self.counters[index] - 1)
        mask = (1 << self.history_bits) - 1
        self.history = ((self.history << 1) | int(taken)) & mask

    def reset(self) -> None:
        self.counters = [1] * self.size
        self.history = 0


class PerfectPredictor(BranchPredictor):
    """An oracle that replays a known dynamic outcome sequence per PC.

    Used by the ILP-equivalence experiments to remove prediction noise:
    construct it from a golden-interpreter trace, then each branch's
    successive dynamic executions are predicted exactly.
    """

    def __init__(self, outcomes_by_pc: dict[int, list[bool]]):
        self._outcomes = {pc: list(outcomes) for pc, outcomes in outcomes_by_pc.items()}
        self._cursor: dict[int, int] = {pc: 0 for pc in self._outcomes}

    @staticmethod
    def from_trace(trace) -> "PerfectPredictor":
        """Build from a golden-interpreter trace (list of StepOutcome)."""
        outcomes: dict[int, list[bool]] = {}
        for step in trace:
            if step.instruction.is_branch:
                outcomes.setdefault(step.static_index, []).append(bool(step.taken))
        return PerfectPredictor(outcomes)

    def predict(self, pc: int, instruction: Instruction) -> bool:
        outcomes = self._outcomes.get(pc)
        if not outcomes:
            return False
        cursor = self._cursor.get(pc, 0)
        if cursor >= len(outcomes):
            return outcomes[-1]
        return outcomes[cursor]

    def update(self, pc: int, taken: bool) -> None:
        self._cursor[pc] = self._cursor.get(pc, 0) + 1

    def reset(self) -> None:
        self._cursor = {pc: 0 for pc in self._outcomes}
