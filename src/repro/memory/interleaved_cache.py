"""An interleaved (banked) write-back data cache with a fat-tree front end.

Structure per the paper's proposal: stations reach the cache through a
fat-tree whose root bandwidth is ``M(n)``; the cache itself is
word-interleaved across ``banks`` banks, each a direct-mapped write-back
cache, each serving at most one request per cycle.

Timing model per request:

1. The request waits until the fat-tree admits it (root/uplink
   capacities model ``M(n)``).
2. It then queues at its bank; the bank serves one request per cycle.
3. A hit completes after ``hit_latency`` cycles of bank service; a miss
   additionally pays the main memory latency (plus one more trip if a
   dirty victim must be written back).

All state transitions happen in :meth:`InterleavedCache.tick`, which the
processor calls once per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.mainmem import MainMemory
from repro.network.fattree import FatTree
from repro.util.bitops import WORD_MASK


@dataclass
class MemoryRequest:
    """One outstanding load or store."""

    request_id: int
    address: int
    is_store: bool
    value: int = 0
    #: the requesting station's leaf index in the fat-tree (0 if n/a)
    leaf: int = 0
    #: filled in at completion for loads
    result: int | None = None


@dataclass
class CacheStats:
    """Aggregate statistics, for experiments and tests."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    bank_conflict_cycles: int = 0
    network_denied_cycles: int = 0

    @property
    def accesses(self) -> int:
        """Total completed accesses."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit fraction (0 when nothing has completed)."""
        return self.hits / self.accesses if self.accesses else 0.0

    def counters(self) -> dict[str, int]:
        """The stats as telemetry counters (``mem.cache.*`` namespace)."""
        return {
            "mem.cache.hits": self.hits,
            "mem.cache.misses": self.misses,
            "mem.cache.writebacks": self.writebacks,
            "mem.cache.bank_conflict_cycles": self.bank_conflict_cycles,
            "mem.cache.network_denied_cycles": self.network_denied_cycles,
        }


@dataclass
class _Line:
    tag: int
    words: list[int]
    dirty: bool = False


@dataclass
class _InFlight:
    request: MemoryRequest
    finish_cycle: int
    is_hit: bool


class InterleavedCache:
    """See module docstring.

    Args:
        banks: number of banks (power of two).
        lines_per_bank: direct-mapped lines in each bank.
        words_per_line: line size in 32-bit words (power of two).
        hit_latency: bank service cycles for a hit.
        memory: backing store (its ``latency`` is the miss penalty).
        fat_tree: optional admission network; ``None`` = unlimited
            bandwidth (useful for unit tests).
    """

    def __init__(
        self,
        banks: int = 4,
        lines_per_bank: int = 64,
        words_per_line: int = 4,
        hit_latency: int = 1,
        memory: MainMemory | None = None,
        fat_tree: FatTree | None = None,
    ):
        if banks < 1 or banks & (banks - 1):
            raise ValueError("banks must be a power of two")
        if words_per_line < 1 or words_per_line & (words_per_line - 1):
            raise ValueError("words_per_line must be a power of two")
        if lines_per_bank < 1:
            raise ValueError("need at least one line per bank")
        if hit_latency < 1:
            raise ValueError("hit latency must be >= 1")
        self.banks = banks
        self.lines_per_bank = lines_per_bank
        self.words_per_line = words_per_line
        self.hit_latency = hit_latency
        self.memory = memory if memory is not None else MainMemory()
        self.fat_tree = fat_tree
        self.stats = CacheStats()

        self._lines: list[dict[int, _Line]] = [dict() for _ in range(banks)]
        self._pending_network: list[MemoryRequest] = []
        self._bank_queues: list[list[MemoryRequest]] = [[] for _ in range(banks)]
        self._bank_busy: list[_InFlight | None] = [None] * banks
        self._cycle = 0
        self._completed: list[MemoryRequest] = []

    # -- address helpers ------------------------------------------------

    def bank_of(self, address: int) -> int:
        """Bank serving *address* (word-interleaved)."""
        return (address // 4) % self.banks

    def _line_index(self, address: int) -> tuple[int, int, int]:
        """(bank, set index, tag) of *address*."""
        word = address // 4
        bank = word % self.banks
        bank_word = word // self.banks
        line = bank_word // self.words_per_line
        return bank, line % self.lines_per_bank, line // self.lines_per_bank

    def _line_base_address(self, bank: int, set_index: int, tag: int) -> int:
        line = tag * self.lines_per_bank + set_index
        first_bank_word = line * self.words_per_line
        return 4 * (first_bank_word * self.banks + bank)

    # -- public API ------------------------------------------------------

    def submit(self, request: MemoryRequest) -> None:
        """Enqueue a request; it completes via :meth:`tick` some cycles later."""
        if request.address % 4 != 0:
            raise ValueError(f"unaligned address {request.address:#x}")
        self._pending_network.append(request)

    def tick(self) -> list[MemoryRequest]:
        """Advance one cycle; returns requests that completed this cycle."""
        self._cycle += 1
        completed: list[MemoryRequest] = []

        # 1. Network admission: oldest-first through the fat-tree (or any
        # admit-compatible network, e.g. the butterfly front end, which
        # additionally wants the destination banks).
        if self._pending_network:
            if self.fat_tree is None:
                admitted = list(range(len(self._pending_network)))
                denied: list[int] = []
            else:
                leaves = [r.leaf for r in self._pending_network]
                try:
                    routing = self.fat_tree.admit(
                        leaves, [self.bank_of(r.address) for r in self._pending_network]
                    )
                except TypeError:
                    routing = self.fat_tree.admit(leaves)
                admitted = list(routing.granted)
                denied = list(routing.denied)
            for index in admitted:
                request = self._pending_network[index]
                self._bank_queues[self.bank_of(request.address)].append(request)
            self.stats.network_denied_cycles += len(denied)
            self._pending_network = [self._pending_network[i] for i in denied]

        # 2. Bank service.  A request's first service tick counts toward
        # its latency, so a hit with hit_latency=1 completes the tick it
        # starts.
        for bank in range(self.banks):
            busy = self._bank_busy[bank]
            if busy is not None:
                if self._cycle >= busy.finish_cycle:
                    self._finish(busy)
                    completed.append(busy.request)
                    self._bank_busy[bank] = None
                else:
                    if self._bank_queues[bank]:
                        self.stats.bank_conflict_cycles += 1
                    continue
            if self._bank_queues[bank] and self._bank_busy[bank] is None:
                request = self._bank_queues[bank].pop(0)
                in_flight = self._start(bank, request)
                if self._cycle >= in_flight.finish_cycle:
                    self._finish(in_flight)
                    completed.append(in_flight.request)
                else:
                    self._bank_busy[bank] = in_flight

        return completed

    def drain(self, max_cycles: int = 100_000) -> list[MemoryRequest]:
        """Tick until every outstanding request completes; returns them all."""
        done: list[MemoryRequest] = []
        cycles = 0
        while self.outstanding > 0:
            done.extend(self.tick())
            cycles += 1
            if cycles > max_cycles:
                raise RuntimeError("cache failed to drain")
        return done

    @property
    def outstanding(self) -> int:
        """Requests somewhere in the network, queues, or banks."""
        return (
            len(self._pending_network)
            + sum(len(q) for q in self._bank_queues)
            + sum(1 for b in self._bank_busy if b is not None)
        )

    @property
    def cycle(self) -> int:
        """Cycles elapsed."""
        return self._cycle

    # -- internals --------------------------------------------------------

    def _start(self, bank: int, request: MemoryRequest) -> _InFlight:
        _, set_index, tag = self._line_index(request.address)
        line = self._lines[bank].get(set_index)
        is_hit = line is not None and line.tag == tag
        latency = self.hit_latency
        if not is_hit:
            latency += self.memory.latency
            if line is not None and line.dirty:
                latency += self.memory.latency  # write back the victim first
        return _InFlight(
            request=request, finish_cycle=self._cycle + latency - 1, is_hit=is_hit
        )

    def _finish(self, in_flight: _InFlight) -> None:
        request = in_flight.request
        bank, set_index, tag = self._line_index(request.address)
        line = self._lines[bank].get(set_index)

        if in_flight.is_hit:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
            # write back the victim
            if line is not None and line.dirty:
                self.stats.writebacks += 1
                base = self._line_base_address(bank, set_index, line.tag)
                for w, value in enumerate(line.words):
                    self.memory.write_word(base + 4 * w * self.banks, value)
            # fill from memory
            base = self._line_base_address(bank, set_index, tag)
            words = [
                self.memory.read_word(base + 4 * w * self.banks)
                for w in range(self.words_per_line)
            ]
            line = _Line(tag=tag, words=words)
            self._lines[bank][set_index] = line

        word_in_line = (request.address // 4 // self.banks) % self.words_per_line
        if request.is_store:
            line.words[word_in_line] = request.value & WORD_MASK
            line.dirty = True
        else:
            request.result = line.words[word_in_line]

    def flush(self) -> None:
        """Write all dirty lines back to memory (used at end of runs)."""
        for bank in range(self.banks):
            for set_index, line in self._lines[bank].items():
                if line.dirty:
                    base = self._line_base_address(bank, set_index, line.tag)
                    for w, value in enumerate(line.words):
                        self.memory.write_word(base + 4 * w * self.banks, value)
                    line.dirty = False
