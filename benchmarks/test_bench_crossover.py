"""E4 — the Section 7 dominance crossovers."""

from repro.experiments import crossover


def test_bench_crossover_at_L_squared(once):
    outcome = once(crossover.run)
    print()
    print(crossover.report())
    # every crossover exists and sits at a fixed multiple of L^2
    assert all(n_star is not None for n_star in outcome.crossovers.values())
    assert outcome.crossover_tracks_L_squared()


def test_bench_us2_wins_small_us1_wins_large(once):
    outcome = once(crossover.run)
    for L, sweep in outcome.ratio_sweep.items():
        small_n_ratio = sweep[0][1]
        large_n_ratio = sweep[-1][1]
        # ratio = US1 wire / US2 wire: big for small n (US2 wins),
        # below 1 for large n (US1 wins)
        assert small_n_ratio > large_n_ratio
        if L <= 32:
            assert large_n_ratio < 1.0


def test_bench_hybrid_beats_us1_by_sqrt_L(once):
    outcome = once(crossover.run)
    assert outcome.hybrid_factor_grows_like_sqrt_L()
    # and the hybrid always wins at large n
    assert all(factor > 1.0 for factor in outcome.hybrid_factors.values())
