"""The paper's three memory-bandwidth regimes.

Case 1: M(n) = O(n^(1/2 - eps))   -> X(n) = Theta(sqrt(n) L)
Case 2: M(n) = Theta(n^(1/2))     -> X(n) = Theta(sqrt(n)(L + log n))
Case 3: M(n) = Omega(n^(1/2+eps)) -> X(n) = Theta(sqrt(n) L + M(n))

Case 3 additionally requires the regularity condition
``M(n/4) <= c M(n)/2`` for some c < 1 and all sufficiently large n.
"""

from __future__ import annotations

import enum
from typing import Callable


class Regime(enum.Enum):
    """Which of the paper's three cases a bandwidth function falls into."""

    CASE1 = "case1"  # M below sqrt
    CASE2 = "case2"  # M at sqrt
    CASE3 = "case3"  # M above sqrt


def classify_exponent(exponent: float) -> Regime:
    """Classify ``M(n) = n**exponent``."""
    if exponent < 0.5:
        return Regime.CASE1
    if exponent == 0.5:
        return Regime.CASE2
    return Regime.CASE3


def classify_bandwidth(
    bandwidth: Callable[[int], float],
    n_low: int = 64,
    n_high: int = 1 << 20,
    tolerance: float = 0.03,
) -> Regime:
    """Classify an arbitrary bandwidth function by its measured exponent.

    Fits the growth exponent between *n_low* and *n_high* and compares
    it to 1/2 within *tolerance*.
    """
    import math

    m_low = max(bandwidth(n_low), 1e-12)
    m_high = max(bandwidth(n_high), 1e-12)
    exponent = math.log(m_high / m_low) / math.log(n_high / n_low)
    if exponent < 0.5 - tolerance:
        return Regime.CASE1
    if exponent > 0.5 + tolerance:
        return Regime.CASE3
    return Regime.CASE2


def regularity_holds(
    bandwidth: Callable[[int], float],
    c: float = 0.99,
    n_start: int = 64,
    levels: int = 10,
) -> bool:
    """Check the paper's Case 3 regularity requirement numerically.

    ``M(n/4) <= c * M(n) / 2`` for all tested n = n_start * 4^k.
    """
    if not 0 < c:
        raise ValueError("c must be positive")
    n = n_start
    for _ in range(levels):
        m_quarter = bandwidth(n // 4)
        m_full = bandwidth(n)
        if m_quarter > c * m_full / 2.0 + 1e-12:
            return False
        n *= 4
    return True
