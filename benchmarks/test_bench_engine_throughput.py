"""Engine throughput: the vectorized large-n engine vs the object model.

Addresses the repro-band concern ("behavioral model easy; too slow for
large-n studies") with a real pytest-benchmark timing comparison, and
sweeps IPC versus window size at scales the paper cares about
(window 128+, the size its 1 cm² hybrid targets).
"""

import pytest

from repro.ultrascalar import IdealMemory, ProcessorConfig, make_ultrascalar1
from repro.ultrascalar.vector_engine import VectorRingEngine
from repro.util.tables import Table
from repro.workloads import random_ilp

WORKLOAD = random_ilp(1200, 0.5, seed=77)


def run_vector(window: int = 256) -> float:
    engine = VectorRingEngine(
        WORKLOAD.program, window, 32, initial_registers=WORKLOAD.registers_for()
    )
    return engine.run().ipc


def run_object_model(window: int = 64) -> float:
    config = ProcessorConfig(window_size=window, fetch_width=32)
    processor = make_ultrascalar1(
        WORKLOAD.program, config, memory=IdealMemory(),
        initial_registers=WORKLOAD.registers_for(),
    )
    return processor.run().ipc


def test_bench_vector_engine_throughput(benchmark):
    ipc = benchmark(run_vector)
    assert ipc > 1.0


def test_bench_object_model_throughput(benchmark):
    ipc = benchmark(run_object_model)
    assert ipc > 1.0


def test_bench_window_ipc_sweep(once):
    """IPC vs window size at large n — the study the vector engine enables."""

    def sweep():
        rows = []
        for window in (16, 64, 256, 1024):
            engine = VectorRingEngine(
                WORKLOAD.program, window, window,
                initial_registers=WORKLOAD.registers_for(),
            )
            rows.append((window, engine.run().ipc))
        return rows

    rows = once(sweep)
    table = Table(["window n", "IPC"], title="Large-n IPC sweep (vector engine)")
    for window, ipc in rows:
        table.add_row([window, round(ipc, 2)])
    print()
    print(table.render())
    ipcs = [ipc for _, ipc in rows]
    assert ipcs == sorted(ipcs)  # monotone until saturation
