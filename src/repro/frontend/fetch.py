"""The fetch unit: walks the predicted path and delivers instructions.

Conventional fetch delivers up to ``width`` *contiguous* instructions
per cycle and stops at the first predicted-taken control transfer —
that is the fetch-bandwidth wall trace caches exist to break.  With a
:class:`repro.memory.trace_cache.TraceCache` attached, a hit delivers a
stored dynamic trace that may span several taken branches in a single
cycle; misses fall back to conventional fetch and fill the trace cache.

The fetch unit is shared by all processor models; each model calls
:meth:`FetchUnit.fetch_cycle` once per simulated cycle and
:meth:`FetchUnit.redirect` on branch mispredictions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend.branch_predictor import BranchPredictor
from repro.isa.instruction import Instruction
from repro.isa.program import Program
from repro.memory.trace_cache import TraceCache


@dataclass(frozen=True)
class FetchedInstruction:
    """One instruction leaving the front end."""

    static_index: int
    instruction: Instruction
    #: prediction for control transfers (None for non-control instructions)
    predicted_taken: bool | None
    #: the PC fetch continued from after this instruction
    predicted_next: int


class FetchUnit:
    """See module docstring.

    Args:
        program: the static program.
        predictor: conditional-branch predictor.
        width: maximum instructions delivered per cycle.
        trace_cache: optional trace cache for multi-branch fetch.
    """

    def __init__(
        self,
        program: Program,
        predictor: BranchPredictor,
        width: int = 4,
        trace_cache: TraceCache | None = None,
    ):
        if width < 1:
            raise ValueError("fetch width must be positive")
        self.program = program
        self.predictor = predictor
        self.width = width
        self.trace_cache = trace_cache
        self._pc: int | None = 0 if len(program) else None
        self.fetched_count = 0
        self.trace_cache_hits = 0
        self.trace_cache_misses = 0

    @property
    def pc(self) -> int | None:
        """Next PC to fetch, or ``None`` when fetch is stopped (HALT / end)."""
        return self._pc

    def redirect(self, pc: int) -> None:
        """Restart fetch at *pc* (misprediction recovery or explicit jump)."""
        if 0 <= pc < len(self.program):
            self._pc = pc
        else:
            self._pc = None

    def stalled(self) -> bool:
        """True when fetch has stopped (awaiting redirect or program end)."""
        return self._pc is None

    def counters(self) -> dict[str, int]:
        """Front-end telemetry counters (``fetch.*`` namespace)."""
        counters = {"fetch.delivered": self.fetched_count}
        if self.trace_cache is not None:
            counters["fetch.trace_cache_hits"] = self.trace_cache_hits
            counters["fetch.trace_cache_misses"] = self.trace_cache_misses
        return counters

    # -- fetch ------------------------------------------------------------

    def _predict(self, pc: int, inst: Instruction) -> tuple[bool | None, int]:
        """(prediction, next pc) along the predicted path."""
        if inst.is_branch:
            taken = self.predictor.predict(pc, inst)
            return taken, (inst.target if taken else pc + 1)
        if inst.is_control:  # unconditional jump
            return True, inst.target
        return None, pc + 1

    def fetch_cycle(self, budget: int | None = None) -> list[FetchedInstruction]:
        """Deliver this cycle's instructions along the predicted path.

        *budget* caps the delivery below the configured width (e.g. when
        the window has fewer free stations than the fetch width).
        """
        if self._pc is None:
            return []
        width = self.width if budget is None else max(0, min(self.width, budget))
        if width == 0:
            return []
        if self.trace_cache is not None:
            fetched = self._fetch_with_trace_cache(width)
        else:
            fetched = self._fetch_conventional(width, stop_at_taken=True)
        if fetched:
            self.fetched_count += len(fetched)
            last = fetched[-1]
            if last.instruction.is_halt:
                self._pc = None
            elif not 0 <= last.predicted_next < len(self.program):
                self._pc = None
            else:
                self._pc = last.predicted_next
        return fetched

    def _fetch_conventional(
        self, budget: int, stop_at_taken: bool
    ) -> list[FetchedInstruction]:
        assert self._pc is not None
        pc = self._pc
        fetched: list[FetchedInstruction] = []
        while len(fetched) < budget and 0 <= pc < len(self.program):
            inst = self.program[pc]
            predicted, next_pc = self._predict(pc, inst)
            fetched.append(
                FetchedInstruction(
                    static_index=pc,
                    instruction=inst,
                    predicted_taken=predicted,
                    predicted_next=next_pc,
                )
            )
            if inst.is_halt:
                break
            if stop_at_taken and predicted is True:
                break  # cannot fetch past a taken transfer without a trace cache
            pc = next_pc
        return fetched

    def _fetch_with_trace_cache(self, width: int) -> list[FetchedInstruction]:
        assert self.trace_cache is not None and self._pc is not None
        start_pc = self._pc
        # Walk the predicted path to build the outcome vector we want.
        path = self._walk_predicted_path(start_pc, width)
        outcomes = tuple(
            f.predicted_taken
            for f in path
            if f.instruction.is_branch and f.predicted_taken is not None
        )
        stored = self.trace_cache.lookup(start_pc, outcomes)
        if stored is not None:
            # Deliver the stored trace (truncated to the fetch width); its
            # instructions carry fresh predictions so redirects stay honest.
            delivered: list[FetchedInstruction] = []
            pc_check = start_pc
            for static_index in stored[:width]:
                if pc_check != static_index:
                    break  # stale trace (path diverged); deliver the prefix
                inst = self.program[static_index]
                predicted, next_pc = self._predict(static_index, inst)
                delivered.append(
                    FetchedInstruction(static_index, inst, predicted, next_pc)
                )
                if inst.is_halt:
                    break
                pc_check = next_pc
            if delivered:
                self.trace_cache_hits += 1
                return delivered
        # Miss: conventional fetch this cycle, then fill the trace cache
        # with the predicted path for next time.
        self.trace_cache_misses += 1
        fetched = self._fetch_conventional(width, stop_at_taken=True)
        fill_path = path[: min(len(path), self.trace_cache.trace_length)]
        fill_outcomes = []
        trimmed: list[FetchedInstruction] = []
        for f in fill_path:
            if f.instruction.is_branch and f.predicted_taken is not None:
                if len(fill_outcomes) >= self.trace_cache.max_branches:
                    break
                fill_outcomes.append(f.predicted_taken)
            trimmed.append(f)
        if trimmed:
            self.trace_cache.fill(
                start_pc,
                tuple(fill_outcomes),
                tuple(f.static_index for f in trimmed),
            )
        return fetched

    def _walk_predicted_path(self, start_pc: int, width: int) -> list[FetchedInstruction]:
        """The predicted path from *start_pc*, crossing taken branches."""
        assert self.trace_cache is not None
        path: list[FetchedInstruction] = []
        pc = start_pc
        branches = 0
        limit = min(width, self.trace_cache.trace_length)
        while len(path) < limit and 0 <= pc < len(self.program):
            inst = self.program[pc]
            predicted, next_pc = self._predict(pc, inst)
            path.append(FetchedInstruction(pc, inst, predicted, next_pc))
            if inst.is_halt:
                break
            if inst.is_branch:
                branches += 1
                if branches > self.trace_cache.max_branches:
                    break
            pc = next_pc
        return path
