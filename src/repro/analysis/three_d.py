"""The Section 7 three-dimensional packaging bounds.

"In a true three-dimensional packaging technology the Ultrascalar
bounds do improve because, intuitively, there is more space in three
dimensions than in two":

* Ultrascalar I, small M(n): volume Θ(n L^(3/2)), wire Θ(n^(1/3) L^(1/2));
  large M(n) = Ω(n^(2/3+eps)) adds volume Θ(M(n)^(3/2)).
* Ultrascalar II: volume O(n² + L²) for both linear- and log-depth
  circuits (no extra log factor, unlike 2-D).
* Hybrid, small M(n): optimal cluster Θ(L^(3/4)); volume O(n L^(3/4))
  (versus area Θ(n L) in two dimensions).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.util.tables import Table


@dataclass(frozen=True)
class ThreeDBound:
    """One 3-D bound: formula string + evaluable Θ-expression."""

    processor: str
    quantity: str
    formula: str
    evaluate: Callable[[float, float, float], float]  # (n, L, M) -> value


THREE_D_BOUNDS: tuple[ThreeDBound, ...] = (
    ThreeDBound(
        "ultrascalar1", "volume", "Θ(n L^(3/2))",
        lambda n, L, M: n * L**1.5,
    ),
    ThreeDBound(
        "ultrascalar1", "wire_delay", "Θ(n^(1/3) L^(1/2))",
        lambda n, L, M: n ** (1.0 / 3.0) * math.sqrt(L),
    ),
    ThreeDBound(
        "ultrascalar1", "extra_volume_large_M", "Θ(M(n)^(3/2))",
        lambda n, L, M: M**1.5,
    ),
    ThreeDBound(
        "ultrascalar2", "volume", "O(n² + L²)",
        lambda n, L, M: n**2 + L**2,
    ),
    ThreeDBound(
        "hybrid", "optimal_cluster", "Θ(L^(3/4))",
        lambda n, L, M: L**0.75,
    ),
    ThreeDBound(
        "hybrid", "volume", "O(n L^(3/4))",
        lambda n, L, M: n * L**0.75,
    ),
)


def lookup(processor: str, quantity: str) -> ThreeDBound:
    """Fetch one 3-D bound; raises KeyError when absent."""
    for bound in THREE_D_BOUNDS:
        if bound.processor == processor and bound.quantity == quantity:
            return bound
    raise KeyError(f"no 3-D bound for ({processor}, {quantity})")


def three_d_table(n: int = 4096, L: int = 32, M: float = 0.0) -> Table:
    """Render the 3-D bounds with example values at (n, L, M)."""
    table = Table(
        ["Processor", "Quantity", "Bound", f"value @ n={n}, L={L}"],
        title="Section 7 — three-dimensional packaging bounds",
    )
    for bound in THREE_D_BOUNDS:
        table.add_row(
            [bound.processor, bound.quantity, bound.formula,
             bound.evaluate(n, L, M)]
        )
    return table


def volume_improvement_2d_to_3d(n: int, L: int) -> float:
    """Hybrid footprint gain from 3-D: area Θ(n L) vs volume Θ(n L^(3/4)).

    Returns the 2-D-area : 3-D-volume ratio Θ(L^(1/4)).
    """
    if n < 1 or L < 1:
        raise ValueError("n and L must be positive")
    return (n * L) / (n * L**0.75)
