"""Differential testing and property fuzzing for the processor models.

The subsystem closes the loop the paper's equivalence arguments open:
every engine backend must agree with the sequential interpreter (the
architectural oracle) on all architecturally visible state, and the
scalable designs must agree with *each other* cycle-for-cycle in the
wrap-around-free regime.  See ``docs/verification.md``.

Modules:

* :mod:`repro.verify.oracle` — the golden reference run.
* :mod:`repro.verify.diff` — one program through every backend.
* :mod:`repro.verify.invariants` — per-cycle engine-internal checks.
* :mod:`repro.verify.fuzz` — random programs, shrinking, reproducers.
* :mod:`repro.verify.artifact` — the ``repro-verify/1`` JSON document.
* :mod:`repro.verify.cli` — ``python -m repro verify``.
"""

from repro.verify.artifact import (
    VERIFY_SCHEMA,
    build_verify_artifact,
    validate_verify_artifact,
    write_verify_artifact,
)
from repro.verify.diff import (
    DESIGNS,
    DiffReport,
    Divergence,
    run_differential,
    vector_supported,
)
from repro.verify.fuzz import (
    FAILURE_SCHEMA,
    FuzzCase,
    corpus_cases,
    generate_case,
    load_reproducer,
    run_case,
    shard_report,
    shrink_case,
    write_reproducer,
)
from repro.verify.invariants import InvariantChecker, InvariantViolation, checked_run
from repro.verify.oracle import Commit, OracleResult, commit_stream, run_oracle

__all__ = [
    "VERIFY_SCHEMA",
    "build_verify_artifact",
    "validate_verify_artifact",
    "write_verify_artifact",
    "DESIGNS",
    "DiffReport",
    "Divergence",
    "run_differential",
    "vector_supported",
    "FAILURE_SCHEMA",
    "FuzzCase",
    "corpus_cases",
    "generate_case",
    "load_reproducer",
    "run_case",
    "shard_report",
    "shrink_case",
    "write_reproducer",
    "InvariantChecker",
    "InvariantViolation",
    "checked_run",
    "Commit",
    "OracleResult",
    "commit_stream",
    "run_oracle",
]
