"""Parametric VLSI layout models.

The paper's empirical section lays the three register datapaths out in
Magic (0.35 um CMOS, 3 metal layers) and compares areas.  We replace
the fabricated layouts with a parametric model that keeps the same
*structure* — the same wire counts, the same floorplans, the same
recurrences — so that relative areas, wire lengths, and growth
exponents are preserved (see DESIGN.md, substitution table).

* :mod:`repro.vlsi.tech` -- technology parameters and the calibrated
  constants (documented against the paper's published absolute sizes).
* :mod:`repro.vlsi.cells` -- standard-cell/station area estimates
  derived from the gate-level netlists of :mod:`repro.circuits`.
* :mod:`repro.vlsi.htree_layout` -- the Ultrascalar I H-tree floorplan
  (Figure 6): side length X(n), root-to-leaf wire W(n), area.
* :mod:`repro.vlsi.grid_layout` -- the Ultrascalar II floorplan
  (Figure 7): side Θ(n + L) linear, Θ((n+L) log(n+L)) for the tree
  variant, with the paper's mixed strategy in between.
* :mod:`repro.vlsi.hybrid_layout` -- Ultrascalar II clusters connected
  by the Ultrascalar I H-tree (Figure 10): side U(n), optimal cluster
  size C = Θ(L).
* :mod:`repro.vlsi.wires` -- repeatered wire delay, linear in length.
"""

from repro.vlsi.cells import station_cell, StationCell
from repro.vlsi.grid_layout import Ultrascalar2Layout
from repro.vlsi.htree_layout import Ultrascalar1Layout
from repro.vlsi.hybrid_layout import HybridLayout, optimal_cluster_size
from repro.vlsi.tech import Technology, PAPER_TECH
from repro.vlsi.three_d_layout import (
    ThreeDHybridLayout,
    ThreeDUltrascalar1Layout,
    optimal_cluster_size_3d,
)
from repro.vlsi.wires import wire_delay

__all__ = [
    "ThreeDHybridLayout",
    "ThreeDUltrascalar1Layout",
    "optimal_cluster_size_3d",
    "station_cell",
    "StationCell",
    "Ultrascalar2Layout",
    "Ultrascalar1Layout",
    "HybridLayout",
    "optimal_cluster_size",
    "Technology",
    "PAPER_TECH",
    "wire_delay",
]
