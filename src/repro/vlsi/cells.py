"""Execution-station cell area model.

Per the paper's Figure 2, a station holds its own register file (L
registers of w bits plus ready bits), a simple integer ALU, decode
logic, and control.  The ALU's gate count comes from the actual
gate-level netlist in :mod:`repro.circuits.alu`; the register file
scales as L x (w + 1) bit cells; decode and control are constants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.vlsi.tech import Technology, PAPER_TECH


@lru_cache(maxsize=None)
def _alu_gate_count(width: int) -> int:
    from repro.circuits.alu import build_alu
    from repro.circuits.netlist import Netlist

    netlist = Netlist()
    build_alu(netlist, width)
    return netlist.gate_count


@lru_cache(maxsize=None)
def prefix_node_gates_per_wire(value_bits: int = 32) -> float:
    """Gates per datapath wire in one H-tree prefix node, measured.

    Builds a real CSPP tree (:class:`repro.circuits.cspp.CsppTree`) for
    one register of ``value_bits`` and divides its gate count by
    (tree nodes x wires) — grounding the technology model's
    ``prefix_node_pitch`` in the actual circuit construction rather
    than a bare assumption.
    """
    from repro.circuits.cspp import build_copy_cspp

    n = 16
    tree = build_copy_cspp(n, width=value_bits + 1)
    internal_nodes = n - 1  # binary tree over n leaves
    return tree.gate_count / (internal_nodes * (value_bits + 1))


@dataclass(frozen=True)
class StationCell:
    """The physical footprint of one execution station."""

    num_registers: int
    word_bits: int
    side_tracks: float
    alu_gates: int

    @property
    def area_tracks2(self) -> float:
        """Station area in tracks squared."""
        return self.side_tracks**2

    @property
    def datapath_wires(self) -> int:
        """Wires a station exchanges with each register ring: L x (w + 1)."""
        return self.num_registers * (self.word_bits + 1)


def station_cell(
    num_registers: int = 32,
    word_bits: int = 32,
    tech: Technology = PAPER_TECH,
    full_register_interface: bool = True,
) -> StationCell:
    """Estimate the station footprint for an (L, w) machine.

    The side is the square root of the summed component areas:
    register-file bits, the gate-level ALU, and a fixed decode/control
    block.  With *full_register_interface* (an Ultrascalar I station,
    which receives the entire annotated register file) the side is never
    smaller than the perimeter needed to land L x (w + 1) datapath
    wires — the very overhead the Ultrascalar II avoids by "pass[ing]
    only the argument and result registers to and from each execution
    station", so grid/cluster stations set it False.
    """
    if num_registers < 1 or word_bits < 1:
        raise ValueError("L and w must be positive")
    alu_gates = _alu_gate_count(min(word_bits, 64))
    regfile_area = (
        num_registers * (word_bits + 1) * tech.regfile_bit_tracks**2 * 40.0
    )  # bit cell ~ (0.55 * sqrt(40))^2 tracks^2
    alu_area = alu_gates * 9.0  # ~3x3 tracks per gate
    control_area = tech.station_logic_tracks**2 * 0.05
    content_side = math.sqrt(regfile_area + alu_area + control_area)
    side = content_side
    if full_register_interface:
        wire_side = num_registers * (word_bits + 1) * tech.prefix_node_pitch * 0.75
        side = max(content_side, wire_side)
    return StationCell(
        num_registers=num_registers,
        word_bits=word_bits,
        side_tracks=side,
        alu_gates=alu_gates,
    )
