"""E9 — measured gate-delay growth of the constructed netlists."""

from repro.experiments import gate_depth


def test_bench_settle_time_growth(once):
    outcome = once(gate_depth.run)
    print()
    print(gate_depth.report())
    # linear families
    assert 0.85 <= outcome.ring_exponent <= 1.1
    assert 0.85 <= outcome.grid_exponent <= 1.1
    # logarithmic families (power-law exponent far below sqrt)
    assert outcome.cspp_exponent < 0.6
    assert outcome.tree_grid_exponent < 0.5


def test_bench_cspp_beats_ring_everywhere(once):
    outcome = once(gate_depth.run)
    for ring, cspp in zip(outcome.ring_times, outcome.cspp_times):
        if ring > 4:
            assert cspp < ring


def test_bench_tree_grid_beats_linear_grid_at_scale(once):
    outcome = once(gate_depth.run)
    assert outcome.tree_grid_times[-1] < outcome.grid_times[-1]


def test_bench_cspp_settle_additive_per_doubling(once):
    """Θ(log n): each doubling of n adds a constant number of gate delays."""
    outcome = once(gate_depth.run)
    diffs = [b - a for a, b in zip(outcome.cspp_times, outcome.cspp_times[1:])]
    assert max(diffs) <= 3
