"""The :class:`Instruction` value type.

An instruction is immutable and hashable; the dynamic (per-execution)
state lives in the processor models, never here.  The accessors
:meth:`Instruction.reads` and :meth:`Instruction.writes` expose the
read/write register sets that every datapath (mux rings, CSPP trees,
comparator columns) consumes; the ISA guarantees ``len(reads) <= 2`` and
``len(writes) <= 1`` as the paper requires.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import Format, Opcode


@dataclass(frozen=True)
class Instruction:
    """One static instruction.

    Fields not used by the opcode's format must be ``None``; the
    constructor enforces this so that malformed instructions are
    impossible to represent.

    Attributes:
        op: the opcode.
        rd: destination register (written), if any.
        rs1: first source register, if any.
        rs2: second source register, if any.
        imm: immediate operand (16-bit signed for I-format/MEM offsets).
        target: branch/jump target as a *static instruction index*.
    """

    op: Opcode
    rd: int | None = None
    rs1: int | None = None
    rs2: int | None = None
    imm: int | None = None
    target: int | None = None

    def __post_init__(self) -> None:
        fmt = self.op.fmt
        expect = {
            Format.R3: ("rd", "rs1", "rs2"),
            Format.R2: ("rd", "rs1"),
            Format.I2: ("rd", "rs1", "imm"),
            Format.I1: ("rd", "imm"),
            Format.MEM: self._mem_fields(),
            Format.B2: ("rs1", "rs2", "target"),
            Format.J: ("target",),
            Format.NONE: (),
        }[fmt]
        for field in ("rd", "rs1", "rs2", "imm", "target"):
            value = getattr(self, field)
            if field in expect and value is None:
                raise ValueError(f"{self.op.mnemonic}: missing operand {field}")
            if field not in expect and value is not None:
                raise ValueError(f"{self.op.mnemonic}: unexpected operand {field}={value}")

    def _mem_fields(self) -> tuple[str, ...]:
        # lw rd, imm(rs1);  sw rs2, imm(rs1)
        if self.op is Opcode.LW:
            return ("rd", "rs1", "imm")
        return ("rs1", "rs2", "imm")

    @property
    def reads(self) -> tuple[int, ...]:
        """Logical registers this instruction reads (0, 1, or 2 of them)."""
        regs = []
        if self.rs1 is not None:
            regs.append(self.rs1)
        if self.rs2 is not None:
            regs.append(self.rs2)
        return tuple(regs)

    @property
    def writes(self) -> tuple[int, ...]:
        """Logical registers this instruction writes (0 or 1 of them)."""
        return (self.rd,) if self.rd is not None else ()

    @property
    def is_load(self) -> bool:
        """True for memory loads."""
        return self.op is Opcode.LW

    @property
    def is_store(self) -> bool:
        """True for memory stores."""
        return self.op is Opcode.SW

    @property
    def is_memory(self) -> bool:
        """True for loads and stores."""
        return self.is_load or self.is_store

    @property
    def is_branch(self) -> bool:
        """True for conditional branches (not unconditional jumps)."""
        return self.op.fmt is Format.B2

    @property
    def is_control(self) -> bool:
        """True for any control transfer (branch or jump)."""
        return self.op.fmt in (Format.B2, Format.J)

    @property
    def is_halt(self) -> bool:
        """True for the HALT instruction."""
        return self.op is Opcode.HALT

    def __str__(self) -> str:
        fmt = self.op.fmt
        m = self.op.mnemonic
        if fmt is Format.R3:
            return f"{m} r{self.rd}, r{self.rs1}, r{self.rs2}"
        if fmt is Format.R2:
            return f"{m} r{self.rd}, r{self.rs1}"
        if fmt is Format.I2:
            return f"{m} r{self.rd}, r{self.rs1}, {self.imm}"
        if fmt is Format.I1:
            return f"{m} r{self.rd}, {self.imm}"
        if fmt is Format.MEM:
            if self.op is Opcode.LW:
                return f"{m} r{self.rd}, {self.imm}(r{self.rs1})"
            return f"{m} r{self.rs2}, {self.imm}(r{self.rs1})"
        if fmt is Format.B2:
            return f"{m} r{self.rs1}, r{self.rs2}, @{self.target}"
        if fmt is Format.J:
            return f"{m} @{self.target}"
        return m
