"""The Section 7 dominance analysis.

"For smaller processors (n < O(L²)) the Ultrascalar II dominates the
Ultrascalar I by a factor of Θ(L/√n), but for larger processors the
Ultrascalar I dominates the Ultrascalar II.  In fact, for large
processors (n = Ω(L)) with low memory bandwidths ... the Ultrascalar I
wire delays beat the Ultrascalar II by a factor of √n/L, and the hybrid
beats the Ultrascalar I by an additional factor of √L."
"""

from __future__ import annotations

from typing import Callable

from repro.vlsi.grid_layout import Ultrascalar2Layout
from repro.vlsi.htree_layout import Ultrascalar1Layout, zero_bandwidth
from repro.vlsi.hybrid_layout import HybridLayout
from repro.vlsi.tech import Technology, PAPER_TECH


def wire_delay_ratio(
    n: int,
    L: int,
    word_bits: int = 32,
    bandwidth: Callable[[int], float] = zero_bandwidth,
    tech: Technology = PAPER_TECH,
) -> float:
    """Ultrascalar I critical wire / Ultrascalar II critical wire at (n, L).

    > 1 means the Ultrascalar II wins (shorter wires); < 1 means the
    Ultrascalar I wins.
    """
    us1 = Ultrascalar1Layout(n, L, word_bits, bandwidth, tech)
    us2 = Ultrascalar2Layout(n, L, word_bits, variant="linear", tech=tech)
    return us1.critical_wire / us2.critical_wire


def find_crossover(
    L: int,
    word_bits: int = 32,
    max_n: int = 1 << 22,
    tech: Technology = PAPER_TECH,
) -> int | None:
    """Smallest power-of-4 n at which the Ultrascalar I's wires get shorter.

    The paper predicts the crossover at n = Θ(L²).  Returns ``None`` if
    no crossover occurs below *max_n*.
    """
    n = 4
    while n <= max_n:
        if wire_delay_ratio(n, L, word_bits, tech=tech) < 1.0:
            return n
        n *= 4
    return None


def hybrid_advantage(
    n: int,
    L: int,
    cluster_size: int | None = None,
    word_bits: int = 32,
    tech: Technology = PAPER_TECH,
) -> float:
    """Ultrascalar I critical wire / hybrid critical wire at (n, L).

    The paper predicts Θ(√L) for n = Ω(L) at low memory bandwidth.
    """
    c = cluster_size if cluster_size is not None else max(1, L)
    while n % c:
        c //= 2
    us1 = Ultrascalar1Layout(n, L, word_bits, tech=tech)
    hybrid = HybridLayout(n, c, L, word_bits, tech=tech)
    return us1.critical_wire / hybrid.critical_wire
