"""Unit tests for the network substrates (H-tree, fat-tree, butterfly)."""

import math

import pytest

from repro.network.butterfly import ButterflyNetwork
from repro.network.fattree import (
    FatTree,
    bandwidth_constant,
    bandwidth_linear,
    bandwidth_power,
)
from repro.network.htree import (
    htree_leaf_positions,
    htree_side_length,
    is_power_of_4,
    lca_level,
    successor_tree_distances,
    successor_wire_lengths,
    wire_length_root_to_leaf,
)
from repro.network.meshoftrees import mesh_of_trees_stats, ultrascalar2_mesh_stats


class TestHTreeGeometry:
    def test_power_of_4_check(self):
        assert is_power_of_4(1) and is_power_of_4(4) and is_power_of_4(64)
        assert not is_power_of_4(2) and not is_power_of_4(8) and not is_power_of_4(0)

    @pytest.mark.parametrize("n", [2, 8, 32, 0])
    def test_rejects_non_power_of_4(self, n):
        with pytest.raises(ValueError):
            htree_leaf_positions(n)

    @pytest.mark.parametrize("n", [1, 4, 16, 64, 256])
    def test_side_length(self, n):
        assert htree_side_length(n) == math.isqrt(n)

    @pytest.mark.parametrize("n", [4, 16, 64])
    def test_leaves_fill_the_square_exactly(self, n):
        positions = htree_leaf_positions(n)
        side = htree_side_length(n)
        assert positions.shape == (n, 2)
        coords = {(int(x), int(y)) for x, y in positions}
        assert coords == {(x, y) for x in range(side) for y in range(side)}

    def test_quadrants_hold_contiguous_blocks(self):
        positions = htree_leaf_positions(16)
        # stations 0..3 in one 2x2 quadrant, 4..7 in the next, etc.
        for q in range(4):
            block = positions[4 * q : 4 * (q + 1)]
            assert block[:, 0].max() - block[:, 0].min() == 1
            assert block[:, 1].max() - block[:, 1].min() == 1

    def test_root_to_leaf_wire_length_is_sqrt_n(self):
        # W(n) = sum side/2 over levels ~ sqrt(n)
        for n in (16, 64, 256):
            w = wire_length_root_to_leaf(n)
            assert w == pytest.approx(math.isqrt(n) - 1, rel=0.01)

    def test_lca_level(self):
        assert lca_level(0, 0, 16) == 0
        assert lca_level(0, 1, 16) == 1
        assert lca_level(0, 3, 16) == 1
        assert lca_level(0, 4, 16) == 2
        assert lca_level(3, 12, 16) == 2

    def test_lca_range_checked(self):
        with pytest.raises(ValueError):
            lca_level(0, 16, 16)


class TestSuccessorCensus:
    """The paper's self-timed argument: successor paths are mostly local."""

    @pytest.mark.parametrize("n", [16, 64, 256])
    def test_at_least_half_of_successor_paths_are_local(self, n):
        distances = successor_tree_distances(n)
        local = sum(1 for d in distances if d <= 1)
        assert local / n >= 0.5

    def test_exactly_three_quarters_within_level_1(self):
        # contiguous quadrant assignment: 3 of every 4 hops stay in a
        # 4-leaf subtree
        distances = successor_tree_distances(64)
        assert sum(1 for d in distances if d == 1) == 48

    def test_wire_lengths_match_distances(self):
        lengths = successor_wire_lengths(16)
        distances = successor_tree_distances(16)
        for length, dist in zip(lengths, distances):
            assert (length == 0) == (dist == 0)
            if dist == 1:
                assert length == 2.0 * (2 / 2)  # up one level and back


class TestFatTree:
    def test_level_capacities_follow_bandwidth(self):
        tree = FatTree(64, bandwidth_power(0.5), radix=4)
        # level k uplink leaves a subtree of 4**(k+1) leaves
        assert tree.level_capacity[0] == math.ceil(4**0.5)
        assert tree.level_capacity[2] == math.ceil(64**0.5)

    def test_root_capacity_is_m_of_n(self):
        assert FatTree(64, bandwidth_linear(1.0)).root_capacity() == 64
        assert FatTree(64, bandwidth_constant(2.0)).root_capacity() == 2

    def test_admission_respects_root_capacity(self):
        tree = FatTree(16, bandwidth_constant(2.0), radix=4)
        routing = tree.admit([0, 5, 10, 15])
        assert len(routing.granted) == 2
        assert len(routing.denied) == 2

    def test_oldest_first_priority(self):
        tree = FatTree(16, bandwidth_constant(1.0), radix=4)
        routing = tree.admit([3, 7])
        assert routing.granted == (0,)
        assert routing.denied == (1,)

    def test_leaf_level_conflicts(self):
        tree = FatTree(16, bandwidth_constant(16.0), radix=4)
        # both requests from the same 4-leaf subtree share the level-0 uplink
        tree.level_capacity[0] = 1
        routing = tree.admit([0, 1])
        assert routing.granted == (0,)

    def test_full_bandwidth_admits_everything(self):
        tree = FatTree(16, bandwidth_linear(1.0), radix=4)
        routing = tree.admit(list(range(16)))
        assert len(routing.granted) == 16

    def test_path_groups(self):
        tree = FatTree(16, bandwidth_constant(1.0), radix=4)
        assert tree.path_groups(5) == [(0, 1), (1, 0)]
        with pytest.raises(ValueError):
            tree.path_groups(16)

    def test_wire_count(self):
        tree = FatTree(16, bandwidth_linear(1.0), radix=4)
        assert tree.wire_count_at_level(0, 32) == tree.level_capacity[0] * 32

    def test_validation(self):
        with pytest.raises(ValueError):
            FatTree(0, bandwidth_constant())
        with pytest.raises(ValueError):
            FatTree(4, bandwidth_constant(), radix=1)


class TestButterfly:
    def test_path_reaches_destination(self):
        net = ButterflyNetwork(8)
        for src in range(8):
            for dst in range(8):
                hops = net.path(src, dst)
                assert len(hops) == 3
                assert hops[-1][1] == dst  # final row equals destination

    def test_conflicting_routes_denied(self):
        net = ButterflyNetwork(8)
        # two different sources to the same destination always collide at
        # the last stage
        routing = net.route_batch([(0, 5), (1, 5)])
        assert routing.granted == (0,)
        assert routing.denied == (1,)

    def test_disjoint_routes_all_granted(self):
        net = ButterflyNetwork(8)
        routing = net.route_batch([(i, i) for i in range(8)])
        assert len(routing.granted) == 8

    def test_switch_count(self):
        assert ButterflyNetwork(8).switch_count == 4 * 3

    def test_validation(self):
        with pytest.raises(ValueError):
            ButterflyNetwork(3)
        with pytest.raises(ValueError):
            ButterflyNetwork(1)
        net = ButterflyNetwork(4)
        with pytest.raises(ValueError):
            net.path(0, 4)


class TestMeshOfTrees:
    def test_counts(self):
        stats = mesh_of_trees_stats(4, 8)
        assert stats.crosspoints == 32
        assert stats.row_tree_nodes == 4 * 7
        assert stats.col_tree_nodes == 8 * 3
        assert stats.total_nodes == 32 + 28 + 24

    def test_depth_is_log_rows_plus_log_cols(self):
        stats = mesh_of_trees_stats(16, 64)
        assert stats.depth == 4 + 6

    def test_ultrascalar2_dimensions(self):
        stats = ultrascalar2_mesh_stats(n=8, num_registers=4)
        assert stats.rows == 12      # n + L
        assert stats.cols == 20      # 2n + L

    def test_validation(self):
        with pytest.raises(ValueError):
            mesh_of_trees_stats(0, 4)
        with pytest.raises(ValueError):
            ultrascalar2_mesh_stats(0, 4)
