"""Tour of the paper's future-work features, implemented.

Usage::

    python examples/extensions_tour.py

1. Shared-ALU scheduling (Ultrascalar Memo 2): decouple window size
   from issue width.
2. Memory renaming (Section 7): store-to-load forwarding inside the
   window skips the memory system.
3. Self-timed operation (Section 7): results travel at wire speed, so
   near-neighbour dependence is cheap and far dependence is dear.
"""

from repro.api import IdealMemory, ProcessorConfig, build_processor
from repro.ultrascalar.trace_view import render_pipeline
from repro.util.tables import Table
from repro.workloads import independent_ops, spaced_chain, store_load_pairs


def run(workload, load_latency=1, **config_kwargs):
    config = ProcessorConfig(window_size=16, fetch_width=8, **config_kwargs)
    memory = IdealMemory(load_latency=load_latency)
    memory.load_image(workload.memory_image)
    return build_processor("us1", config).run(
        workload.program,
        memory=memory,
        initial_registers=workload.registers_for(),
    )


def main() -> None:
    # --- 1. shared ALUs ---
    table = Table(
        ["ALU pool", "cycles", "IPC"],
        title="Memo-2 shared-ALU scheduler on 40 independent ops (window 16)",
    )
    for alus in (1, 2, 4, 8, None):
        result = run(independent_ops(40), num_alus=alus)
        table.add_row([alus if alus else "per-station", result.cycles, round(result.ipc, 2)])
    print(table.render())
    print()

    # --- 2. memory renaming ---
    table = Table(
        ["load latency", "plain cycles", "renaming cycles", "forwarded"],
        title="Store-to-load forwarding (Section 7 memory renaming)",
    )
    for latency in (1, 4, 8):
        plain = run(store_load_pairs(6), load_latency=latency)
        renamed = run(store_load_pairs(6), load_latency=latency, store_forwarding=True)
        table.add_row([latency, plain.cycles, renamed.cycles, renamed.forwarded_loads])
    print(table.render())
    print()

    # --- 3. self-timed ---
    table = Table(
        ["dependence distance", "global clock", "self-timed", "cycles per link"],
        title="Self-timed forwarding: locality matters (Section 7)",
    )
    for distance in (1, 4, 8):
        links = 48 // distance
        plain = run(spaced_chain(48, distance))
        timed = run(spaced_chain(48, distance), self_timed=True)
        table.add_row([distance, plain.cycles, timed.cycles, round(timed.cycles / links, 2)])
    print(table.render())
    print()

    # --- bonus: pipeline view of the shared-ALU squeeze ---
    result = run(independent_ops(12), num_alus=2)
    print("Pipeline trace with a 2-ALU pool (columns of f = ALU starvation):")
    print(render_pipeline(result, max_instructions=13))


if __name__ == "__main__":
    main()
