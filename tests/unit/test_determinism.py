"""Bit-identical re-execution of the processor models.

The process-pool runner assumes an experiment computes the same result
no matter which process (or which run) executes it.  These tests pin
that contract at the simulator level: two runs of each factory on the
same kernel must agree on every field of :class:`ProcessorResult`.
"""

import dataclasses

import pytest

from repro.ultrascalar import (
    IdealMemory,
    ProcessorConfig,
    ProcessorResult,
    make_hybrid,
    make_ultrascalar1,
    make_ultrascalar2,
)
from repro.workloads import fibonacci


def _run_once(kind: str) -> ProcessorResult:
    workload = fibonacci(8)
    config = ProcessorConfig(window_size=16, fetch_width=16)
    memory = IdealMemory()
    memory.load_image(workload.memory_image)
    if kind == "us1":
        processor = make_ultrascalar1(
            workload.program, config, memory=memory,
            initial_registers=workload.registers_for(),
        )
    elif kind == "us2":
        processor = make_ultrascalar2(
            workload.program, config, memory=memory,
            initial_registers=workload.registers_for(),
        )
    else:
        processor = make_hybrid(
            workload.program, 4, config, memory=memory,
            initial_registers=workload.registers_for(),
        )
    return processor.run()


@pytest.mark.parametrize("kind", ["us1", "us2", "hybrid"])
def test_processor_result_bit_identical(kind):
    first = _run_once(kind)
    second = _run_once(kind)
    assert first.cycles == second.cycles
    assert first.registers == second.registers
    assert first.memory == second.memory
    assert first.timings == second.timings
    assert first.committed == second.committed
    # and everything else, in one sweep
    assert dataclasses.asdict(first) == dataclasses.asdict(second)
