"""The linear-gate-delay multiplexer ring of the paper's Figure 1.

One ring per logical register: each station's multiplexer either inserts
its own (value, ready) pair — when its *modified* bit is set — or passes
along its predecessor's output.  The netlist is genuinely cyclic (a
combinational loop); the loop is logically cut wherever a modified bit
is set, and the oldest station always sets all of its modified bits, so
the event-driven simulator reaches the unique fixed point.  Settle time
grows as Θ(n), which is exactly the scalability problem the CSPP tree
(:class:`repro.circuits.cspp.CsppTree`) solves.
"""

from __future__ import annotations

from typing import Sequence

from repro.circuits.netlist import Net, Netlist, SimulationResult


class MuxRing:
    """A cyclic ring of multiplexers over *n* stations, payload *width* bits.

    Station *i*'s output is ``modified[i] ? value[i] : output[i-1]``
    (indices mod *n*).  The value *received* by station *i* — what its
    register file latches — is the output of station *i-1*, i.e. the
    nearest preceding writer's value.
    """

    def __init__(self, n: int, width: int = 1, name: str = "muxring"):
        if n < 1:
            raise ValueError("need at least one station")
        self.n = n
        self.width = width
        self.netlist = Netlist(name=f"{name}(n={n})")
        nl = self.netlist
        self.values: list[list[Net]] = [
            [nl.add_input(f"{name}_x{i}[{b}]") for b in range(width)] for i in range(n)
        ]
        self.modified: list[Net] = [nl.add_input(f"{name}_m{i}") for i in range(n)]

        # Create the mux outputs first (they form a cycle), then wire them.
        # A MUX gate needs its inputs at construction time, so we build the
        # ring by introducing each mux with a placeholder feedback input and
        # patching afterwards via a BUF stage:
        #   out[i] = MUX(m[i], x[i], prev[i]) where prev[i] = out[i-1]
        # We first create BUF nets prev[i] driven later.
        self.ring_out: list[list[Net]] = [[None] * width for _ in range(n)]  # type: ignore[list-item]

        # Pass 1: feedback buffers (their drivers are patched in pass 2).
        feedback: list[list[Net]] = []
        for i in range(n):
            feedback.append([nl.add_input(f"{name}_fb{i}[{b}]") for b in range(width)])

        # Pass 2: muxes using the feedback nets.
        for i in range(n):
            for b in range(width):
                self.ring_out[i][b] = nl.mux(
                    self.modified[i], self.values[i][b], feedback[i][b],
                    name=f"{name}_out{i}[{b}]",
                )

        # Pass 3: close the ring by redirecting each feedback net to be
        # driven by the previous station's output through a BUF gate.
        # We cannot re-drive an input net, so instead rebuild: replace each
        # feedback input by making the mux read the previous output via the
        # fanout lists directly.
        for i in range(n):
            prev = (i - 1) % n
            for b in range(width):
                fb_net = feedback[i][b]
                src_net = self.ring_out[prev][b]
                for gate in fb_net.fanout:
                    gate.inputs = tuple(src_net if net is fb_net else net for net in gate.inputs)
                    src_net.fanout.append(gate)
                fb_net.fanout.clear()
                nl.inputs.remove(fb_net)

        for i in range(n):
            for b in range(width):
                nl.mark_output(f"{name}_y{i}[{b}]", self.ring_out[i][b])

    @property
    def gate_count(self) -> int:
        """Number of gates (one mux per station per bit)."""
        return self.netlist.gate_count

    def simulate(self, xs: Sequence[int], modified: Sequence[bool]) -> SimulationResult:
        """Run the event-driven simulator; requires >= 1 modified bit."""
        if len(xs) != self.n or len(modified) != self.n:
            raise ValueError(f"expected {self.n} inputs")
        if not any(modified):
            raise ValueError("mux ring requires at least one modified bit to settle")
        assignment: dict[Net, bool] = {}
        for i in range(self.n):
            for b, net in enumerate(self.values[i]):
                assignment[net] = bool((xs[i] >> b) & 1)
            assignment[self.modified[i]] = bool(modified[i])
        return self.netlist.simulate(assignment)

    def evaluate(self, xs: Sequence[int], modified: Sequence[bool]) -> list[int]:
        """Settled *incoming* value at each station (previous station's output)."""
        result = self.simulate(xs, modified)
        outs = []
        for i in range(self.n):
            prev = (i - 1) % self.n
            value = 0
            for b, net in enumerate(self.ring_out[prev]):
                if result.value_of(net):
                    value |= 1 << b
            outs.append(value)
        return outs

    def settle_time(self, xs: Sequence[int], modified: Sequence[bool]) -> int:
        """Settle time in gate delays for the given inputs."""
        return self.simulate(xs, modified).settle_time
