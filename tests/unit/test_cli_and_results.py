"""Unit tests for the CLI entry point and the result/timing helpers."""

import json

import pytest

from repro.__main__ import EXPERIMENTS, main
from repro.isa import Instruction, Opcode
from repro.isa.registers import MachineSpec
from repro.runner.registry import ExperimentSpec
from repro.ultrascalar import IdealMemory, ProcessorConfig, make_ultrascalar1
from repro.workloads import paper_sequence


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "E10" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "Experiments:" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["bogus"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_single_experiment_runs(self, capsys):
        assert main(["fig12"]) == 0
        assert "density ratio" in capsys.readouterr().out

    def test_registry_is_complete(self):
        assert len(EXPERIMENTS) >= 12
        for title, report in EXPERIMENTS.values():
            assert callable(report)


class TestRunnerCli:
    def test_jobs_flag_accepted(self, capsys, tmp_path):
        assert main(["fig12", "--jobs", "2", "--cache-dir", str(tmp_path / "c")]) == 0
        assert "density ratio" in capsys.readouterr().out

    def test_cache_dir_roundtrip_is_byte_identical(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main(["fig12", "--cache-dir", str(cache_dir)]) == 0
        first = capsys.readouterr().out
        assert list(cache_dir.glob("fig12-*.json")), "result not cached"
        assert main(["fig12", "--cache-dir", str(cache_dir)]) == 0
        assert capsys.readouterr().out == first

    def test_json_artifact_reports_cache_hits(self, capsys, tmp_path):
        artifact = tmp_path / "run.json"
        cache = str(tmp_path / "c")
        assert main(["fig12", "--cache-dir", cache, "--json", str(artifact)]) == 0
        data = json.loads(artifact.read_text(encoding="utf-8"))
        assert data["schema"] == "repro-runner/2"
        [result] = data["results"]
        assert result["experiment"] == "fig12" and result["status"] == "ok"
        assert result["cache_hit"] is False
        assert main(["fig12", "--cache-dir", cache, "--json", str(artifact)]) == 0
        [warm] = json.loads(artifact.read_text(encoding="utf-8"))["results"]
        assert warm["cache_hit"] is True
        assert warm["stats"] is None  # hits replay text; no counters
        assert warm["output_sha256"] == result["output_sha256"]

    def test_no_cache_writes_nothing(self, capsys, tmp_path):
        cache_dir = tmp_path / "c"
        assert main(["fig12", "--no-cache", "--cache-dir", str(cache_dir)]) == 0
        assert not cache_dir.exists()

    def test_unknown_flag_exits_2(self, capsys):
        assert main(["fig12", "--bogus"]) == 2

    def test_detailed_list_flag(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "Registered experiments:" in out
        assert "repro.experiments.fig3_timing" in out
        assert "sweep point(s):" in out

    def test_unknown_experiment_suggests_close_matches(self, capsys):
        assert main(["figg3"]) == 2
        err = capsys.readouterr().err
        assert "did you mean" in err and "fig3" in err

    def test_json_artifact_carries_stats(self, capsys, tmp_path):
        artifact = tmp_path / "run.json"
        assert main(["fig3", "--no-cache", "--json", str(artifact)]) == 0
        [result] = json.loads(artifact.read_text(encoding="utf-8"))["results"]
        stats = result["stats"]
        assert stats and stats["commit.instructions"] > 0
        from repro.runner.artifacts import validate_artifact

        assert validate_artifact(json.loads(artifact.read_text(encoding="utf-8"))) == []

    def test_trace_flag_writes_valid_chrome_trace(self, capsys, tmp_path):
        trace = tmp_path / "run.trace.json"
        assert main(["fig3", "--no-cache", "--trace", str(trace)]) == 0
        from repro.telemetry.chrome import validate_chrome_trace

        document = json.loads(trace.read_text(encoding="utf-8"))
        assert validate_chrome_trace(document) == []
        jobs = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert jobs and jobs[0]["name"].startswith("fig3")
        assert "stats" in jobs[0]["args"]

    def test_sweep_point_validation_names_offender(self, monkeypatch):
        from repro.runner import _selftest
        from repro.runner.registry import ExperimentSpec, SweepPointError

        monkeypatch.setattr(
            _selftest, "SWEEP_POINTS", [{"bogus_kw": 1}], raising=False
        )
        spec = ExperimentSpec("st", "selftest", "repro.runner._selftest", "ok")
        with pytest.raises(SweepPointError, match="repro.runner._selftest.*bogus_kw"):
            spec.sweep_points()

    def test_all_isolates_failures_and_returns_nonzero(self, capsys, monkeypatch):
        import repro.__main__ as cli

        fake = {
            "good": ExperimentSpec("good", "EX1 — good", "repro.runner._selftest", "ok"),
            "bad": ExperimentSpec("bad", "EX2 — bad", "repro.runner._selftest", "boom"),
            "tail": ExperimentSpec("tail", "EX3 — tail", "repro.runner._selftest", "ok"),
        }
        monkeypatch.setattr(cli, "REGISTRY", fake)
        assert main(["all", "--no-cache", "--retries", "0"]) == 1
        captured = capsys.readouterr()
        # the crash in 'bad' did not abort the experiments after it
        assert "EX1 — good" in captured.out and "EX3 — tail" in captured.out
        assert "experiment 'bad' failed" in captured.err
        assert "RuntimeError: boom" in captured.err


class TestTimingDiagram:
    def run_paper(self):
        w = paper_sequence()
        config = ProcessorConfig(window_size=9, fetch_width=9)
        return make_ultrascalar1(
            w.program, config, memory=IdealMemory(), initial_registers=w.registers_for()
        ).run()

    def test_diagram_has_one_row_per_instruction(self):
        result = self.run_paper()
        lines = result.timing_diagram().splitlines()
        assert len(lines) == len(result.timings) + 1  # plus the axis

    def test_diagram_bars_align_with_issue_cycles(self):
        result = self.run_paper()
        lines = result.timing_diagram().splitlines()
        div_line = next(ln for ln in lines if ln.startswith("div"))
        bar = div_line.split("|")[1]
        assert bar.startswith("#")       # issues at cycle 0
        assert bar.count("#") == 10      # ten cycles of divide

    def test_empty_result_diagram(self):
        from repro.ultrascalar.processor import ProcessorResult

        empty = ProcessorResult(
            cycles=0, committed=[], registers=[], memory={}, timings=[], halted=False
        )
        assert "(no instructions)" in empty.timing_diagram()

    def test_execute_span(self):
        result = self.run_paper()
        spans = [t.execute_span for t in result.timings]
        for (start, end), t in zip(spans, result.timings):
            assert start == t.issue_cycle
            assert end == t.complete_cycle + 1


class TestSpecValidation:
    def test_machine_spec_rejects_nonsense(self):
        with pytest.raises(ValueError):
            MachineSpec(num_registers=0)
        with pytest.raises(ValueError):
            MachineSpec(word_bits=0)

    def test_machine_spec_properties(self):
        spec = MachineSpec(num_registers=16, word_bits=8)
        assert spec.L == 16
        assert spec.register_datapath_bits == 9
        with pytest.raises(ValueError):
            spec.validate_register(16)

    def test_program_rejects_bad_register(self):
        from repro.isa import Program

        with pytest.raises(ValueError, match="out of range"):
            Program.from_instructions(
                [Instruction(Opcode.ADD, rd=50, rs1=0, rs2=0)],
                MachineSpec(num_registers=32),
            )

    def test_program_rejects_bad_target(self):
        from repro.isa import Program

        with pytest.raises(ValueError, match="target"):
            Program.from_instructions(
                [Instruction(Opcode.J, target=99), Instruction(Opcode.HALT)]
            )
