"""Differential execution: one program, every backend, one verdict.

:func:`run_differential` executes a program through all engine backends
— the Ultrascalar I ring, the Ultrascalar II batch, the hybrid, the
idealized dataflow baseline, and the NumPy vector fast path where the
program qualifies — and cross-checks each against the architectural
oracle (:mod:`repro.verify.oracle`) on final registers, final memory,
the committed instruction stream, and the halt flag.

It also enforces the paper's ILP-equivalence claim as an executable
invariant: for a wrap-around-free batch (window at least the dynamic
instruction count, so no design ever refills a station), all scalable
designs commit in the identical order and therefore take identical
cycle counts — "the three processors all implement identical
instruction sets, with identical scheduling policies".  For branch-free
programs the idealized dataflow schedule must match cycle-for-cycle as
well (Paper §2, Figure 3).

Telemetry is reused for triage: when a tracer session is active (e.g.
under ``--json``), per-design counters are collected so a divergence
report can show *where* the designs' executions differed, not just that
they did.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import build_processor
from repro.baseline.dataflow import dataflow_schedule
from repro.isa.program import Program
from repro.telemetry.tracer import CountingTracer, diff_counters
from repro.ultrascalar import IdealMemory, ProcessorConfig
from repro.ultrascalar.vector_engine import _SUPPORTED as _VECTOR_OPS
from repro.ultrascalar.vector_engine import VectorRingEngine
from repro.verify.invariants import InvariantChecker, InvariantViolation
from repro.verify.oracle import OracleResult, commit_stream, run_oracle

#: backends run_differential knows how to drive
DESIGNS = ("us1", "us2", "hybrid", "dataflow", "vector")

#: designs that model the full engine (registers/memory/commit stream);
#: "dataflow" is a schedule-only reference and "vector" a fast path
ENGINE_DESIGNS = ("us1", "us2", "hybrid")


@dataclass(frozen=True)
class Divergence:
    """One observed disagreement between a design and the reference."""

    design: str
    field: str
    detail: str


@dataclass
class DiffReport:
    """Outcome of one differential run."""

    window: int
    designs: tuple[str, ...]
    oracle: OracleResult
    cycles: dict[str, int] = field(default_factory=dict)
    divergences: list[Divergence] = field(default_factory=list)
    invariant_checks: int = 0
    #: per-design telemetry counters, for divergence triage
    stats: dict[str, dict[str, int]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every design agreed with the reference."""
        return not self.divergences

    def triage(self) -> str:
        """Human-readable counter deltas between diverging designs."""
        if self.ok or len(self.stats) < 2:
            return ""
        names = sorted(self.stats)
        base = names[0]
        lines = []
        for other in names[1:]:
            for counter, (a, b) in diff_counters(self.stats[base], self.stats[other]).items():
                lines.append(f"{counter}: {base}={a} {other}={b}")
        return "\n".join(lines)


def vector_supported(program: Program) -> bool:
    """True when the NumPy fast path can execute *program*."""
    return all(inst.op in _VECTOR_OPS for inst in program)


def _first_mismatch(got: list, want: list) -> str:
    for index, (g, w) in enumerate(zip(got, want)):
        if g != w:
            return f"first mismatch at dynamic index {index}: got {g}, want {w}"
    return f"length mismatch: got {len(got)}, want {len(want)}"


def _memory_mismatch(got: dict[int, int], want: dict[int, int]) -> str:
    addresses = sorted(set(got) | set(want))
    bad = [a for a in addresses if got.get(a, 0) != want.get(a, 0)]
    if not bad:
        return "address sets differ"
    first = bad[0]
    return (
        f"{len(bad)} address(es) differ, first at {first:#x}: "
        f"got {got.get(first, 0)}, want {want.get(first, 0)}"
    )


def _hybrid_cluster(window: int) -> int:
    """Largest power-of-two cluster <= max(1, window // 4) dividing window."""
    cluster = 1
    while cluster * 2 <= max(1, window // 4) and window % (cluster * 2) == 0:
        cluster *= 2
    return cluster


def run_differential(
    program: Program,
    *,
    initial_registers: list[int] | None = None,
    memory_image: dict[int, int] | None = None,
    window: int | None = None,
    designs: tuple[str, ...] | list[str] = DESIGNS,
    check_invariants: bool = True,
    collect_stats: bool = False,
    max_steps: int = 200_000,
) -> DiffReport:
    """Run *program* through *designs* and cross-check against the oracle.

    ``window=None`` sizes the window to the dynamic instruction count —
    the wrap-around-free configuration under which the ILP-equivalence
    invariant (identical commit order => identical cycle count across
    designs) is additionally enforced.
    """
    unknown = sorted(set(designs) - set(DESIGNS))
    if unknown:
        raise ValueError(f"unknown design(s) {unknown}; expected {DESIGNS}")
    oracle = run_oracle(program, initial_registers, memory_image, max_steps=max_steps)
    dynamic = max(1, oracle.dynamic_length)
    wrap_free = window is None or window >= dynamic
    window = window if window is not None else dynamic
    config = ProcessorConfig(window_size=window, fetch_width=window, max_cycles=max_steps)
    report = DiffReport(window=window, designs=tuple(designs), oracle=oracle)
    checker = InvariantChecker() if check_invariants else None

    def diverge(design: str, field: str, detail: str) -> None:
        report.divergences.append(Divergence(design=design, field=field, detail=detail))

    regs = list(initial_registers or [])
    regs.extend([0] * (program.spec.num_registers - len(regs)))

    for design in designs:
        if design not in ENGINE_DESIGNS:
            continue
        memory = IdealMemory()
        memory.load_image(dict(memory_image or {}))
        tracer = CountingTracer() if collect_stats else None
        processor = build_processor(design, config, cluster_size=_hybrid_cluster(window))
        try:
            result = processor.run(
                program,
                memory=memory,
                initial_registers=list(regs),
                tracer=tracer,
                cycle_hook=checker,
            )
        except InvariantViolation as violation:
            diverge(design, "invariant", str(violation))
            continue
        report.cycles[design] = result.cycles
        if tracer is not None:
            report.stats[design] = tracer.snapshot()
        if result.registers != oracle.registers:
            diverge(design, "registers", _first_mismatch(result.registers, oracle.registers))
        if result.memory != oracle.memory:
            diverge(design, "memory", _memory_mismatch(result.memory, oracle.memory))
        commits = commit_stream(result.committed)
        if commits != oracle.commits:
            diverge(design, "commits", _first_mismatch(commits, oracle.commits))
        if result.halted != oracle.halted:
            diverge(design, "halted", f"got {result.halted}, want {oracle.halted}")

    if "vector" in designs and vector_supported(program):
        engine = VectorRingEngine(
            program,
            window_size=window,
            fetch_width=window,
            initial_registers=list(regs),
        )
        vector = engine.run(max_cycles=max_steps)
        report.cycles["vector"] = vector.cycles
        if vector.registers != oracle.registers:
            diverge("vector", "registers", _first_mismatch(vector.registers, oracle.registers))
        if "us1" in report.cycles and vector.cycles != report.cycles["us1"]:
            diverge("vector", "cycles", f"vector {vector.cycles} != us1 {report.cycles['us1']}")

    if "dataflow" in designs:
        # same configuration tests/integration/test_ilp_equivalence.py
        # proves cycle-exact against us1 at window = dynamic length
        schedule = dataflow_schedule(_oracle_steps(program, regs, memory_image, max_steps))
        report.cycles["dataflow"] = schedule.cycles
        branch_free = not any(inst.is_control for inst in program)
        exact = branch_free and wrap_free and "us1" in report.cycles
        if exact and schedule.cycles != report.cycles["us1"]:
            detail = (
                f"dataflow {schedule.cycles} != us1 {report.cycles['us1']} "
                "on a branch-free wrap-free run"
            )
            diverge("dataflow", "cycles", detail)

    # The paper's ILP-equivalence invariant: with no wrap-around, every
    # scalable design commits the identical stream, so IPC is identical.
    if wrap_free:
        engine_cycles = {
            design: cycles
            for design, cycles in report.cycles.items()
            if design in ENGINE_DESIGNS
        }
        if len(set(engine_cycles.values())) > 1:
            rendered = ", ".join(f"{d}={c}" for d, c in sorted(engine_cycles.items()))
            detail = f"wrap-free cycle counts differ: {rendered}"
            diverge("/".join(sorted(engine_cycles)), "ilp_equivalence", detail)

    if checker is not None:
        report.invariant_checks = checker.checks
    return report


def _oracle_steps(program, regs, memory_image, max_steps):
    """The golden dynamic trace (for the dataflow schedule)."""
    from repro.isa.interpreter import MachineState, run_program

    state = MachineState(list(regs), dict(memory_image or {}))
    return run_program(program, state=state, max_steps=max_steps).trace
