"""Workload generators for the experiments.

Includes the paper's own 8-instruction example (Figures 1 and 3) plus
the synthetic kernels the benchmark harness sweeps: dependency chains
(ILP = 1), independent streams (ILP = n), tunable random dependency
graphs, loop kernels with memory traffic (daxpy, reduction), and
pointer chasing (serial memory).
"""

from repro.workloads.kernels import (
    bubble_sort,
    expected_matmul,
    fib_value,
    fibonacci,
    matmul,
)
from repro.workloads.generators import (
    Workload,
    daxpy_loop,
    dependency_chain,
    independent_ops,
    jump_chain,
    memory_stream,
    paper_sequence,
    parallel_loads,
    spaced_chain,
    store_load_pairs,
    pointer_chase,
    random_ilp,
    reduction_loop,
    repeated_reduction,
)

__all__ = [
    "Workload",
    "bubble_sort",
    "expected_matmul",
    "fib_value",
    "fibonacci",
    "matmul",
    "daxpy_loop",
    "dependency_chain",
    "independent_ops",
    "jump_chain",
    "memory_stream",
    "paper_sequence",
    "parallel_loads",
    "spaced_chain",
    "store_load_pairs",
    "pointer_chase",
    "random_ilp",
    "reduction_loop",
    "repeated_reduction",
]
