"""Explore the VLSI design space: which datapath wins at which (n, L, M)?

Usage::

    python examples/design_space_explorer.py [L]

For the chosen register-file size, sweeps the window size and memory
bandwidth, printing side lengths, wire delays, densities, and the
dominance crossovers — the full Section 7 analysis at your parameters.
"""

import sys

from repro.analysis.crossover import find_crossover, hybrid_advantage, wire_delay_ratio
from repro.network.fattree import bandwidth_power
from repro.util.tables import Table
from repro.vlsi import HybridLayout, Ultrascalar1Layout, Ultrascalar2Layout, optimal_cluster_size


def main(L: int = 32) -> None:
    print(f"=== Design-space exploration at L = {L} ===\n")

    table = Table(
        ["n", "US-I side (cm)", "US-II side (cm)", "Hybrid side (cm)",
         "US-I/US-II wire", "US-I/Hybrid wire"],
        title="Side lengths and wire-delay ratios (register datapath, M=0)",
    )
    for n in (16, 64, 256, 1024, 4096):
        us1 = Ultrascalar1Layout(n, L)
        us2 = Ultrascalar2Layout(n, L)
        cluster = max(1, min(L, n))
        while n % cluster:
            cluster //= 2
        hybrid = HybridLayout(n, cluster, L)
        table.add_row(
            [
                n,
                round(us1.tech.tracks_to_cm(us1.side_length()), 2),
                round(us2.tech.tracks_to_cm(us2.side_length()), 2),
                round(hybrid.tech.tracks_to_cm(hybrid.side_length()), 2),
                round(wire_delay_ratio(n, L), 2),
                round(hybrid_advantage(n, L), 2),
            ]
        )
    print(table.render())

    crossover = find_crossover(L)
    print(f"\nUS-I overtakes US-II (wire delay) at n* = {crossover}"
          f"  — the paper predicts Θ(L²) = Θ({L * L})")

    best, sweep = optimal_cluster_size(4096, L)
    print(f"optimal hybrid cluster at n=4096: C* = {best} (paper: Θ(L) = Θ({L}))")

    bw_table = Table(
        ["M(n)", "US-I side (cm) @ n=4096", "vs M=0"],
        title="Memory bandwidth pressure (the Section 7 'dominating factor')",
    )
    base = Ultrascalar1Layout(4096, L).side_length()
    for exponent in (0.0, 0.5, 0.75, 1.0):
        layout = Ultrascalar1Layout(4096, L, bandwidth=bandwidth_power(exponent))
        side = layout.side_length()
        bw_table.add_row(
            [f"n^{exponent}", round(layout.tech.tracks_to_cm(side), 2), f"{side / base:.2f}x"]
        )
    print()
    print(bw_table.render())


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 32)
