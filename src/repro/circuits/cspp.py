"""Cyclic segmented parallel prefix (CSPP) — Ultrascalar Memo 1.

The CSPP circuit is the paper's workhorse.  One CSPP per logical
register carries register values around the ring of execution stations
(operator ``a (x) b = a``); three more 1-bit CSPPs (operator AND)
sequence instructions: oldest-station tracking, load/store ordering,
and branch commitment (Figure 5).

The tree construction ties the data lines together at the top of an
ordinary segmented-scan tree and discards the top segment bit, making
the prefix wrap around: each station receives the reduction from the
nearest *cyclically* preceding segment position.  The resulting netlist
is cyclic; the event-driven simulator settles it, and settles in
Θ(log n) gate delays because at least one segment bit always cuts the
ring (the oldest station raises its segment).
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

from repro.circuits.netlist import GateKind, Net, Netlist, SimulationResult
from repro.circuits.prefix import (
    ScanOp,
    AndOp,
    CopyOp,
    _mux_bus,
    cyclic_segmented_scan_reference,
)

T = TypeVar("T")


def cyclic_segmented_scan(
    xs: Sequence[T], segments: Sequence[bool], op: Callable[[T, T], T]
) -> list[T]:
    """Behavioural cyclic segmented scan (see module docs).

    ``out[i]`` reduces the inputs from the nearest cyclically preceding
    segment position (inclusive) through position ``i-1``.
    """
    return cyclic_segmented_scan_reference(xs, segments, op)


def cyclic_segmented_copy(xs: Sequence[T], segments: Sequence[bool]) -> list[T]:
    """The register-datapath CSPP: each output is the nearest preceding writer's value."""
    return cyclic_segmented_scan(xs, segments, lambda a, b: a)


def cyclic_segmented_and(conditions: Sequence[bool], segments: Sequence[bool]) -> list[bool]:
    """The sequencing CSPP (Figure 5): "all earlier stations meet the condition"."""
    return cyclic_segmented_scan(
        [bool(c) for c in conditions], segments, lambda a, b: a and b
    )


class CsppTree:
    """A CSPP tree netlist over *n* positions with payload width *width*.

    Parameters:
        n: number of leaf positions (execution stations).
        op: the scan operator (:class:`CopyOp` for register datapaths,
            :class:`AndOp` for sequencing circuits).
        radix: arity of the tree (2 = binary as in the paper's figures;
            4 matches the H-tree floorplan's 4-way recursion).

    The constructed netlist is cyclic (the root's summary re-enters as
    the root's incoming prefix).  Use :meth:`evaluate` to compute outputs
    and measure settle time.
    """

    def __init__(self, n: int, op: ScanOp | None = None, radix: int = 2, name: str = "cspp"):
        if n < 1:
            raise ValueError("need at least one position")
        if radix < 2:
            raise ValueError("radix must be >= 2")
        self.n = n
        self.op = op or CopyOp(1)
        self.radix = radix
        self.netlist = Netlist(name=f"{name}(n={n})")
        nl = self.netlist
        self.values: list[list[Net]] = [
            [nl.add_input(f"{name}_x{i}[{b}]") for b in range(self.op.width)] for i in range(n)
        ]
        self.segments: list[Net] = [nl.add_input(f"{name}_s{i}") for i in range(n)]
        self.outputs: list[list[Net]] = [None] * n  # type: ignore[list-item]

        summaries: dict[tuple[int, int], tuple[list[Net], Net]] = {}

        def children(lo: int, hi: int) -> list[tuple[int, int]]:
            """Split [lo, hi) into up to `radix` contiguous chunks."""
            count = hi - lo
            if count <= 1:
                return []
            chunk = max(1, (count + self.radix - 1) // self.radix)
            spans = []
            start = lo
            while start < hi:
                end = min(start + chunk, hi)
                spans.append((start, end))
                start = end
            return spans

        def up(lo: int, hi: int) -> tuple[list[Net], Net]:
            if (lo, hi) in summaries:
                return summaries[(lo, hi)]
            if hi - lo == 1:
                summary = (self.values[lo], self.segments[lo])
            else:
                spans = children(lo, hi)
                v_acc, s_acc = up(*spans[0])
                for span in spans[1:]:
                    v_r, s_r = up(*span)
                    combined = self.op.combine(nl, v_acc, v_r)
                    v_acc = _mux_bus(nl, s_r, v_r, combined)
                    s_acc = nl.add_gate(GateKind.OR, s_acc, s_r)
                summary = (v_acc, s_acc)
            summaries[(lo, hi)] = summary
            return summary

        root_v, _root_s = up(0, n)

        def down(lo: int, hi: int, incoming: list[Net]) -> None:
            if hi - lo == 1:
                self.outputs[lo] = incoming
                return
            spans = children(lo, hi)
            prefix = incoming
            for k, span in enumerate(spans):
                down(*span, prefix)
                if k + 1 < len(spans):
                    v_c, s_c = up(*span)
                    combined = self.op.combine(nl, prefix, v_c)
                    prefix = _mux_bus(nl, s_c, v_c, combined)

        # Cyclic: the whole-ring summary is the root's incoming prefix
        # ("tying together the data lines at the top of the tree and
        # discarding the top segment bit").
        down(0, n, root_v)

        for i, out in enumerate(self.outputs):
            for b, net in enumerate(out):
                nl.mark_output(f"{name}_y{i}[{b}]", net)

    @property
    def gate_count(self) -> int:
        """Number of gates in the constructed netlist."""
        return self.netlist.gate_count

    def _assignments(self, xs: Sequence[int], segments: Sequence[bool]) -> dict[Net, bool]:
        if len(xs) != self.n or len(segments) != self.n:
            raise ValueError(f"expected {self.n} inputs")
        if not any(segments):
            raise ValueError("CSPP requires at least one segment bit")
        assignment: dict[Net, bool] = {}
        for i in range(self.n):
            for b, net in enumerate(self.values[i]):
                assignment[net] = bool((xs[i] >> b) & 1)
            assignment[self.segments[i]] = bool(segments[i])
        return assignment

    def simulate(self, xs: Sequence[int], segments: Sequence[bool]) -> SimulationResult:
        """Run the event-driven simulator on the given inputs."""
        return self.netlist.simulate(self._assignments(xs, segments))

    def evaluate(self, xs: Sequence[int], segments: Sequence[bool]) -> list[int]:
        """Settled output values, one integer per position."""
        result = self.simulate(xs, segments)
        outs = []
        for nets in self.outputs:
            value = 0
            for b, net in enumerate(nets):
                if result.value_of(net):
                    value |= 1 << b
            outs.append(value)
        return outs

    def settle_time(self, xs: Sequence[int], segments: Sequence[bool]) -> int:
        """Settle time (gate delays) for the given inputs."""
        return self.simulate(xs, segments).settle_time


def build_and_cspp(n: int, radix: int = 2) -> CsppTree:
    """A 1-bit AND-operator CSPP tree (the Figure 5 sequencing circuit)."""
    return CsppTree(n, op=AndOp(), radix=radix, name="cspp_and")


def build_copy_cspp(n: int, width: int = 1, radix: int = 2) -> CsppTree:
    """A copy-operator CSPP tree carrying *width*-bit payloads (register datapath)."""
    return CsppTree(n, op=CopyOp(width), radix=radix, name="cspp_copy")
