"""Shared utilities: deterministic RNG handling, bit operations, tables.

Everything in the repository that needs randomness goes through
:func:`repro.util.rng.make_rng` so that experiments and tests are
reproducible from a single seed.
"""

from repro.util.bitops import (
    WORD_BITS,
    WORD_MASK,
    sign_extend,
    to_signed,
    to_unsigned,
)
from repro.util.rng import make_rng
from repro.util.tables import Table, format_float, format_ratio

__all__ = [
    "WORD_BITS",
    "WORD_MASK",
    "sign_extend",
    "to_signed",
    "to_unsigned",
    "make_rng",
    "Table",
    "format_float",
    "format_ratio",
]
