"""Unit tests for segmented scans, CSPP trees, mux rings, and fan-out trees."""

import pytest

from repro.circuits.cspp import (
    CsppTree,
    build_and_cspp,
    build_copy_cspp,
    cyclic_segmented_and,
    cyclic_segmented_copy,
    cyclic_segmented_scan,
)
from repro.circuits.fanout import build_fanout_tree
from repro.circuits.mux_ring import MuxRing
from repro.circuits.netlist import Netlist
from repro.circuits.prefix import (
    AndOp,
    CopyOp,
    assign_scan_inputs,
    build_linear_scan,
    build_tree_scan,
    cyclic_nearest_preceding_writer,
    nearest_preceding_writer,
    read_scan_outputs,
    segmented_scan,
)


class TestSegmentedScanSemantics:
    def test_no_segments_accumulates_from_initial(self):
        ys = segmented_scan([1, 2, 3], [False] * 3, lambda a, b: a + b, initial=10)
        assert ys == [10, 11, 13]

    def test_segment_restarts_scan(self):
        ys = segmented_scan([1, 2, 3, 4], [False, True, False, False], lambda a, b: a + b, 0)
        assert ys == [0, 1, 2, 5]

    def test_copy_operator_gives_nearest_writer(self):
        ys = segmented_scan(
            ["a", "b", "c", "d"], [True, False, True, False], lambda a, b: a, "init"
        )
        assert ys == ["init", "a", "a", "c"]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            segmented_scan([1], [True, False], lambda a, b: a, 0)

    def test_paper_figure5_and_example(self):
        # Figure 5: station 6 oldest (segment); 6,7,0,1,3 met the condition;
        # output high to stations 7,0,1,2.
        conditions = [True, True, False, True, False, False, True, True]
        segments = [False] * 8
        segments[6] = True
        out = cyclic_segmented_and(conditions, segments)
        high = {i for i in range(8) if out[i]}
        assert high == {7, 0, 1, 2}


class TestCyclicScan:
    def test_requires_a_segment(self):
        with pytest.raises(ValueError):
            cyclic_segmented_copy([1, 2], [False, False])

    def test_wraps_around(self):
        # only station 2 writes; everyone receives its value
        ys = cyclic_segmented_copy([10, 20, 30, 40], [False, False, True, False])
        assert ys == [30, 30, 30, 30]

    def test_multiple_writers(self):
        ys = cyclic_segmented_copy([10, 20, 30, 40], [True, False, True, False])
        assert ys == [30, 10, 10, 30]

    def test_all_segments_shift_by_one(self):
        ys = cyclic_segmented_copy([1, 2, 3, 4], [True] * 4)
        assert ys == [4, 1, 2, 3]

    def test_generic_operator(self):
        # single segment at index 1: every scan starts at x[1]=2 and wraps
        ys = cyclic_segmented_scan([1, 2, 3, 4], [False, True, False, False], lambda a, b: a + b)
        assert ys == [2 + 3 + 4, 2 + 3 + 4 + 1, 2, 2 + 3]

    def test_single_position(self):
        assert cyclic_segmented_copy([7], [True]) == [7]


class TestNearestWriter:
    def test_noncyclic(self):
        assert nearest_preceding_writer([False, True, False, True]) == [None, None, 1, 1]

    def test_cyclic(self):
        assert cyclic_nearest_preceding_writer([False, True, False, True]) == [3, 3, 1, 1]

    def test_cyclic_single_writer(self):
        assert cyclic_nearest_preceding_writer([False, False, True]) == [2, 2, 2]

    def test_cyclic_requires_writer(self):
        with pytest.raises(ValueError):
            cyclic_nearest_preceding_writer([False, False])


class TestScanNetlists:
    @pytest.mark.parametrize("builder", [build_linear_scan, build_tree_scan])
    def test_and_scan_matches_reference(self, builder):
        nl = Netlist()
        ports = builder(nl, 8, AndOp())
        xs = [1, 1, 0, 1, 1, 1, 0, 1]
        segs = [True, False, False, True, False, False, False, False]
        ref = segmented_scan([bool(x) for x in xs], segs, lambda a, b: a and b, True)
        result = nl.simulate(assign_scan_inputs(ports, xs, segs, initial=1))
        assert [bool(v) for v in read_scan_outputs(ports, result)] == ref

    @pytest.mark.parametrize("builder", [build_linear_scan, build_tree_scan])
    def test_copy_scan_matches_reference(self, builder):
        nl = Netlist()
        ports = builder(nl, 6, CopyOp(4))
        xs = [3, 9, 12, 5, 7, 1]
        segs = [False, True, False, False, True, False]
        ref = segmented_scan(xs, segs, lambda a, b: a, 15)
        result = nl.simulate(assign_scan_inputs(ports, xs, segs, initial=15))
        assert read_scan_outputs(ports, result) == ref

    def test_linear_scan_depth_grows_linearly(self):
        depths = []
        for n in (8, 16, 32):
            nl = Netlist()
            build_linear_scan(nl, n, CopyOp(1))
            depths.append(nl.topological_depth())
        assert depths[1] - depths[0] == 8
        assert depths[2] - depths[1] == 16

    def test_tree_scan_depth_grows_logarithmically(self):
        depths = []
        for n in (8, 16, 32, 64):
            nl = Netlist()
            build_tree_scan(nl, n, CopyOp(1))
            depths.append(nl.topological_depth())
        diffs = [b - a for a, b in zip(depths, depths[1:])]
        assert all(d <= 3 for d in diffs)


class TestCsppTree:
    def test_matches_reference_copy(self):
        tree = build_copy_cspp(8, width=4)
        xs = [3, 9, 12, 5, 7, 1, 8, 2]
        segs = [False, True, False, False, True, False, False, False]
        assert tree.evaluate(xs, segs) == cyclic_segmented_copy(xs, segs)

    def test_matches_reference_and(self):
        tree = build_and_cspp(8)
        cs = [True, True, False, True, True, True, True, False]
        segs = [False, False, False, False, False, True, False, False]
        got = [bool(v) for v in tree.evaluate([int(c) for c in cs], segs)]
        assert got == cyclic_segmented_and(cs, segs)

    def test_non_power_of_two(self):
        tree = build_copy_cspp(5, width=2)
        xs = [1, 2, 3, 0, 1]
        segs = [False, False, True, False, True]
        assert tree.evaluate(xs, segs) == cyclic_segmented_copy(xs, segs)

    def test_radix_four_matches_binary(self):
        xs = [5, 1, 2, 6, 7, 0, 4, 3]
        segs = [True, False, False, True, False, False, True, False]
        binary = build_copy_cspp(8, width=3, radix=2)
        quad = build_copy_cspp(8, width=3, radix=4)
        assert binary.evaluate(xs, segs) == quad.evaluate(xs, segs)

    def test_requires_segment_bit(self):
        tree = build_copy_cspp(4)
        with pytest.raises(ValueError):
            tree.evaluate([0] * 4, [False] * 4)

    def test_input_length_checked(self):
        tree = build_copy_cspp(4)
        with pytest.raises(ValueError):
            tree.evaluate([0] * 3, [True] * 3)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CsppTree(0)
        with pytest.raises(ValueError):
            CsppTree(4, radix=1)

    def test_netlist_is_acyclic_dag(self):
        # The "cycle" is semantic (ring order); the tree netlist is a DAG.
        tree = build_copy_cspp(8)
        assert not tree.netlist.is_cyclic()

    def test_settle_time_logarithmic(self):
        times = []
        for n in (8, 16, 32, 64):
            tree = build_copy_cspp(n)
            times.append(tree.settle_time([1] * n, [True] + [False] * (n - 1)))
        diffs = [b - a for a, b in zip(times, times[1:])]
        assert all(d <= 3 for d in diffs), times


class TestMuxRing:
    def test_matches_reference(self):
        ring = MuxRing(8, width=4)
        xs = [3, 9, 12, 5, 7, 1, 8, 2]
        segs = [False, True, False, False, True, False, False, False]
        assert ring.evaluate(xs, segs) == cyclic_segmented_copy(xs, segs)

    def test_is_cyclic_netlist(self):
        assert MuxRing(4).netlist.is_cyclic()

    def test_settle_time_linear(self):
        times = []
        for n in (8, 16, 32):
            ring = MuxRing(n)
            times.append(ring.settle_time([1] * n, [True] + [False] * (n - 1)))
        assert times == [8, 16, 32]

    def test_requires_modified_bit(self):
        ring = MuxRing(4)
        with pytest.raises(ValueError):
            ring.evaluate([0] * 4, [False] * 4)

    def test_gate_count(self):
        assert MuxRing(8, width=4).gate_count == 32  # one mux per station per bit


class TestFanoutTree:
    def test_single_copy_is_source(self):
        nl = Netlist()
        src = nl.add_input("s")
        tree = build_fanout_tree(nl, src, 1)
        assert tree.leaves == (src,)
        assert tree.depth == 0

    @pytest.mark.parametrize("copies", [2, 3, 7, 8, 17, 64])
    def test_leaf_count_and_depth(self, copies):
        import math

        nl = Netlist()
        src = nl.add_input("s")
        tree = build_fanout_tree(nl, src, copies)
        assert len(tree.leaves) == copies
        assert tree.depth == math.ceil(math.log2(copies))

    def test_all_leaves_carry_source_value(self):
        nl = Netlist()
        src = nl.add_input("s")
        tree = build_fanout_tree(nl, src, 13)
        result = nl.simulate({src: True})
        assert all(result.value_of(leaf) for leaf in tree.leaves)

    def test_radix_four_is_shallower(self):
        nl = Netlist()
        src = nl.add_input("s")
        assert build_fanout_tree(nl, src, 64, radix=4).depth == 3

    def test_rejects_bad_args(self):
        nl = Netlist()
        src = nl.add_input("s")
        with pytest.raises(ValueError):
            build_fanout_tree(nl, src, 0)
        with pytest.raises(ValueError):
            build_fanout_tree(nl, src, 4, radix=1)
