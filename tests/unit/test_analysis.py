"""Unit tests for the analysis package (regimes, recurrences, Figure 11,
fitting, crossover, cluster, 3-D)."""

import math

import pytest

from repro.analysis.asymptotics import FIGURE11, evaluate_cell, figure11_table, lookup
from repro.analysis.cluster import analytic_optimal_cluster, closed_form_sweep, cluster_is_theta_L
from repro.analysis.crossover import find_crossover, hybrid_advantage, wire_delay_ratio
from repro.analysis.fitting import fit_exponent, fit_loglog, is_logarithmic
from repro.analysis.recurrences import (
    optimal_cluster_closed_form,
    solve_hybrid_recurrence,
    solve_side_recurrence,
    u_closed_form,
    x_closed_form,
)
from repro.analysis.regimes import Regime, classify_bandwidth, classify_exponent, regularity_holds
from repro.analysis.three_d import lookup as lookup_3d, three_d_table, volume_improvement_2d_to_3d
from repro.network.fattree import bandwidth_constant, bandwidth_linear, bandwidth_power


class TestRegimes:
    @pytest.mark.parametrize(
        "exponent,expected",
        [(0.0, Regime.CASE1), (0.49, Regime.CASE1), (0.5, Regime.CASE2), (0.51, Regime.CASE3), (1.0, Regime.CASE3)],
    )
    def test_classify_exponent(self, exponent, expected):
        assert classify_exponent(exponent) is expected

    def test_classify_bandwidth_functions(self):
        assert classify_bandwidth(bandwidth_constant(5.0)) is Regime.CASE1
        assert classify_bandwidth(bandwidth_power(0.5)) is Regime.CASE2
        assert classify_bandwidth(bandwidth_linear(1.0)) is Regime.CASE3

    def test_regularity(self):
        assert regularity_holds(bandwidth_linear(1.0))       # M(n/4)=M(n)/4 <= M(n)/2
        assert regularity_holds(bandwidth_power(0.75))
        assert not regularity_holds(bandwidth_power(0.25))   # decays too slowly
        assert not regularity_holds(bandwidth_constant(1.0))

    def test_regularity_validation(self):
        with pytest.raises(ValueError):
            regularity_holds(bandwidth_linear(1.0), c=0)


class TestRecurrences:
    def test_side_recurrence_base_case(self):
        assert solve_side_recurrence(1, 32, bandwidth_constant(0.0)) == 32.0

    def test_side_recurrence_expands(self):
        # X(4) = L + M(4) + 2 X(1) = 32 + 0 + 64
        assert solve_side_recurrence(4, 32, lambda n: 0.0) == 96.0

    def test_side_recurrence_sqrt_growth(self):
        x64 = solve_side_recurrence(64, 32, lambda n: 0.0)
        x1024 = solve_side_recurrence(1024, 32, lambda n: 0.0)
        assert x1024 / x64 == pytest.approx(4.0, rel=0.1)

    def test_closed_form_matches_recurrence_growth(self):
        for exponent in (0.0, 0.5, 1.0):
            big, small = 4**9, 4**7
            numeric = solve_side_recurrence(big, 32, bandwidth_power(exponent)) / \
                solve_side_recurrence(small, 32, bandwidth_power(exponent))
            closed = x_closed_form(big, 32, exponent) / x_closed_form(small, 32, exponent)
            assert numeric == pytest.approx(closed, rel=0.25)

    def test_hybrid_recurrence_base(self):
        assert solve_hybrid_recurrence(16, 16, 8, lambda n: 0.0) == 24.0  # C + L

    def test_u_closed_form_minimized_at_L(self):
        values = {c: u_closed_form(4096, c, 32, 0.0) for c in (4, 8, 16, 32, 64, 128, 256)}
        best = min(values, key=values.get)
        assert best == 32

    def test_optimal_cluster_closed_form(self):
        assert optimal_cluster_closed_form(32) == 32.0
        with pytest.raises(ValueError):
            optimal_cluster_closed_form(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            solve_side_recurrence(0, 32, lambda n: 0.0)
        with pytest.raises(ValueError):
            u_closed_form(4, 8, 32, 0.0)


class TestFigure11:
    def test_full_coverage(self):
        # 3 regimes x 4 processors x 4 quantities
        assert len(FIGURE11) == 3 * 4 * 4

    def test_lookup_errors_on_missing(self):
        with pytest.raises(KeyError):
            lookup(Regime.CASE1, "nonexistent", "area")

    def test_gate_delays_match_paper(self):
        n, L = 1024, 32
        assert evaluate_cell(Regime.CASE1, "ultrascalar1", "gate_delay", n, L, 0) == math.log2(n)
        assert evaluate_cell(Regime.CASE1, "ultrascalar2-linear", "gate_delay", n, L, 0) == n + L
        assert evaluate_cell(Regime.CASE1, "hybrid", "gate_delay", n, L, 0) == L + math.log2(n)

    def test_case1_wire_delays(self):
        n, L = 4096, 32
        assert evaluate_cell(Regime.CASE1, "ultrascalar1", "wire_delay", n, L, 0) == 64 * 32
        assert evaluate_cell(Regime.CASE1, "hybrid", "wire_delay", n, L, 0) == math.sqrt(n * L)

    def test_case3_includes_memory_term(self):
        n, L, M = 4096, 32, 10_000
        us1 = evaluate_cell(Regime.CASE3, "ultrascalar1", "wire_delay", n, L, M)
        assert us1 == math.sqrt(n) * L + M

    def test_hybrid_dominates_all_quantities(self):
        n, L = 1 << 18, 32
        for regime in Regime:
            m = {Regime.CASE1: 1, Regime.CASE2: n**0.5, Regime.CASE3: n**0.75}[regime]
            for quantity in ("wire_delay", "total_delay", "area"):
                hybrid = evaluate_cell(regime, "hybrid", quantity, n, L, m)
                us1 = evaluate_cell(regime, "ultrascalar1", quantity, n, L, m)
                us2 = evaluate_cell(regime, "ultrascalar2-linear", quantity, n, L, m)
                assert hybrid <= min(us1, us2) * 1.001

    def test_table_renders_formulas(self):
        text = figure11_table(Regime.CASE2).render()
        assert "Θ(√n (L + log n))" in text
        assert "Θ(n L)" in text


class TestFitting:
    def test_recovers_power_law(self):
        xs = [10, 100, 1000, 10000]
        ys = [3 * x**1.7 for x in xs]
        fit = fit_loglog(xs, ys)
        assert fit.exponent == pytest.approx(1.7, abs=1e-9)
        assert fit.scale == pytest.approx(3.0, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_loglog([1, 2, 4], [2, 4, 8])
        assert fit.predict(8) == pytest.approx(16.0)

    def test_fit_exponent_shortcut(self):
        assert fit_exponent([1, 10], [5, 50]) == pytest.approx(1.0)

    def test_is_logarithmic(self):
        xs = [4, 16, 64, 256, 1024]
        assert is_logarithmic(xs, [math.log2(x) for x in xs])
        assert not is_logarithmic(xs, [x**0.9 for x in xs])

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_loglog([1], [1])
        with pytest.raises(ValueError):
            fit_loglog([1, 2], [1])
        with pytest.raises(ValueError):
            fit_loglog([0, 1], [1, 2])


class TestCrossover:
    def test_crossover_exists_and_scales(self):
        n8 = find_crossover(8)
        n32 = find_crossover(32)
        assert n8 is not None and n32 is not None
        # n* = Theta(L^2): multiplying L by 4 multiplies n* by ~16
        assert n32 / n8 == pytest.approx(16.0, rel=0.1)

    def test_ratio_decreases_with_n(self):
        ratios = [wire_delay_ratio(n, 32) for n in (64, 1024, 16384)]
        assert ratios == sorted(ratios, reverse=True)

    def test_hybrid_advantage_positive_at_scale(self):
        assert hybrid_advantage(16384, 32) > 1.0


class TestCluster:
    def test_analytic_optimum_is_L(self):
        assert analytic_optimal_cluster(64) == 64.0

    def test_closed_form_sweep_u_shaped(self):
        sweep = closed_form_sweep(4096, 32)
        best = min(sweep, key=sweep.get)
        assert sweep[best] < sweep[1]
        assert sweep[best] < sweep[4096]

    def test_cluster_is_theta_L(self):
        assert cluster_is_theta_L(4096, 32)


class TestThreeD:
    def test_bounds_lookup(self):
        bound = lookup_3d("ultrascalar1", "volume")
        assert bound.evaluate(8, 4, 0) == 8 * 4**1.5
        with pytest.raises(KeyError):
            lookup_3d("nope", "volume")

    def test_table_renders(self):
        assert "Θ(n L^(3/2))" in three_d_table().render()

    def test_improvement_is_L_to_quarter(self):
        assert volume_improvement_2d_to_3d(100, 16) == pytest.approx(16**0.25)
        with pytest.raises(ValueError):
            volume_improvement_2d_to_3d(0, 4)
