"""Unit tests for the Figure 2 modified-bit decode logic."""

import math

import pytest

from repro.circuits.decode import build_modified_bit_decoder, evaluate_decoder
from repro.circuits.netlist import Netlist


class TestDecoder:
    @pytest.mark.parametrize("L", [1, 2, 5, 8, 32])
    def test_one_hot_for_every_register(self, L):
        nl = Netlist()
        ports = build_modified_bit_decoder(nl, L)
        for rd in range(L):
            bits = evaluate_decoder(nl, ports, rd, write_enable=True)
            assert bits == [r == rd for r in range(L)]

    def test_enable_gates_everything(self):
        nl = Netlist()
        ports = build_modified_bit_decoder(nl, 8)
        assert evaluate_decoder(nl, ports, 3, write_enable=False) == [False] * 8

    def test_depth_is_loglog(self):
        nl = Netlist()
        build_modified_bit_decoder(nl, 32)
        # NOT/BUF (1) + AND tree over 5 bits (3) + enable AND (1) = 5
        assert nl.topological_depth() <= 2 + math.ceil(math.log2(5)) + 1

    def test_gate_count_linear_in_L(self):
        counts = []
        for L in (8, 16, 32):
            nl = Netlist()
            build_modified_bit_decoder(nl, L)
            counts.append(nl.gate_count)
        assert counts[2] / counts[1] == pytest.approx(counts[1] / counts[0], rel=0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_modified_bit_decoder(Netlist(), 0)


class TestSchedulerCircuitDepth:
    """The Memo-2 scheduler's settle time stays polylogarithmic."""

    def test_settle_time_growth(self):
        from repro.ultrascalar.scheduler import SchedulerCircuit

        times = []
        for n in (4, 8, 16, 32):
            circuit = SchedulerCircuit(n, max(1, n // 4))
            result = circuit.netlist.simulate(
                {**{net: True for net in circuit.requests},
                 **{net: i == 0 for i, net in enumerate(circuit.segments)}}
            )
            times.append(result.settle_time)
        # doubling n adds a bounded number of gate delays (log n levels
        # of log n-bit ripple adders: O(log^2 n) total, far below linear)
        diffs = [b - a for a, b in zip(times, times[1:])]
        assert all(d <= 12 for d in diffs), times
        assert times[-1] < 32 * 2  # decisively sublinear vs a ring scan
