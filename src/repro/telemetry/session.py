"""Process-local tracer session: how counters reach the runner.

Experiments build processors deep inside their ``report()`` functions;
the runner only sees the returned text.  The session is the side
channel: :func:`collecting` installs a tracer as the process-wide
default, and every engine constructed without an explicit ``tracer=``
argument resolves it via :func:`current_tracer`.  The runner's job
wrapper (:mod:`repro.runner.pool`) opens one session per job — in the
worker process when fanned out — and ships the aggregated counters back
with the job result, where they land in the ``--json`` artifact.

Outside a session :func:`current_tracer` returns the shared
:data:`~repro.telemetry.tracer.NULL_TRACER`, so the default path stays
zero-cost and report text stays byte-identical.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.telemetry.tracer import NULL_TRACER, CountingTracer, Tracer

_current: Tracer | None = None


def current_tracer() -> Tracer:
    """The session tracer, or the null tracer when no session is open."""
    return _current if _current is not None else NULL_TRACER


def resolve_tracer(tracer: Tracer | None) -> Tracer:
    """An engine's tracer: the explicit argument, else the session's."""
    return tracer if tracer is not None else current_tracer()


@contextmanager
def collecting(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Install *tracer* (default: a fresh :class:`CountingTracer`) as the
    process-wide default for the duration of the block.

    Sessions nest: the innermost tracer wins, and the previous one is
    restored on exit.
    """
    global _current
    active = tracer if tracer is not None else CountingTracer()
    previous = _current
    _current = active
    try:
        yield active
    finally:
        _current = previous
