"""Cycle-level telemetry for the processor engines.

The engines (:mod:`repro.ultrascalar`, the vector engine, the memory
systems) report what the paper argues about — fetch stalls and refill
behaviour, issue-slot usage and ALU-grant contention, CSPP forwarding
hop distances, memory traffic, window occupancy — to a
:class:`~repro.telemetry.tracer.Tracer`.  The default
:class:`~repro.telemetry.tracer.NullTracer` is free; pass a
:class:`~repro.telemetry.tracer.CountingTracer` to aggregate named
counters into ``ProcessorResult.stats``, or an
:class:`~repro.telemetry.tracer.EventTracer` to additionally capture a
per-instruction timeline exportable to the Chrome trace-event format.

See ``docs/observability.md`` for the counter vocabulary and the
artifact schemas.
"""

from repro.telemetry.chrome import (
    TRACE_SCHEMA,
    build_chrome_trace,
    chrome_event,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.telemetry.session import collecting, current_tracer, resolve_tracer
from repro.telemetry.tracer import (
    NULL_TRACER,
    CountingTracer,
    EventTracer,
    NullTracer,
    TraceEvent,
    Tracer,
    diff_counters,
)

__all__ = [
    "TRACE_SCHEMA",
    "build_chrome_trace",
    "chrome_event",
    "validate_chrome_trace",
    "write_chrome_trace",
    "collecting",
    "current_tracer",
    "resolve_tracer",
    "NULL_TRACER",
    "CountingTracer",
    "EventTracer",
    "NullTracer",
    "TraceEvent",
    "Tracer",
    "diff_counters",
]
