"""The Ultrascalar II register-routing network (Figures 7 and 8).

The network routes each station's arguments from the nearest preceding
writer of the requested register — either an earlier station in the
batch or the initial register file — and produces the batch's outgoing
register values.

Three implementations, all equivalent and property-tested against each
other:

* :func:`route_arguments` — the behavioural reference used by the
  Ultrascalar II processor model.
* :class:`GridNetwork` — the linear-gate-delay netlist of Figure 7:
  per-column comparator + mux chains, settle time Θ(n + L).
* :class:`TreeGridNetwork` — the mesh-of-trees netlist of Figure 8:
  buffer fan-out trees for register numbers and bindings, then a
  segmented *reduction* tree per column ("the tree circuits used here
  are more properly referred to as reduction circuits"), settle time
  Θ(log(n + L)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.circuits.comparator import (
    build_constant_match,
    build_equality_comparator,
    register_number_bits,
)
from repro.circuits.fanout import build_fanout_tree
from repro.circuits.netlist import GateKind, Net, Netlist, SimulationResult


@dataclass(frozen=True)
class RegisterBinding:
    """A (register, value, ready) triple flowing through the datapath."""

    reg: int
    value: int
    ready: bool


@dataclass(frozen=True)
class RoutedArguments:
    """Result of routing one batch through the Ultrascalar II network."""

    #: per station, per read port: (value, ready)
    arguments: list[list[tuple[int, bool]]]
    #: final (value, ready) per logical register after the whole batch
    outgoing: list[tuple[int, bool]]


def route_arguments(
    num_registers: int,
    initial: Sequence[tuple[int, bool]],
    writes: Sequence[RegisterBinding | None],
    reads: Sequence[Sequence[int]],
) -> RoutedArguments:
    """Behavioural reference for the Ultrascalar II network.

    Args:
        num_registers: ``L``.
        initial: the incoming register file, ``initial[r] = (value, ready)``.
        writes: per station, the register binding it produces (or ``None``
            if the instruction writes no register).  A not-yet-computed
            result is a binding with ``ready=False``.
        reads: per station, the register numbers it requests.

    Station *i*'s argument for register *q* comes from the nearest
    preceding station (j < i, maximal j) writing *q*, else from the
    initial register file.  Outgoing register *r* is the last station
    writing *r*, else its initial value.
    """
    if len(initial) != num_registers:
        raise ValueError("initial register file has wrong size")
    if len(writes) != len(reads):
        raise ValueError("writes and reads must align")
    arguments: list[list[tuple[int, bool]]] = []
    current: list[tuple[int, bool]] = list(initial)
    for binding, requested in zip(writes, reads):
        station_args = []
        for q in requested:
            if not 0 <= q < num_registers:
                raise ValueError(f"register r{q} out of range")
            station_args.append(current[q])
        arguments.append(station_args)
        if binding is not None:
            if not 0 <= binding.reg < num_registers:
                raise ValueError(f"register r{binding.reg} out of range")
            current[binding.reg] = (binding.value, binding.ready)
    return RoutedArguments(arguments=arguments, outgoing=current)


class _GridBase:
    """Shared input/output plumbing for the two grid netlists."""

    def __init__(
        self,
        n: int,
        num_registers: int,
        reads_per_station: int = 2,
        value_bits: int = 1,
        name: str = "grid",
    ):
        if n < 1:
            raise ValueError("need at least one station")
        self.n = n
        self.L = num_registers
        self.reads_per_station = reads_per_station
        self.value_bits = value_bits
        self.reg_bits = register_number_bits(num_registers)
        self.netlist = Netlist(name=f"{name}(n={n},L={num_registers})")
        nl = self.netlist

        # Initial register file rows: value bits + ready bit per register.
        self.init_values = [
            [nl.add_input(f"{name}_rf{r}[{b}]") for b in range(value_bits)]
            for r in range(num_registers)
        ]
        self.init_ready = [nl.add_input(f"{name}_rfrdy{r}") for r in range(num_registers)]

        # Station write rows: register number, value, ready, plus a
        # "writes anything" bit (instructions with no destination).
        self.write_reg = [
            [nl.add_input(f"{name}_wr{i}[{b}]") for b in range(self.reg_bits)]
            for i in range(n)
        ]
        self.write_values = [
            [nl.add_input(f"{name}_wv{i}[{b}]") for b in range(value_bits)]
            for i in range(n)
        ]
        self.write_ready = [nl.add_input(f"{name}_wrdy{i}") for i in range(n)]
        self.write_enable = [nl.add_input(f"{name}_wen{i}") for i in range(n)]

        # Station read-request columns: register number per read port.
        self.read_reg = [
            [
                [nl.add_input(f"{name}_rd{i}_{p}[{b}]") for b in range(self.reg_bits)]
                for p in range(reads_per_station)
            ]
            for i in range(n)
        ]

        # Filled by subclasses: per station per port (value nets, ready net),
        # and per register the outgoing (value nets, ready net).
        self.arg_values: list[list[list[Net]]] = []
        self.arg_ready: list[list[Net]] = []
        self.out_values: list[list[Net]] = []
        self.out_ready: list[Net] = []

    # -- shared evaluation helpers -------------------------------------

    def _assignments(
        self,
        initial: Sequence[tuple[int, bool]],
        writes: Sequence[RegisterBinding | None],
        reads: Sequence[Sequence[int]],
    ) -> dict[Net, bool]:
        if len(initial) != self.L or len(writes) != self.n or len(reads) != self.n:
            raise ValueError("input shapes do not match the grid")
        assignment: dict[Net, bool] = {}
        for r, (value, ready) in enumerate(initial):
            for b, net in enumerate(self.init_values[r]):
                assignment[net] = bool((value >> b) & 1)
            assignment[self.init_ready[r]] = bool(ready)
        for i, binding in enumerate(writes):
            reg = binding.reg if binding is not None else 0
            value = binding.value if binding is not None else 0
            ready = binding.ready if binding is not None else False
            enable = binding is not None
            for b, net in enumerate(self.write_reg[i]):
                assignment[net] = bool((reg >> b) & 1)
            for b, net in enumerate(self.write_values[i]):
                assignment[net] = bool((value >> b) & 1)
            assignment[self.write_ready[i]] = bool(ready)
            assignment[self.write_enable[i]] = enable
        for i, requested in enumerate(reads):
            if len(requested) != self.reads_per_station:
                raise ValueError(
                    f"station {i}: expected {self.reads_per_station} read ports"
                )
            for p, q in enumerate(requested):
                for b, net in enumerate(self.read_reg[i][p]):
                    assignment[net] = bool((q >> b) & 1)
        return assignment

    def simulate(
        self,
        initial: Sequence[tuple[int, bool]],
        writes: Sequence[RegisterBinding | None],
        reads: Sequence[Sequence[int]],
    ) -> SimulationResult:
        """Run the event-driven simulator on one batch of inputs."""
        return self.netlist.simulate(self._assignments(initial, writes, reads))

    def evaluate(
        self,
        initial: Sequence[tuple[int, bool]],
        writes: Sequence[RegisterBinding | None],
        reads: Sequence[Sequence[int]],
    ) -> RoutedArguments:
        """Settled routed arguments and outgoing register file."""
        result = self.simulate(initial, writes, reads)

        def read_bus(nets: list[Net]) -> int:
            value = 0
            for b, net in enumerate(nets):
                if result.value_of(net):
                    value |= 1 << b
            return value

        arguments = [
            [
                (read_bus(self.arg_values[i][p]), result.value_of(self.arg_ready[i][p]))
                for p in range(self.reads_per_station)
            ]
            for i in range(self.n)
        ]
        outgoing = [
            (read_bus(self.out_values[r]), result.value_of(self.out_ready[r]))
            for r in range(self.L)
        ]
        return RoutedArguments(arguments=arguments, outgoing=outgoing)

    @property
    def gate_count(self) -> int:
        """Total gates in the constructed netlist."""
        return self.netlist.gate_count

    def settle_time(
        self,
        initial: Sequence[tuple[int, bool]],
        writes: Sequence[RegisterBinding | None],
        reads: Sequence[Sequence[int]],
    ) -> int:
        """Settle time in gate delays for one batch of inputs."""
        return self.simulate(initial, writes, reads).settle_time


class GridNetwork(_GridBase):
    """The linear-gate-delay grid of Figure 7 (Θ(n + L) settle time).

    Each consumer column serially chains a comparator + mux per visible
    row, from the register-file rows upward through station rows.
    """

    def __init__(self, n: int, num_registers: int, reads_per_station: int = 2,
                 value_bits: int = 1):
        super().__init__(n, num_registers, reads_per_station, value_bits, name="grid")
        nl = self.netlist

        def build_column(request: list[Net], visible_stations: int) -> tuple[list[Net], Net]:
            """Chain through regfile rows then station rows < visible_stations."""
            acc_value = [nl.constant(False) for _ in range(self.value_bits)]
            acc_ready = nl.constant(False)
            for r in range(self.L):
                match = build_constant_match(nl, request, r)
                acc_value = [
                    nl.mux(match, self.init_values[r][b], acc_value[b])
                    for b in range(self.value_bits)
                ]
                acc_ready = nl.mux(match, self.init_ready[r], acc_ready)
            for j in range(visible_stations):
                eq = build_equality_comparator(nl, request, self.write_reg[j])
                match = nl.add_gate(GateKind.AND, eq, self.write_enable[j])
                acc_value = [
                    nl.mux(match, self.write_values[j][b], acc_value[b])
                    for b in range(self.value_bits)
                ]
                acc_ready = nl.mux(match, self.write_ready[j], acc_ready)
            return acc_value, acc_ready

        for i in range(self.n):
            station_values, station_ready = [], []
            for p in range(self.reads_per_station):
                value_nets, ready_net = build_column(self.read_reg[i][p], i)
                station_values.append(value_nets)
                station_ready.append(ready_net)
            self.arg_values.append(station_values)
            self.arg_ready.append(station_ready)

        # Outgoing columns: one per register, with a constant request.
        for r in range(self.L):
            request = [
                nl.constant(bool((r >> b) & 1)) for b in range(self.reg_bits)
            ]
            value_nets, ready_net = self._outgoing_column(request, r)
            self.out_values.append(value_nets)
            self.out_ready.append(ready_net)

    def _outgoing_column(self, request: list[Net], reg: int) -> tuple[list[Net], Net]:
        nl = self.netlist
        acc_value = list(self.init_values[reg])
        acc_ready = self.init_ready[reg]
        for j in range(self.n):
            eq = build_equality_comparator(nl, request, self.write_reg[j])
            match = nl.add_gate(GateKind.AND, eq, self.write_enable[j])
            acc_value = [
                nl.mux(match, self.write_values[j][b], acc_value[b])
                for b in range(self.value_bits)
            ]
            acc_ready = nl.mux(match, self.write_ready[j], acc_ready)
        return acc_value, acc_ready


class TreeGridNetwork(_GridBase):
    """The mesh-of-trees grid of Figure 8 (Θ(log(n + L)) settle time).

    Register numbers and bindings fan out through buffer trees; each
    consumer column reduces its matching rows with a balanced segmented
    reduction tree that selects the highest (nearest preceding) match.
    """

    def __init__(self, n: int, num_registers: int, reads_per_station: int = 2,
                 value_bits: int = 1, fanout_radix: int = 2):
        super().__init__(n, num_registers, reads_per_station, value_bits, name="tgrid")
        nl = self.netlist
        consumers = n * reads_per_station + num_registers

        # Fan each station's binding (reg number, value, ready, enable)
        # out to every consumer column through buffer trees.
        def fan(net: Net) -> tuple[Net, ...]:
            return build_fanout_tree(nl, net, consumers, radix=fanout_radix).leaves

        fanned_write_reg = [[fan(bit) for bit in self.write_reg[j]] for j in range(n)]
        fanned_write_val = [[fan(bit) for bit in self.write_values[j]] for j in range(n)]
        fanned_write_rdy = [fan(self.write_ready[j]) for j in range(n)]
        fanned_write_en = [fan(self.write_enable[j]) for j in range(n)]

        def row_ports(j: int, consumer: int):
            """Row j's binding as seen by one consumer column."""
            reg = [fanned_write_reg[j][b][consumer] for b in range(self.reg_bits)]
            val = [fanned_write_val[j][b][consumer] for b in range(self.value_bits)]
            return reg, val, fanned_write_rdy[j][consumer], fanned_write_en[j][consumer]

        def build_column(
            request: list[Net], visible_stations: int, consumer: int,
            reg_if_constant: int | None = None,
        ) -> tuple[list[Net], Net]:
            """Reduction tree over (regfile rows + visible station rows).

            *request* is the raw register-number bus; it is fanned out
            down the column through a buffer tree, one leaf per row that
            compares against it.  When *reg_if_constant* is given (the
            outgoing-register columns), the register-file portion
            collapses to the single known-matching row.
            """
            rf_rows = 0 if reg_if_constant is not None else self.L
            compare_rows = rf_rows + (visible_stations if reg_if_constant is None else 0)
            if compare_rows > 0 and request:
                request_leaves = [
                    build_fanout_tree(nl, bit, compare_rows, radix=fanout_radix).leaves
                    for bit in request
                ]
            else:
                request_leaves = []

            def request_at(row: int) -> list[Net]:
                return [leaves[row] for leaves in request_leaves]

            # Each entry: (value nets, ready net, match net)
            entries: list[tuple[list[Net], Net, Net]] = []
            if reg_if_constant is not None:
                entries.append(
                    (
                        list(self.init_values[reg_if_constant]),
                        self.init_ready[reg_if_constant],
                        nl.constant(True),
                    )
                )
            else:
                # The requested register always matches exactly one
                # register-file row.
                for r in range(self.L):
                    match = build_constant_match(nl, request_at(r), r)
                    entries.append((list(self.init_values[r]), self.init_ready[r], match))
            for j in range(visible_stations):
                reg, val, rdy, en = row_ports(j, consumer)
                if reg_if_constant is not None:
                    eq = build_constant_match(nl, reg, reg_if_constant)
                else:
                    eq = build_equality_comparator(nl, request_at(rf_rows + j), reg)
                match = nl.add_gate(GateKind.AND, eq, en)
                entries.append((val, rdy, match))
            # Balanced reduction selecting the last matching entry.
            while len(entries) > 1:
                nxt = []
                for k in range(0, len(entries) - 1, 2):
                    lv, lr, lm = entries[k]
                    rv, rr, rm = entries[k + 1]
                    value = [nl.mux(rm, rv[b], lv[b]) for b in range(self.value_bits)]
                    ready = nl.mux(rm, rr, lr)
                    match = nl.add_gate(GateKind.OR, lm, rm)
                    nxt.append((value, ready, match))
                if len(entries) % 2:
                    nxt.append(entries[-1])
                entries = nxt
            value, ready, _match = entries[0]
            return value, ready

        consumer_index = 0
        for i in range(self.n):
            station_values, station_ready = [], []
            for p in range(self.reads_per_station):
                value_nets, ready_net = build_column(
                    self.read_reg[i][p], i, consumer_index
                )
                station_values.append(value_nets)
                station_ready.append(ready_net)
                consumer_index += 1
            self.arg_values.append(station_values)
            self.arg_ready.append(station_ready)

        for r in range(self.L):
            value_nets, ready_net = build_column(
                [], self.n, consumer_index, reg_if_constant=r
            )
            self.out_values.append(value_nets)
            self.out_ready.append(ready_net)
            consumer_index += 1
