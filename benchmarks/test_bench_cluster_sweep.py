"""E5 — optimal hybrid cluster size C = Θ(L)."""

from repro.experiments import cluster_sweep


def test_bench_optimal_cluster_is_theta_L(once):
    outcome = once(cluster_sweep.run)
    print()
    print(cluster_sweep.report())
    assert outcome.optimum_tracks_L(slack=4.0)
    # the optimum grows monotonically with L
    Ls = sorted(outcome.best)
    optima = [outcome.best[L] for L in Ls]
    assert optima == sorted(optima)


def test_bench_sweep_has_interior_minimum(once):
    """U(C) is U-shaped: both tiny and huge clusters lose."""
    outcome = once(cluster_sweep.run)
    for L, sides in outcome.sweeps.items():
        best = outcome.best[L]
        assert sides[best] < sides[1]          # better than no clustering
        assert sides[best] < sides[max(sides)]  # better than one giant cluster


def test_bench_closed_form_agrees_with_model(once):
    outcome = once(cluster_sweep.run)
    for L in outcome.best:
        model, closed = outcome.best[L], outcome.closed_form_best[L]
        assert max(model, closed) / min(model, closed) <= 2.0
