"""Machine-readable run artifacts (the ``--json PATH`` flag).

The artifact is a stable, diff-friendly JSON document: results are
listed in job order, report text is summarized by its SHA-256 (so two
artifacts diff cleanly even when reports are kilobytes), and the only
non-deterministic fields are the wall times.  Schema::

    {
      "schema": "repro-runner/1",
      "version": "<repro.__version__>",
      "workers": <int>,                 # --jobs value
      "cache_dir": "<path>" | null,     # null when --no-cache
      "totals": {
        "jobs": <int>, "experiments": <int>, "ok": <int>,
        "failed": <int>, "cache_hits": <int>, "retried": <int>,
        "wall_time_s": <float>
      },
      "results": [
        {
          "experiment": "<key>", "title": "<display title>",
          "kwargs": {...},              # the declared sweep point
          "sweep_index": <int>, "sweep_count": <int>,
          "status": "ok" | "failed" | "timeout",
          "cache_hit": <bool>,
          "attempts": <int>,            # 0 for a cache hit
          "wall_time_s": <float>,
          "output_sha256": "<hex>" | null,
          "output_chars": <int> | null,
          "error": "<last traceback line>" | null
        }, ...
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro._version import __version__
from repro.runner.metrics import JobResult, summarize

ARTIFACT_SCHEMA = "repro-runner/1"


def build_artifact(
    results: list[JobResult],
    *,
    workers: int = 1,
    cache_dir: str | None = None,
) -> dict[str, Any]:
    """Assemble the artifact document for one runner invocation."""
    return {
        "schema": ARTIFACT_SCHEMA,
        "version": __version__,
        "workers": workers,
        "cache_dir": cache_dir,
        "totals": summarize(results),
        "results": [
            {
                "experiment": r.experiment,
                "title": r.title,
                "kwargs": r.kwargs,
                "sweep_index": r.index,
                "sweep_count": r.count,
                "status": r.status,
                "cache_hit": r.cache_hit,
                "attempts": r.attempts,
                "wall_time_s": round(r.wall_time_s, 6),
                "output_sha256": r.output_sha256,
                "output_chars": None if r.output is None else len(r.output),
                "error": r.error_summary or None,
            }
            for r in results
        ],
    }


def write_artifact(
    path: str | Path,
    results: list[JobResult],
    *,
    workers: int = 1,
    cache_dir: str | None = None,
) -> Path:
    """Write the artifact JSON to *path* (parent dirs created)."""
    path = Path(path)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    document = build_artifact(results, workers=workers, cache_dir=cache_dir)
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return path
