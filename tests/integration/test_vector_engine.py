"""Integration: the vectorized engine is bit-equivalent to RingProcessor."""

import pytest

from repro.isa import Instruction, Opcode, Program, assemble
from repro.ultrascalar import IdealMemory, ProcessorConfig, make_ultrascalar1
from repro.ultrascalar.vector_engine import VectorRingEngine
from repro.workloads import dependency_chain, independent_ops, random_ilp


def compare(workload, window, fetch_width):
    config = ProcessorConfig(window_size=window, fetch_width=fetch_width)
    ring = make_ultrascalar1(
        workload.program, config, memory=IdealMemory(), initial_registers=workload.registers_for()
    ).run()
    vector = VectorRingEngine(
        workload.program, window, fetch_width, initial_registers=workload.registers_for()
    ).run()
    ring_issues = [t.issue_cycle for t in sorted(ring.timings, key=lambda t: t.seq)]
    return ring, vector, ring_issues


class TestBitEquivalence:
    @pytest.mark.parametrize(
        "workload,window,width",
        [
            (dependency_chain(30), 8, 4),
            (independent_ops(40), 16, 8),
            (random_ilp(60, 0.2, seed=71), 16, 4),
            (random_ilp(60, 0.5, seed=72), 16, 4),
            (random_ilp(60, 0.9, seed=73), 8, 2),
            (random_ilp(100, 0.6, seed=74), 32, 16),
        ],
        ids=lambda x: getattr(x, "name", x),
    )
    def test_cycles_registers_and_issue_times_match(self, workload, window, width):
        ring, vector, ring_issues = compare(workload, window, width)
        assert vector.cycles == ring.cycles
        assert vector.registers == ring.registers
        assert vector.issue_cycles == ring_issues

    def test_window_one(self):
        ring, vector, ring_issues = compare(dependency_chain(10), 1, 1)
        assert vector.cycles == ring.cycles
        assert vector.issue_cycles == ring_issues

    def test_division_edge_cases_match(self):
        source = """
            li r1, -7
            li r2, 0
            div r3, r1, r2
            li r4, 2
            div r5, r1, r4
            halt
        """
        program = assemble(source)
        config = ProcessorConfig(window_size=8, fetch_width=8)
        ring = make_ultrascalar1(program, config, memory=IdealMemory()).run()
        vector = VectorRingEngine(program, 8, 8).run()
        assert vector.registers == ring.registers


class TestScope:
    def test_rejects_memory_operations(self):
        program = Program.from_instructions(
            [Instruction(Opcode.LW, rd=1, rs1=0, imm=0), Instruction(Opcode.HALT)]
        )
        with pytest.raises(ValueError, match="lw"):
            VectorRingEngine(program, 8, 4)

    def test_rejects_branches(self):
        program = Program.from_instructions(
            [Instruction(Opcode.BEQ, rs1=0, rs2=0, target=0), Instruction(Opcode.HALT)]
        )
        with pytest.raises(ValueError, match="beq"):
            VectorRingEngine(program, 8, 4)

    def test_parameter_validation(self):
        program = Program.from_instructions([Instruction(Opcode.HALT)])
        with pytest.raises(ValueError):
            VectorRingEngine(program, 0, 4)
        with pytest.raises(ValueError):
            VectorRingEngine(program, 8, 4, initial_registers=[0])


class TestLargeN:
    """The repro-band concern: behavioural model too slow for large n.

    The vector engine makes n = 512 with thousands of instructions cheap.
    """

    def test_large_window_runs_quickly_and_correctly(self):
        workload = random_ilp(2000, 0.5, seed=75)
        vector = VectorRingEngine(
            workload.program, 512, 64, initial_registers=workload.registers_for()
        ).run()
        from repro.isa.interpreter import MachineState, run_program

        golden = run_program(
            workload.program, state=MachineState(workload.registers_for())
        )
        assert vector.registers == golden.state.registers

    def test_ipc_grows_with_window_until_saturation(self):
        workload = random_ilp(1500, 0.3, seed=76)
        ipcs = []
        for window in (8, 32, 128, 512):
            result = VectorRingEngine(
                workload.program, window, window, initial_registers=workload.registers_for()
            ).run()
            ipcs.append(result.ipc)
        assert ipcs == sorted(ipcs)
        assert ipcs[-1] > ipcs[0]
