"""H-tree geometry.

The Ultrascalar I floorplan (the paper's Figure 6) arranges ``n``
execution stations in a two-dimensional matrix connected "exclusively
via networks layed out with H-tree layouts": a 4-way recursive
decomposition in which each quadrant holds a contiguous quarter of the
stations.  This module provides the pure geometry — leaf placement,
side lengths, root-to-leaf wire lengths, and the station-to-successor
distance census behind the paper's self-timed back-of-the-envelope
argument ("Half of the communications paths from one station to its
successor are completely local").

The parametric area model that assigns physical sizes to tree nodes
lives in :mod:`repro.vlsi.htree_layout`; here distances are in *leaf
units* (unit spacing between adjacent stations).
"""

from __future__ import annotations

import math

import numpy as np


def _require_power_of_4(n: int) -> None:
    if n < 1 or (n & (n - 1)) or (n.bit_length() - 1) % 2:
        raise ValueError(f"H-tree needs a power of 4 number of leaves, got {n}")


def is_power_of_4(n: int) -> bool:
    """True if *n* is a power of four (1, 4, 16, 64, ...)."""
    return n >= 1 and (n & (n - 1)) == 0 and (n.bit_length() - 1) % 2 == 0


def htree_side_length(n: int) -> int:
    """Side of the square that *n* leaves occupy, in leaf units (= sqrt n)."""
    _require_power_of_4(n)
    return int(math.isqrt(n))


def htree_leaf_positions(n: int) -> np.ndarray:
    """Positions of the *n* leaves, shape ``(n, 2)``.

    Leaf ``i`` is station ``i``; stations are assigned to quadrants in
    contiguous blocks of ``n/4`` (quadrant order: SW, SE, NW, NE), which
    is the order the CSPP tree over the H-tree uses, so ring-order
    neighbours are usually physical neighbours.
    """
    _require_power_of_4(n)
    if n == 1:
        return np.zeros((1, 2), dtype=np.int64)
    quarter = htree_leaf_positions(n // 4)
    side = htree_side_length(n // 4)
    offsets = np.array([[0, 0], [side, 0], [0, side], [side, side]], dtype=np.int64)
    return np.concatenate([quarter + off for off in offsets], axis=0)


def wire_length_root_to_leaf(n: int) -> float:
    """Root-to-leaf routed wire length W(n), in leaf units.

    The H-tree routes from the centre of the full square to the centre
    of a quadrant, recursively; the length from the root to *any* leaf is
    the same (the paper notes "the total length of the wires from the
    root to an execution station is independent of which execution
    station we consider").  W(n) = sum over levels of half the level's
    side length; W(n) = Θ(sqrt n).
    """
    _require_power_of_4(n)
    length = 0.0
    side = htree_side_length(n)
    while side > 1:
        length += side / 2.0
        side //= 2
    return length


def lca_level(i: int, j: int, n: int) -> int:
    """Levels above the leaves of the lowest common H-tree ancestor of leaves i, j.

    Level 0 = the leaf itself (i == j); level k means the smallest common
    subtree has ``4**k`` leaves.
    """
    _require_power_of_4(n)
    if not (0 <= i < n and 0 <= j < n):
        raise ValueError("leaf index out of range")
    level = 0
    size = 1
    while i != j:
        i //= 4
        j //= 4
        size *= 4
        level += 1
    return level


def successor_tree_distances(n: int) -> list[int]:
    """LCA level between each station and its ring successor (cyclic).

    ``result[i]`` = :func:`lca_level` of stations ``i`` and ``(i+1) % n``.
    The paper's self-timed argument observes that for a contiguous
    H-tree assignment most successor paths stay inside small subtrees:
    3/4 of the hops stay within a quadrant of every level — so "half of
    the communications paths ... are completely local" is conservative.
    """
    _require_power_of_4(n)
    return [lca_level(i, (i + 1) % n, n) for i in range(n)]


def successor_wire_lengths(n: int) -> list[float]:
    """Routed wire length station → successor through the H-tree, leaf units.

    A signal from leaf i to leaf j climbs to their LCA and back down:
    ``2 * (W(n) - W(subtree below LCA is excluded))`` — concretely twice
    the sum of per-level hops up to the LCA level.
    """
    _require_power_of_4(n)
    lengths = []
    for i in range(n):
        level = lca_level(i, (i + 1) % n, n)
        # climb `level` levels: hop at level k spans half the side of the
        # 4**k-leaf subtree
        up = sum(math.isqrt(4**k) / 2.0 for k in range(1, level + 1))
        lengths.append(2.0 * up)
    return lengths
