"""E13 — the who-wins-where map over the (n, L) design space."""

from repro.experiments import dominance_map


def test_bench_incomparability_map(once):
    outcome = once(dominance_map.run)
    print()
    print(dominance_map.report())
    # "The Ultrascalar I and Ultrascalar II are incomparable, each
    # beating the other in certain cases."
    assert outcome.us1_wins_somewhere()
    assert outcome.us2_wins_somewhere()


def test_bench_single_crossover_per_row(once):
    """Each register-file size has one crossover (n = Θ(L²)), not a
    patchwork: the winner flips exactly once as n grows."""
    outcome = once(dominance_map.run)
    assert outcome.pairwise_boundary_is_monotone()


def test_bench_hybrid_dominates_at_scale(once):
    """"For n >= L the hybrid dominates both" — asymptotically: every
    grid cell with n >= 16 L goes to the hybrid."""
    outcome = once(dominance_map.run)
    assert outcome.hybrid_wins_at_scale(factor=16)


def test_bench_crossover_diagonal_tracks_L_squared(once):
    """The US1/US2 boundary moves diagonally: quadrupling L pushes the
    crossover 16x in n."""
    outcome = once(dominance_map.run)

    def first_us1_n(L):
        for n in outcome.n_values:
            if outcome.winner_pairwise[(n, L)] == "US1":
                return n
        return None

    n_at_8 = first_us1_n(8)
    n_at_32 = first_us1_n(32)
    assert n_at_8 is not None and n_at_32 is not None
    assert n_at_32 == 16 * n_at_8
