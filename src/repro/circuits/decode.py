"""Instruction decode logic (the paper's Figure 2).

"The decode logic generates a modified bit for every logical register,
indicating whether the station has modified the register's value ...
The modified bit is used to control the register's multiplexer in the
datapath."

The core is a binary-to-one-hot decoder over the destination-register
field, gated by a writes-anything enable: exactly the L modified bits
each execution station drives into the L register rings.  Gate depth is
Θ(log log L) (an AND tree over the ceil(log2 L) address bits per
output), negligible against the datapath.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.comparator import build_constant_match, register_number_bits
from repro.circuits.netlist import GateKind, Net, Netlist


@dataclass(frozen=True)
class DecoderPorts:
    """Primary nets of a modified-bit decoder."""

    reg_bits: list[Net]
    write_enable: Net
    modified: list[Net]


def build_modified_bit_decoder(
    netlist: Netlist, num_registers: int, name: str = "dec"
) -> DecoderPorts:
    """Build the one-hot modified-bit decoder for *num_registers*."""
    if num_registers < 1:
        raise ValueError("need at least one register")
    bits = register_number_bits(num_registers)
    reg = [netlist.add_input(f"{name}_rd[{b}]") for b in range(bits)]
    enable = netlist.add_input(f"{name}_wen")
    modified = []
    for r in range(num_registers):
        match = build_constant_match(netlist, reg, r)
        modified.append(
            netlist.mark_output(
                f"{name}_m{r}", netlist.add_gate(GateKind.AND, match, enable)
            )
        )
    return DecoderPorts(reg_bits=reg, write_enable=enable, modified=modified)


def evaluate_decoder(
    netlist: Netlist, ports: DecoderPorts, rd: int, write_enable: bool
) -> list[bool]:
    """Simulate the decoder; returns the L modified bits."""
    assignment: dict[Net, bool] = {ports.write_enable: write_enable}
    for b, net in enumerate(ports.reg_bits):
        assignment[net] = bool((rd >> b) & 1)
    result = netlist.simulate(assignment)
    return [result.value_of(net) for net in ports.modified]
