"""Experiment E9 — measured gate-delay growth of the constructed circuits.

The paper's Section 2/4 claims, measured on real netlists with the
event-driven simulator:

* mux ring settles in Θ(n) gate delays;
* CSPP tree settles in Θ(log n);
* Ultrascalar II linear grid settles in Θ(n + L);
* Ultrascalar II mesh-of-trees settles in Θ(log(n + L)).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.fitting import fit_exponent
from repro.circuits.cspp import build_copy_cspp
from repro.circuits.grid import GridNetwork, TreeGridNetwork
from repro.circuits.mux_ring import MuxRing
from repro.util.tables import Table


#: sweep points the runner executes and the cache keys (kwargs for
#: :func:`report`)
SWEEP_POINTS: list[dict] = [{"sizes": [4, 8, 16, 32]}]


@dataclass
class GateDepthResult:
    """Measured settle times per circuit family."""

    sizes: list[int]
    ring_times: list[int]
    cspp_times: list[int]
    grid_times: list[int]
    tree_grid_times: list[int]

    @property
    def ring_exponent(self) -> float:
        """Fitted growth exponent of the mux ring (expected ~1)."""
        return fit_exponent(self.sizes, self.ring_times)

    @property
    def grid_exponent(self) -> float:
        """Fitted growth exponent of the linear grid (expected ~1)."""
        return fit_exponent(self.sizes, self.grid_times)

    @property
    def cspp_exponent(self) -> float:
        """Fitted exponent of the CSPP tree (expected << 0.5: logarithmic)."""
        return fit_exponent(self.sizes, self.cspp_times)

    @property
    def tree_grid_exponent(self) -> float:
        """Fitted exponent of the mesh-of-trees grid (expected << 0.5)."""
        return fit_exponent(self.sizes, self.tree_grid_times)


def run(sizes: list[int] | None = None) -> GateDepthResult:
    """Measure worst-case settle times over *sizes* stations."""
    sizes = sizes or [4, 8, 16, 32]
    ring_times, cspp_times, grid_times, tree_grid_times = [], [], [], []
    for n in sizes:
        stimulus = [1] * n
        segments = [True] + [False] * (n - 1)
        ring_times.append(MuxRing(n, 1).settle_time(stimulus, segments))
        cspp_times.append(build_copy_cspp(n, 1).settle_time(stimulus, segments))
        initial = [(1, True)] * n
        writes = [None] * n
        reads = [[0, 0]] * n
        grid_times.append(GridNetwork(n, n).settle_time(initial, writes, reads))
        tree_grid_times.append(
            TreeGridNetwork(n, n).settle_time(initial, writes, reads)
        )
    return GateDepthResult(
        sizes=sizes,
        ring_times=ring_times,
        cspp_times=cspp_times,
        grid_times=grid_times,
        tree_grid_times=tree_grid_times,
    )


def report(sizes: list[int] | None = None) -> str:
    """Render the measured settle-time table with fitted exponents."""
    outcome = run(sizes)
    table = Table(
        ["n", "mux ring", "CSPP tree", "US2 linear grid", "US2 mesh-of-trees"],
        title="E9 — measured settle times (gate delays) of the paper's circuits",
    )
    for i, n in enumerate(outcome.sizes):
        table.add_row(
            [
                n,
                outcome.ring_times[i],
                outcome.cspp_times[i],
                outcome.grid_times[i],
                outcome.tree_grid_times[i],
            ]
        )
    footer = (
        f"\nfitted exponents: ring {outcome.ring_exponent:.2f} (paper Θ(n)),"
        f" CSPP {outcome.cspp_exponent:.2f} (paper Θ(log n)),"
        f" grid {outcome.grid_exponent:.2f} (paper Θ(n+L)),"
        f" mesh-of-trees {outcome.tree_grid_exponent:.2f} (paper Θ(log(n+L)))"
    )
    return table.render() + footer


if __name__ == "__main__":  # pragma: no cover
    print(report())
