"""E8 — the self-timed locality argument (Section 7)."""

from repro.experiments import selftimed


def test_bench_successor_locality(once):
    outcome = once(selftimed.run)
    print()
    print(selftimed.report())
    # the paper's claim — at least half the successor paths are local —
    # holds at every size (our census finds 3/4)
    assert outcome.at_least_half_local()
    assert all(abs(f - 0.75) < 0.01 for f in outcome.local_fraction.values())


def test_bench_mean_wire_stays_bounded(once):
    """Mean successor wire length converges to a constant even as the
    max (the wrap-around hop) grows with sqrt(n) — exactly why a
    self-timed design favours near-neighbour dependence."""
    outcome = once(selftimed.run)
    means = list(outcome.mean_wire.values())
    maxes = list(outcome.max_wire.values())
    assert means[-1] < 4.5          # bounded mean
    assert maxes[-1] > maxes[0] * 3  # growing worst case
