"""Baseline comparison: performance-version-control for bench artifacts.

Given a baseline ``repro-bench/1`` artifact (e.g. the committed
``BENCH_0.json``) and a fresh run, :func:`compare_artifacts` matches
results by benchmark name and classifies each delta.  The comparison
metric is the **minimum** repeat by default — the least-noise estimate
of the true cost — and deltas are expressed as signed percentages
(positive = the new run is slower).

Classification, for a significance threshold of *T* percent:

* ``regressed`` — new time more than *T*% above the baseline;
* ``improved`` — new time more than *T*% below the baseline;
* ``unchanged`` — within the noise band;
* ``added`` — present only in the new run (no gate: new benchmarks
  cannot regress);
* ``removed`` — present only in the baseline (renames show up as one
  ``removed`` plus one ``added``);
* ``incomparable`` — a zero or negative time on either side, where a
  ratio is meaningless (the zero-time guard).

The CLI's ``--fail-on-regress PCT`` turns ``regressed`` entries into a
non-zero exit; a bare ``--compare`` is informational and always exits
zero, because cross-host timings (CI vs. laptop) routinely differ by
more than any sane threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: delta classifications, in display order
REGRESSED = "regressed"
IMPROVED = "improved"
UNCHANGED = "unchanged"
ADDED = "added"
REMOVED = "removed"
INCOMPARABLE = "incomparable"


@dataclass(frozen=True)
class Delta:
    """One benchmark's baseline-to-current comparison."""

    name: str
    status: str
    base_s: float | None = None
    new_s: float | None = None
    #: signed percent change ((new - base) / base * 100); None when a
    #: side is missing or the zero-time guard fired
    pct: float | None = None


def _metric(entry: dict[str, Any], metric: str) -> float | None:
    value = entry.get(metric)
    return float(value) if isinstance(value, (int, float)) else None


def compare_artifacts(
    base: dict[str, Any],
    new: dict[str, Any],
    *,
    threshold_pct: float = 5.0,
    metric: str = "best_s",
) -> list[Delta]:
    """Classify every benchmark present in either artifact.

    Ordering follows the new artifact, with baseline-only entries
    appended (so a run's table reads in registration order).
    """
    if threshold_pct < 0:
        raise ValueError("threshold_pct must be >= 0")
    base_entries = {e["name"]: e for e in base.get("results", []) if "name" in e}
    new_entries = {e["name"]: e for e in new.get("results", []) if "name" in e}
    deltas: list[Delta] = []
    for name, entry in new_entries.items():
        new_s = _metric(entry, metric)
        if name not in base_entries:
            deltas.append(Delta(name=name, status=ADDED, new_s=new_s))
            continue
        base_s = _metric(base_entries[name], metric)
        if base_s is None or new_s is None or base_s <= 0.0 or new_s <= 0.0:
            # zero-time guard: sub-resolution timings make ratios garbage
            deltas.append(
                Delta(name=name, status=INCOMPARABLE, base_s=base_s, new_s=new_s)
            )
            continue
        # rounded so the threshold boundary is exact, not FP-noise-driven
        pct = round((new_s - base_s) / base_s * 100.0, 6)
        if pct > threshold_pct:
            status = REGRESSED
        elif pct < -threshold_pct:
            status = IMPROVED
        else:
            status = UNCHANGED
        deltas.append(
            Delta(name=name, status=status, base_s=base_s, new_s=new_s, pct=pct)
        )
    for name, entry in base_entries.items():
        if name not in new_entries:
            deltas.append(
                Delta(name=name, status=REMOVED, base_s=_metric(entry, metric))
            )
    return deltas


def regressions(deltas: list[Delta]) -> list[Delta]:
    """The deltas the ``--fail-on-regress`` gate trips on."""
    return [d for d in deltas if d.status == REGRESSED]


def hosts_differ(base: dict[str, Any], new: dict[str, Any]) -> bool:
    """True when the two artifacts came from visibly different hosts."""
    keys = ("python", "implementation", "platform", "machine", "cpu_count")
    base_host = base.get("host") or {}
    new_host = new.get("host") or {}
    return any(base_host.get(k) != new_host.get(k) for k in keys)


def _fmt_time(value: float | None) -> str:
    if value is None:
        return "-"
    if value < 1e-3:
        return f"{value * 1e6:.1f}us"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    return f"{value:.3f}s"


def format_compare_table(deltas: list[Delta], *, threshold_pct: float) -> str:
    """A plain-text delta table (the ``--compare`` output)."""
    header = f"{'benchmark':<28} {'base':>10} {'new':>10} {'delta':>9}  status"
    lines = [header, "-" * len(header)]
    for d in deltas:
        pct = "-" if d.pct is None else f"{d.pct:+.1f}%"
        lines.append(
            f"{d.name:<28} {_fmt_time(d.base_s):>10} {_fmt_time(d.new_s):>10} "
            f"{pct:>9}  {d.status}"
        )
    counts: dict[str, int] = {}
    for d in deltas:
        counts[d.status] = counts.get(d.status, 0) + 1
    summary = ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
    lines.append(f"({summary}; threshold +/-{threshold_pct:g}%)")
    return "\n".join(lines)
