"""The Ultrascalar II floorplan (the paper's Figure 7 and Section 5).

"The execution stations are layed out along a diagonal, with the
register datapath layed out in the triangle below the diagonal.  The
memory switches are placed in the space above the diagonal ... the
entire Ultrascalar II can be layed out in a box with side-length
O(n + L)."

Three variants:

* ``linear`` — the linear-gate-delay grid: side Θ(n + L);
* ``tree`` — the log-gate-delay mesh-of-trees: side
  Θ((n + L) log(n + L)) ("the side length increases ... if the
  tree-of-meshes implementation is used");
* ``mixed`` — the paper's practical strategy: a few tree levels absorbed
  into the slack near the root where wire delay dominates anyway, with
  "asymptotic results ... exactly the same as for the linear-time
  circuit ... with greatly improved constant factors" (the paper found
  ~3 free levels in their layout).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuits.comparator import register_number_bits
from repro.vlsi.cells import StationCell, station_cell
from repro.vlsi.tech import Technology, PAPER_TECH


@dataclass(eq=False)
class Ultrascalar2Layout:
    """Parametric Ultrascalar II layout.

    Args:
        n: stations in the (non-wrap-around) batch.
        num_registers: ``L``.
        word_bits: ``w``.
        variant: ``"linear"``, ``"tree"``, or ``"mixed"``.
        free_tree_levels: tree levels absorbable without area growth in
            the mixed variant (the paper's layouts had about three).
    """

    n: int
    num_registers: int = 32
    word_bits: int = 32
    variant: str = "linear"
    free_tree_levels: int = 3
    #: the paper: "it appears to cost nearly a factor of two in area to
    #: implement the wrap-around mechanism" — set True to model the
    #: wrap-around Ultrascalar II (which then refills per-station like
    #: the ring instead of idling)
    wraparound: bool = False
    tech: Technology = PAPER_TECH

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("n must be positive")
        if self.variant not in ("linear", "tree", "mixed"):
            raise ValueError(f"unknown variant {self.variant!r}")
        if self.free_tree_levels < 0:
            raise ValueError("free_tree_levels must be non-negative")
        # Grid stations receive only their arguments, not the whole
        # register file — no L(w+1)-wire perimeter requirement.
        self.station: StationCell = station_cell(
            self.num_registers, self.word_bits, self.tech, full_register_interface=False
        )

    # -- geometry -------------------------------------------------------

    @property
    def rows(self) -> int:
        """Grid rows: one binding row per station plus the register file."""
        return self.n + self.num_registers

    @property
    def cols(self) -> int:
        """Grid columns: two argument columns per station plus outgoing."""
        return 2 * self.n + self.num_registers

    @property
    def row_pitch(self) -> float:
        """Tracks per row: value + ready + register-number wires."""
        bits = self.word_bits + 1 + register_number_bits(self.num_registers)
        return bits * self.tech.grid_row_pitch_per_bit

    def _tree_blowup(self) -> float:
        """Side multiplier of the chosen variant.

        ``tree`` pays the full Θ(log(n+L)) factor.  ``mixed`` is the
        paper's practical strategy — tree circuits only for the few
        levels whose wiring fits in the layout's slack ("about three
        levels ... without impacting the total layout area"), linear
        prefix circuits beyond — so its *side length* equals the linear
        variant's; only its gate delay improves.
        """
        size = self.rows + self.cols
        if self.variant in ("linear", "mixed"):
            return 1.0
        levels = math.ceil(math.log2(max(2, size)))
        return float(max(1, levels))

    def gate_delay(self) -> float:
        """Datapath gate delay of the chosen variant.

        linear: Θ(n + L); tree: Θ(log(n + L)); mixed: linear beyond the
        free tree levels, i.e. Θ((n + L) / 2^free) + the tree prefix.
        """
        size = self.rows + self.cols
        if self.variant == "linear":
            return float(size)
        levels = math.ceil(math.log2(max(2, size)))
        if self.variant == "tree":
            return float(levels)
        covered = min(self.free_tree_levels, levels)
        return size / float(2**covered) + covered

    def side_length(self) -> float:
        """Side in tracks: Θ(n + L) (times the variant's log blow-up).

        The datapath triangle of rows/columns plus the station logic,
        which packs two-dimensionally (the paper's layouts "placed the
        32 ALUs of each cluster in 4 columns of 8 ALUs each, arrayed off
        the diagonal"); the memory switches fit above the diagonal "with
        at worst a constant blowup in area" (M(n) = O(n) always fits).
        """
        datapath = (self.rows + self.cols) / 2.0 * self.row_pitch
        stations = math.sqrt(self.n) * self.station.side_tracks
        side = (datapath + stations) * self._tree_blowup()
        if self.wraparound:
            side *= math.sqrt(2.0)  # "nearly a factor of two in area"
        return side

    @property
    def area(self) -> float:
        """Area in tracks squared."""
        return self.side_length() ** 2

    @property
    def critical_wire(self) -> float:
        """Longest datapath wire: across the grid and back, Θ(side)."""
        return 2.0 * self.side_length()

    @property
    def stations_per_m2(self) -> float:
        """Density in stations per square metre."""
        side_cm = self.tech.tracks_to_cm(self.side_length())
        return self.n / (side_cm / 100.0) ** 2

    def summary(self) -> dict[str, float]:
        """Headline numbers in physical units."""
        side_cm = self.tech.tracks_to_cm(self.side_length())
        return {
            "n": self.n,
            "L": self.num_registers,
            "variant": self.variant,
            "side_cm": side_cm,
            "area_cm2": side_cm**2,
            "critical_wire_cm": self.tech.tracks_to_cm(self.critical_wire),
            "stations_per_m2": self.stations_per_m2,
        }
