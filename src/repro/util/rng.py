"""Deterministic random-number generation for experiments and tests."""

from __future__ import annotations

import hashlib
import random

import numpy as np

DEFAULT_SEED = 0x5CA1AB1E


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` seeded deterministically.

    ``None`` selects the project-wide default seed (*not* entropy), so two
    calls with no argument always produce identical streams; experiments
    stay reproducible without threading a seed through every call site.
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def derive_seed(*components: object) -> int:
    """Fold *components* into a stable 63-bit seed.

    Hash-based (SHA-256 over the reprs), so the result is identical
    across processes and Python versions — the property the runner's
    retry path and the fuzz shards rely on: the same (job identity,
    attempt) pair always reseeds the same stream.
    """
    digest = hashlib.sha256(
        "\x1f".join(repr(component) for component in components).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def seed_bare_rngs(seed: int) -> None:
    """Deterministically reseed the *global* RNGs (``random`` and legacy
    NumPy).

    Library code should prefer an explicit :func:`make_rng` generator;
    this exists so code paths that call ``random``/``np.random`` bare —
    or third-party code that does — still behave reproducibly when a job
    is retried (the runner reseeds with a per-attempt derived seed before
    every attempt).
    """
    random.seed(seed)
    np.random.seed(seed & 0xFFFFFFFF)
