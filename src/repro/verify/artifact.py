"""The ``repro-verify/1`` artifact: one verification run, machine-readable.

Mirrors the runner's ``repro-runner/2`` artifact conventions (stable
field order, deterministic modulo wall time, validation returning a
problem list rather than raising).  Schema::

    {
      "schema": "repro-verify/1",
      "version": "<repro.__version__>",
      "designs": ["us1", ...],          # backends exercised
      "sizes": [4, 16],                 # window sizes (wrap-free is implicit)
      "budget": <int>,                  # per-shard instruction budget
      "minimize": <bool>,
      "totals": {
        "shards": <int>, "cases": <int>, "instructions": <int>,
        "failures": <int>, "errors": <int>, "wall_time_s": <float>
      },
      "shards": [
        {
          "seed": <int>, "status": "ok" | "failed" | "timeout" | "error",
          "cases": <int>, "instructions": <int>,
          "failures": [<repro-failure/1 object>, ...],
          "error": "<summary>" | null
        }, ...
      ]
    }

``status`` is ``"failed"`` when the shard ran but found divergences,
``"error"``/``"timeout"`` when the shard itself could not run (worker
crash/watchdog) — those carry the runner's error summary instead of
failure objects.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro._version import __version__

VERIFY_SCHEMA = "repro-verify/1"


def build_verify_artifact(
    shards: list[dict[str, Any]],
    *,
    designs: tuple[str, ...] | list[str],
    sizes: tuple[int, ...] | list[int],
    budget: int,
    minimize: bool,
    wall_time_s: float = 0.0,
) -> dict[str, Any]:
    """Assemble the artifact document for one ``verify`` invocation.

    *shards* entries are the per-shard objects described in the module
    docstring (built by the CLI from :class:`~repro.verify.fuzz.
    ShardOutcome` values and runner failures).
    """
    return {
        "schema": VERIFY_SCHEMA,
        "version": __version__,
        "designs": list(designs),
        "sizes": list(sizes),
        "budget": budget,
        "minimize": minimize,
        "totals": {
            "shards": len(shards),
            "cases": sum(s.get("cases", 0) for s in shards),
            "instructions": sum(s.get("instructions", 0) for s in shards),
            "failures": sum(len(s.get("failures", [])) for s in shards),
            "errors": sum(1 for s in shards if s.get("status") in ("error", "timeout")),
            "wall_time_s": round(wall_time_s, 6),
        },
        "shards": shards,
    }


def write_verify_artifact(path: str | Path, document: dict[str, Any]) -> Path:
    """Write the artifact JSON to *path* (parent dirs created)."""
    path = Path(path)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return path


def validate_verify_artifact(document: Any) -> list[str]:
    """Return schema problems with a ``repro-verify/1`` artifact.

    An empty list means the document is well formed (the contract CI's
    verify-smoke job checks before trusting the run).
    """
    problems: list[str] = []
    if not isinstance(document, dict):
        return ["artifact is not a JSON object"]
    if document.get("schema") != VERIFY_SCHEMA:
        problems.append(f"schema is {document.get('schema')!r}, expected {VERIFY_SCHEMA!r}")
    for key in ("version", "designs", "sizes", "budget", "totals", "shards"):
        if key not in document:
            problems.append(f"missing top-level key {key!r}")
    totals = document.get("totals")
    if isinstance(totals, dict):
        for key in ("shards", "cases", "instructions", "failures", "errors"):
            if not isinstance(totals.get(key), int):
                problems.append(f"totals.{key} is not an int")
    elif totals is not None:
        problems.append("totals is not an object")
    shards = document.get("shards")
    if not isinstance(shards, list):
        problems.append("shards is not a list")
        return problems
    for i, shard in enumerate(shards):
        if not isinstance(shard, dict):
            problems.append(f"shards[{i}] is not an object")
            continue
        for key in ("seed", "status"):
            if key not in shard:
                problems.append(f"shards[{i}] missing key {key!r}")
        if shard.get("status") not in ("ok", "failed", "timeout", "error"):
            problems.append(
                f"shards[{i}].status is {shard.get('status')!r}, expected "
                "ok/failed/timeout/error"
            )
        failures = shard.get("failures", [])
        if not isinstance(failures, list):
            problems.append(f"shards[{i}].failures is not a list")
            continue
        for j, failure in enumerate(failures):
            if not isinstance(failure, dict):
                problems.append(f"shards[{i}].failures[{j}] is not an object")
            elif "program" not in failure or "divergences" not in failure:
                problems.append(f"shards[{i}].failures[{j}] missing program/divergences")
    return problems
