"""Study the memory system: bandwidth, banking, and the trace cache.

Usage::

    python examples/memory_system_study.py

Runs a bandwidth-bound load stream through the interleaved cache behind
fat trees of varying fatness M(n), showing how root bandwidth throttles
throughput (the paper's 'memory bandwidth is the dominating factor');
sweeps bank counts; and demonstrates the trace cache raising effective
fetch bandwidth across taken control transfers.
"""

from repro.api import CachedMemory, ProcessorConfig, build_processor
from repro.frontend.branch_predictor import AlwaysNotTaken
from repro.frontend.fetch import FetchUnit
from repro.memory.interleaved_cache import InterleavedCache
from repro.memory.trace_cache import TraceCache
from repro.network.fattree import FatTree, bandwidth_constant, bandwidth_linear, bandwidth_power
from repro.util.tables import Table
from repro.workloads import jump_chain, parallel_loads


def run_loads(workload, bandwidth, banks=8):
    tree = FatTree(64, bandwidth, radix=4)
    cache = InterleavedCache(banks=banks, lines_per_bank=64, words_per_line=1, fat_tree=tree)
    memory = CachedMemory(cache)
    memory.load_image(workload.memory_image)
    config = ProcessorConfig(window_size=64, fetch_width=16)
    result = build_processor("us1", config).run(
        workload.program, memory=memory, initial_registers=workload.registers_for()
    )
    return result, cache.stats


def main() -> None:
    workload = parallel_loads(48)
    table = Table(
        ["M(n)", "cycles", "IPC", "network-denied cycles"],
        title=f"Root-bandwidth sweep on {workload.name} (independent loads)",
    )
    for bandwidth, label in [
        (bandwidth_constant(1.0), "Θ(1)"),
        (bandwidth_constant(4.0), "Θ(1), 4 wide"),
        (bandwidth_power(0.5), "Θ(√n)"),
        (bandwidth_linear(1.0), "Θ(n)"),
    ]:
        result, stats = run_loads(workload, bandwidth)
        table.add_row([label, result.cycles, round(result.ipc, 2), stats.network_denied_cycles])
    print(table.render())
    print()

    banked = Table(
        ["banks", "cycles", "bank-conflict cycles"],
        title=f"Bank sweep on {workload.name} at full root bandwidth",
    )
    for banks in (1, 2, 4, 8, 16):
        result, stats = run_loads(workload, bandwidth_linear(1.0), banks=banks)
        banked.add_row([banks, result.cycles, stats.bank_conflict_cycles])
    print(banked.render())
    print()

    # --- trace cache: fetching across taken control transfers ---
    chain = jump_chain(blocks=16, block_size=3)
    plain = FetchUnit(chain.program, AlwaysNotTaken(), width=16)
    traced = FetchUnit(
        chain.program, AlwaysNotTaken(), width=16,
        trace_cache=TraceCache(num_sets=128, trace_length=16, max_branches=3),
    )

    def fetch_all(fetch) -> int:
        cycles = 0
        while not fetch.stalled() and cycles < 200:
            fetch.fetch_cycle()
            cycles += 1
        return cycles

    cold = fetch_all(traced)       # first pass fills the trace cache
    traced.redirect(0)
    warm = fetch_all(traced)
    conventional = fetch_all(plain)
    print(f"cycles to fetch {len(chain.program)} instructions across 16 jumps (16-wide):")
    print(f"  conventional fetch:     {conventional} cycles (stops at every taken jump)")
    print(f"  trace cache, cold pass: {cold} cycles")
    print(f"  trace cache, warm pass: {warm} cycles "
          f"({traced.trace_cache.stats.hits} hits)")


if __name__ == "__main__":
    main()
