"""Property tests for the memory system: every cache configuration must
behave exactly like a flat memory, under arbitrary request interleavings."""

from hypothesis import given, settings, strategies as st

from repro.memory.cluster_cache import ClusteredMemory
from repro.memory.interleaved_cache import InterleavedCache, MemoryRequest
from repro.network.fattree import FatTree, bandwidth_constant
from repro.util.bitops import WORD_MASK


@st.composite
def request_sequences(draw):
    """A sequence of (is_store, address, value, leaf) operations."""
    count = draw(st.integers(1, 30))
    ops = []
    for _ in range(count):
        ops.append(
            (
                draw(st.booleans()),
                4 * draw(st.integers(0, 15)),  # aligned, small address space
                draw(st.integers(0, WORD_MASK)),
                draw(st.integers(0, 7)),
            )
        )
    return ops


def flat_reference(ops):
    """What a flat memory would return for each load, plus final state."""
    memory: dict[int, int] = {}
    loads = []
    for is_store, address, value, _leaf in ops:
        if is_store:
            memory[address] = value
        else:
            loads.append(memory.get(address, 0))
    return loads, memory


@st.composite
def cache_configs(draw):
    return dict(
        banks=draw(st.sampled_from([1, 2, 4])),
        lines_per_bank=draw(st.sampled_from([1, 2, 8])),
        words_per_line=draw(st.sampled_from([1, 2, 4])),
        hit_latency=draw(st.integers(1, 3)),
    )


@given(request_sequences(), cache_configs())
@settings(max_examples=50, deadline=None)
def test_interleaved_cache_is_a_memory(ops, config):
    """Serial requests through any cache geometry = flat memory."""
    cache = InterleavedCache(**config)
    got_loads = []
    for rid, (is_store, address, value, leaf) in enumerate(ops):
        request = MemoryRequest(rid, address=address, is_store=is_store, value=value, leaf=leaf)
        cache.submit(request)
        cache.drain()
        if not is_store:
            got_loads.append(request.result)
    expected_loads, expected_memory = flat_reference(ops)
    assert got_loads == expected_loads
    cache.flush()
    for address, value in expected_memory.items():
        assert cache.memory.read_word(address) == value


@given(request_sequences())
@settings(max_examples=50, deadline=None)
def test_interleaved_cache_pipelined_requests(ops):
    """All requests submitted at once: loads see program-order stores...
    actually the cache serializes per bank FIFO, and requests to the same
    word through one bank keep submission order — the loads' results must
    match a flat memory executed in completion order per address."""
    cache = InterleavedCache(banks=2, lines_per_bank=4, words_per_line=2)
    requests = []
    for rid, (is_store, address, value, leaf) in enumerate(ops):
        request = MemoryRequest(rid, address=address, is_store=is_store, value=value, leaf=leaf)
        requests.append(request)
        cache.submit(request)
    cache.drain()
    # same-address operations share a bank, hence complete in submission
    # order: each load returns the latest earlier store to its address
    last_value: dict[int, int] = {}
    for request in requests:
        if request.is_store:
            last_value[request.address] = request.value & WORD_MASK
        else:
            assert request.result == last_value.get(request.address, 0)


@given(request_sequences())
@settings(max_examples=50, deadline=None)
def test_clustered_memory_is_a_memory(ops):
    """The write-through + invalidate protocol never serves stale data."""
    memory = ClusteredMemory(cluster_size=4, words_per_cluster=4, shared_latency=2)
    got_loads = []
    for is_store, address, value, leaf in ops:
        if is_store:
            rid = memory.submit_store(address, value, leaf=leaf)
        else:
            rid = memory.submit_load(address, leaf=leaf)
        result = None
        for _ in range(10):
            done = memory.tick()
            if rid in done:
                result = done[rid]
                break
        if not is_store:
            got_loads.append(result)
    expected_loads, expected_memory = flat_reference(ops)
    assert got_loads == expected_loads
    assert memory.final_state() == expected_memory


@given(
    st.lists(st.integers(0, 15), min_size=1, max_size=20),
    st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=50, deadline=None)
def test_fat_tree_admission_invariants(leaves, exponent):
    """Admission never exceeds the root capacity, preserves priority,
    and partitions requests exactly into granted + denied."""
    tree = FatTree(16, lambda s: float(s) ** exponent, radix=4)
    routing = tree.admit(leaves)
    assert sorted(routing.granted + routing.denied) == list(range(len(leaves)))
    assert len(routing.granted) <= tree.root_capacity() or len(leaves) <= tree.root_capacity()
    # oldest-first: every denied request is younger than some granted one
    # whenever anything was granted at all
    if routing.denied and routing.granted:
        assert routing.granted[0] < routing.denied[-1]
    # index 0 is always admitted (capacities are >= 1 everywhere)
    assert 0 in routing.granted


@given(st.lists(st.integers(0, 15), min_size=1, max_size=40))
@settings(max_examples=30, deadline=None)
def test_fat_tree_no_starvation(leaves):
    """Retrying denied requests round by round eventually admits all."""
    tree = FatTree(16, bandwidth_constant(1.0), radix=4)
    pending = list(leaves)
    rounds = 0
    while pending:
        routing = tree.admit(pending)
        assert routing.granted, "a round must always admit at least one request"
        pending = [pending[i] for i in routing.denied]
        rounds += 1
        assert rounds <= len(leaves)
