"""Machine parameterization: number of logical registers and word width.

The paper analyzes complexity as a function of ``L`` (logical registers,
an ISA property) and the register width ``w``; its empirical layouts use
``L = 32`` and ``w = 32``.  :class:`MachineSpec` carries those parameters
through every layer of the system — the assembler validates register
numbers against it, the datapaths size their prefix networks from it, and
the VLSI model derives wire counts from it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineSpec:
    """Architectural parameters shared by all processor models.

    Attributes:
        num_registers: ``L``, the number of logical registers.
        word_bits: ``w``, the register width in bits.
    """

    num_registers: int = 32
    word_bits: int = 32

    def __post_init__(self) -> None:
        if self.num_registers < 1:
            raise ValueError(f"need at least one register, got {self.num_registers}")
        if self.word_bits < 1:
            raise ValueError(f"word width must be positive, got {self.word_bits}")

    @property
    def L(self) -> int:
        """The paper's ``L`` — number of logical registers."""
        return self.num_registers

    @property
    def register_datapath_bits(self) -> int:
        """Bits carried per register through a datapath link: value + ready bit."""
        return self.word_bits + 1

    def validate_register(self, reg: int) -> int:
        """Return *reg* if it names a valid logical register, else raise."""
        if not 0 <= reg < self.num_registers:
            raise ValueError(
                f"register r{reg} out of range for machine with {self.num_registers} registers"
            )
        return reg


#: The configuration used throughout the paper's empirical section.
PAPER_MACHINE = MachineSpec(num_registers=32, word_bits=32)

#: The "modern RISC" configuration the paper cites (Alpha: 64 64-bit registers).
ALPHA_LIKE_MACHINE = MachineSpec(num_registers=64, word_bits=64)
