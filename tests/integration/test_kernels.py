"""Integration: realistic kernels run correctly on every processor.

Bubble sort (data-dependent branches), matrix multiply (nested loops),
and Fibonacci (tight serial loop) — with realistic predictors and both
memory systems.
"""

import pytest

from repro.frontend.branch_predictor import BimodalPredictor, GSharePredictor
from repro.isa.interpreter import MachineState, run_program
from repro.memory import ClusteredMemory
from repro.ultrascalar import (
    IdealMemory,
    ProcessorConfig,
    make_hybrid,
    make_ultrascalar1,
    make_ultrascalar2,
)
from repro.workloads import (
    bubble_sort,
    expected_matmul,
    fib_value,
    fibonacci,
    matmul,
    repeated_reduction,
)


def run_on(workload, kind="us1", predictor=None, memory=None, window=16):
    config = ProcessorConfig(window_size=window, fetch_width=4, max_cycles=5_000_000)
    mem = memory if memory is not None else IdealMemory()
    mem.load_image(workload.memory_image)
    kwargs = dict(config=config, memory=mem, initial_registers=workload.registers_for())
    if predictor is not None:
        kwargs["predictor"] = predictor
    if kind == "us1":
        return make_ultrascalar1(workload.program, **kwargs).run()
    if kind == "us2":
        return make_ultrascalar2(workload.program, **kwargs).run()
    return make_hybrid(workload.program, 4, **kwargs).run()


class TestBubbleSort:
    VALUES = [23, 5, 91, 1, 44, 17, 8, 62]

    @pytest.mark.parametrize("kind", ["us1", "us2", "hyb"])
    def test_sorts_on_every_processor(self, kind):
        workload = bubble_sort(self.VALUES)
        result = run_on(workload, kind)
        got = [result.memory[1024 + 4 * i] for i in range(len(self.VALUES))]
        assert got == sorted(self.VALUES)

    def test_with_bimodal_predictor(self):
        workload = bubble_sort(self.VALUES)
        result = run_on(workload, predictor=BimodalPredictor(size=64))
        got = [result.memory[1024 + 4 * i] for i in range(len(self.VALUES))]
        assert got == sorted(self.VALUES)
        assert result.mispredictions > 0  # data-dependent branches hurt

    def test_already_sorted_input_fast_path(self):
        workload = bubble_sort([1, 2, 3, 4])
        result = run_on(workload)
        got = [result.memory[1024 + 4 * i] for i in range(4)]
        assert got == [1, 2, 3, 4]

    def test_gshare_beats_static_on_sort(self):
        from repro.frontend.branch_predictor import AlwaysNotTaken

        workload = bubble_sort(self.VALUES)
        static = run_on(workload, predictor=AlwaysNotTaken())
        gshare = run_on(workload, predictor=GSharePredictor(size=256, history_bits=6))
        assert gshare.mispredictions < static.mispredictions


class TestMatmul:
    def test_matches_reference(self):
        workload = matmul(3)
        result = run_on(workload, window=32)
        for address, value in expected_matmul(3, workload).items():
            assert result.memory[address] == value

    def test_matches_golden_trace(self):
        workload = matmul(2)
        golden = run_program(
            workload.program,
            state=MachineState(workload.registers_for(), dict(workload.memory_image)),
        )
        result = run_on(workload)
        assert result.registers == golden.state.registers
        assert len(result.committed) == golden.dynamic_length

    def test_wider_window_helps(self):
        workload = matmul(3)
        narrow = run_on(workload, window=4)
        wide = run_on(workload, window=32)
        assert wide.cycles < narrow.cycles


class TestFibonacci:
    @pytest.mark.parametrize("n", [0, 1, 2, 7, 20])
    def test_values(self, n):
        result = run_on(fibonacci(n))
        assert result.registers[3] == fib_value(n)

    def test_serial_chain_caps_ipc(self):
        # the loop's recurrence (add -> mov) is a 2-op serial chain per
        # 5-op iteration, so the dataflow limit is 5/2 = 2.5 IPC; a wide
        # window reaches but cannot exceed it
        result = run_on(fibonacci(30), window=64)
        assert result.ipc == pytest.approx(2.5, abs=0.15)


class TestClusteredMemoryIntegration:
    def test_repeated_reduction_correct_and_saves_bandwidth(self):
        workload = repeated_reduction(8, 4)
        golden = run_program(
            workload.program,
            state=MachineState(workload.registers_for(), dict(workload.memory_image)),
        )
        memory = ClusteredMemory(cluster_size=8, shared_latency=6)
        result = run_on(workload, memory=memory)
        assert result.registers == golden.state.registers
        assert memory.stats.bandwidth_saved > 0.3

    def test_sort_correct_through_cluster_caches(self):
        workload = bubble_sort([9, 3, 7, 1])
        memory = ClusteredMemory(cluster_size=4, shared_latency=4)
        result = run_on(workload, memory=memory)
        got = [result.memory[1024 + 4 * i] for i in range(4)]
        assert got == [1, 3, 7, 9]

    def test_more_passes_more_savings(self):
        savings = []
        for passes in (1, 4, 8):
            workload = repeated_reduction(8, passes)
            memory = ClusteredMemory(cluster_size=16)
            run_on(workload, memory=memory)
            savings.append(memory.stats.bandwidth_saved)
        assert savings == sorted(savings)
        assert savings[-1] > savings[0]
