"""Profiling hooks: cProfile capture for any registered benchmark.

``python -m repro bench --profile`` wraps each selected benchmark's
thunk in a :class:`cProfile.Profile` (one untimed pass — profiling
overhead would poison the timings, so the profile pass is separate from
the measurement repeats) and writes two files per benchmark under the
profile directory:

* ``<name>.pstats`` — the binary profile, loadable with
  :mod:`pstats` or ``snakeviz``;
* ``<name>.collapsed.txt`` — collapsed-stack lines in the
  ``caller;callee <microseconds>`` format flamegraph tools accept
  (e.g. ``flamegraph.pl`` or speedscope).  cProfile records
  caller→callee edges rather than full stacks, so each line is a
  two-frame stack: the visualisation shows where time concentrates and
  who called it, not arbitrarily deep chains.

Benchmark names contain dots; file names keep them (they are safe on
every supported platform).
"""

from __future__ import annotations

import cProfile
import pstats
from pathlib import Path

from repro.bench.registry import Benchmark


def _frame_label(func: tuple[str, int, str]) -> str:
    """``file:line(name)`` condensed to ``module:name`` for stack lines."""
    filename, lineno, name = func
    if filename == "~":  # builtins have no file
        return name
    stem = Path(filename).stem
    return f"{stem}:{name}"


def collapsed_stacks(stats: pstats.Stats) -> list[str]:
    """Collapsed-stack lines from a profile, sorted for determinism.

    One line per observed caller→callee edge, weighted by the callee's
    total time attributed to that edge (microseconds, minimum 1 so
    every edge survives integer rounding); root functions (no caller
    recorded) emit a single-frame line weighted by their own total
    time.
    """
    lines: list[str] = []
    for func, (_cc, _nc, tt, _ct, callers) in stats.stats.items():
        label = _frame_label(func)
        if not callers:
            lines.append(f"{label} {max(1, int(tt * 1e6))}")
            continue
        for caller, (_ccc, _cnc, _ctt, cct) in callers.items():
            lines.append(
                f"{_frame_label(caller)};{label} {max(1, int(cct * 1e6))}"
            )
    return sorted(lines)


def profile_benchmark(
    benchmark: Benchmark, out_dir: str | Path
) -> tuple[Path, Path]:
    """Profile one benchmark; returns (pstats path, collapsed path)."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    thunk = benchmark.make()
    thunk()  # warm caches so the profile shows steady-state costs
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        thunk()
    finally:
        profiler.disable()
    pstats_path = out / f"{benchmark.name}.pstats"
    profiler.dump_stats(pstats_path)
    stats = pstats.Stats(profiler)
    collapsed_path = out / f"{benchmark.name}.collapsed.txt"
    collapsed_path.write_text(
        "\n".join(collapsed_stacks(stats)) + "\n", encoding="utf-8"
    )
    return pstats_path, collapsed_path
