"""Integration: the full gate-level datapath equals the processor's
behavioural register-view walk — the paper's claim that the CSPP
network provides "the full functionality of superscalar processors",
checked circuit-against-model.
"""

import random

import pytest

from repro.circuits.datapath import StationSnapshot, Ultrascalar1Datapath


def reference_views(stations, oldest, committed, L):
    """The RingProcessor view walk, restated independently."""
    n = len(stations)
    order = [(oldest + k) % n for k in range(n)]
    values = list(committed)
    ready = [True] * L
    views = {pos: None for pos in order}
    for pos in order:
        views[pos] = (list(values), list(ready))
        snapshot = stations[pos]
        if snapshot is not None and snapshot.writes_register is not None:
            r = snapshot.writes_register
            values[r] = snapshot.result if snapshot.done else 0
            ready[r] = snapshot.done
    return views


def reference_condition(stations, oldest, key):
    n = len(stations)
    order = [(oldest + k) % n for k in range(n)]
    out = {}
    acc = True
    for pos in order:
        out[pos] = acc if pos != oldest else True
        snapshot = stations[pos]
        value = True if snapshot is None else key(snapshot)
        acc = acc and value
    # recompute in scan form: out[pos] = AND of all older stations
    acc = True
    for idx, pos in enumerate(order):
        out[pos] = True if idx == 0 else acc
        snapshot = stations[pos]
        acc = acc and (True if snapshot is None else key(snapshot))
    return out


class TestDatapathEqualsModel:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_states(self, seed):
        rng = random.Random(seed)
        n, L, w = 8, 4, 4
        datapath = Ultrascalar1Datapath(n, L, value_bits=w)
        stations = []
        for _ in range(n):
            if rng.random() < 0.2:
                stations.append(None)
            else:
                stations.append(
                    StationSnapshot(
                        writes_register=rng.choice([None] + list(range(L))),
                        result=rng.randrange(1 << w),
                        done=rng.random() < 0.6,
                        finished_store=rng.random() < 0.7,
                        finished_memory=rng.random() < 0.7,
                    )
                )
        oldest = rng.randrange(n)
        committed = [rng.randrange(1 << w) for _ in range(L)]

        outputs = datapath.step(stations, oldest, committed)
        views = reference_views(stations, oldest, committed, L)

        for pos in range(n):
            if pos == oldest:
                continue  # the oldest ignores incoming values
            expect_values, expect_ready = views[pos]
            for r in range(L):
                got_value, got_ready = outputs.incoming[pos][r]
                assert got_ready == expect_ready[r], (pos, r)
                if expect_ready[r]:
                    assert got_value == expect_values[r], (pos, r)

        done_ref = reference_condition(stations, oldest, lambda s: s.done)
        store_ref = reference_condition(stations, oldest, lambda s: s.finished_store)
        mem_ref = reference_condition(stations, oldest, lambda s: s.finished_memory)
        for pos in range(n):
            assert outputs.all_earlier_done[pos] == done_ref[pos], pos
            assert outputs.stores_done[pos] == store_ref[pos], pos
            assert outputs.memory_done[pos] == mem_ref[pos], pos

    def test_oldest_receives_committed_file(self):
        n, L, w = 4, 2, 4
        datapath = Ultrascalar1Datapath(n, L, value_bits=w)
        stations = [
            StationSnapshot(writes_register=0, result=9, done=True) for _ in range(n)
        ]
        outputs = datapath.step(stations, oldest=1, committed_registers=[3, 7])
        # station 2 (just younger than oldest=1) sees the committed file
        # overlaid by station 1's write of r0
        assert outputs.incoming[2][0] == (9, True)
        assert outputs.incoming[2][1] == (7, True)

    def test_unready_write_blocks_value(self):
        datapath = Ultrascalar1Datapath(4, 2, value_bits=4)
        stations = [
            StationSnapshot(writes_register=None, result=0, done=True),
            StationSnapshot(writes_register=0, result=5, done=False),  # pending
            StationSnapshot(writes_register=None, result=0, done=False),
            None,
        ]
        outputs = datapath.step(stations, oldest=0, committed_registers=[1, 2])
        # r0 not ready (its value is a don't-care until the ready bit rises)
        assert outputs.incoming[2][0][1] is False
        assert outputs.incoming[2][1] == (2, True)   # r1 from committed file

    def test_settle_time_logarithmic_in_n(self):
        times = []
        for n in (8, 16, 32):
            datapath = Ultrascalar1Datapath(n, 2, value_bits=2)
            stations = [
                StationSnapshot(writes_register=0, result=3, done=True)
                for _ in range(n)
            ]
            times.append(datapath.step(stations, 0, [1, 1]).settle_time)
        diffs = [b - a for a, b in zip(times, times[1:])]
        assert all(d <= 4 for d in diffs), times

    def test_gate_count_scales_with_L(self):
        small = Ultrascalar1Datapath(8, 2, value_bits=4).gate_count
        large = Ultrascalar1Datapath(8, 8, value_bits=4).gate_count
        # 4x the register trees; the three fixed sequencing trees dilute
        # the ratio below 4
        assert large > 2.5 * small

    def test_validation(self):
        datapath = Ultrascalar1Datapath(4, 2)
        with pytest.raises(ValueError):
            datapath.step([None] * 3, 0, [0, 0])
        with pytest.raises(ValueError):
            datapath.step([None] * 4, 0, [0])
        with pytest.raises(ValueError):
            datapath.step([None] * 4, 9, [0, 0])
        with pytest.raises(ValueError):
            Ultrascalar1Datapath(0, 2)
