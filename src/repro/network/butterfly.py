"""A butterfly network — the paper's alternative memory interconnect.

An ``n``-input, ``n``-output butterfly with ``log2 n`` switch stages.
Deterministic destination-tag routing: at stage ``k`` a packet follows
the straight or cross edge according to bit ``k`` of its destination.
Two packets conflict when they need the same output port of the same
switch in the same cycle; :meth:`ButterflyNetwork.route_batch` reports
which of a batch of packets can proceed conflict-free (oldest first),
mirroring :meth:`repro.network.fattree.FatTree.admit`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class ButterflyRouting:
    """Result of routing one batch through the butterfly."""

    granted: tuple[int, ...]
    denied: tuple[int, ...]
    #: per granted request, the switch path as (stage, row) pairs
    paths: dict[int, tuple[tuple[int, int], ...]]


class ButterflyNetwork:
    """A radix-2 butterfly over ``n = 2**stages`` terminals."""

    def __init__(self, n: int):
        if n < 2 or n & (n - 1):
            raise ValueError(f"butterfly size must be a power of two >= 2, got {n}")
        self.n = n
        self.stages = n.bit_length() - 1

    def path(self, source: int, destination: int) -> tuple[tuple[int, int], ...]:
        """Switch (stage, row) sequence from *source* to *destination*.

        Destination-tag routing: after stage ``k`` the packet's row agrees
        with the destination in bits ``0..k``.
        """
        if not (0 <= source < self.n and 0 <= destination < self.n):
            raise ValueError("terminal out of range")
        row = source
        hops = []
        for stage in range(self.stages):
            # fix bit `stage` of the row to match the destination
            bit = 1 << stage
            row = (row & ~bit) | (destination & bit)
            hops.append((stage, row))
        return tuple(hops)

    def route_batch(self, requests: Sequence[tuple[int, int]]) -> ButterflyRouting:
        """Route a batch of (source, destination) pairs, oldest first.

        A request is denied if any (stage, row) output port on its path is
        already taken this cycle.
        """
        used: set[tuple[int, int]] = set()
        granted: list[int] = []
        denied: list[int] = []
        paths: dict[int, tuple[tuple[int, int], ...]] = {}
        for index, (source, destination) in enumerate(requests):
            hops = self.path(source, destination)
            if any(hop in used for hop in hops):
                denied.append(index)
            else:
                used.update(hops)
                granted.append(index)
                paths[index] = hops
        return ButterflyRouting(granted=tuple(granted), denied=tuple(denied), paths=paths)

    @property
    def switch_count(self) -> int:
        """Total 2x2 switches: (n/2) switches per stage x stages."""
        return (self.n // 2) * self.stages


class ButterflyFrontEnd:
    """Adapter: a butterfly as the cache's admission network.

    The paper proposes connecting stations to memory "via two fat-tree
    or butterfly networks"; :class:`repro.memory.interleaved_cache.
    InterleavedCache` accepts either through the same ``admit`` duck
    type.  Each memory request routes from its station's terminal to its
    bank's terminal; conflicting requests retry next cycle.
    """

    def __init__(self, n: int, banks: int):
        if banks < 1:
            raise ValueError("need at least one bank")
        self.network = ButterflyNetwork(n)
        self.banks = banks
        self.n = n

    def admit(self, leaves, banks=None):
        """Route one cycle of requests (oldest first).

        *leaves* are source terminals; *banks* the per-request target
        banks (defaults to leaf order when the caller cannot supply
        them).  Returns an object with ``granted``/``denied`` index
        tuples, mirroring :class:`repro.network.fattree.FatTreeRouting`.
        """
        if banks is None:
            banks = [0] * len(leaves)
        pairs = [
            (leaf % self.n, (self.n - self.banks) + (bank % self.banks))
            for leaf, bank in zip(leaves, banks)
        ]
        routing = self.network.route_batch(pairs)
        from repro.network.fattree import FatTreeRouting

        return FatTreeRouting(granted=routing.granted, denied=routing.denied)
