"""The :class:`Program` container: instructions plus label metadata."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.isa.instruction import Instruction
from repro.isa.registers import MachineSpec


@dataclass(frozen=True)
class Program:
    """An assembled program.

    Branch/jump targets are static instruction indices into
    :attr:`instructions`; ``labels`` maps label names to indices for
    debugging and disassembly.
    """

    instructions: tuple[Instruction, ...]
    labels: dict[str, int] = field(default_factory=dict)
    spec: MachineSpec = field(default_factory=MachineSpec)

    def __post_init__(self) -> None:
        for index, inst in enumerate(self.instructions):
            for reg in (*inst.reads, *inst.writes):
                try:
                    self.spec.validate_register(reg)
                except ValueError as exc:
                    raise ValueError(f"instruction {index} ({inst}): {exc}") from exc
            if inst.target is not None and not 0 <= inst.target <= len(self.instructions):
                raise ValueError(
                    f"instruction {index} ({inst}): target {inst.target} out of range"
                )

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def disassemble(self) -> str:
        """Render the program as assembly text with label annotations."""
        index_to_labels: dict[int, list[str]] = {}
        for name, index in self.labels.items():
            index_to_labels.setdefault(index, []).append(name)
        lines = []
        for index, inst in enumerate(self.instructions):
            for name in sorted(index_to_labels.get(index, [])):
                lines.append(f"{name}:")
            lines.append(f"  {inst}")
        for name in sorted(index_to_labels.get(len(self.instructions), [])):
            lines.append(f"{name}:")
        return "\n".join(lines)

    @staticmethod
    def from_instructions(
        instructions: Sequence[Instruction], spec: MachineSpec | None = None
    ) -> "Program":
        """Build a :class:`Program` from a plain instruction sequence."""
        return Program(tuple(instructions), {}, spec or MachineSpec())
