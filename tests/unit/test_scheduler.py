"""Unit tests for the Memo-2 prioritized shared-ALU scheduler."""

import pytest

from repro.ultrascalar.scheduler import AddOp, SchedulerCircuit, prioritized_grants


class TestBehavioural:
    def test_everyone_wins_with_enough_alus(self):
        assert prioritized_grants([True] * 4, 0, 4) == [True] * 4

    def test_oldest_wins_with_one_alu(self):
        grants = prioritized_grants([True, True, True], 0, 1)
        assert grants == [True, False, False]

    def test_priority_follows_oldest_pointer(self):
        grants = prioritized_grants([True, True, True], 2, 1)
        assert grants == [False, False, True]

    def test_wraparound_priority(self):
        # oldest = 2; ring order 2, 3, 0, 1; requests at 0 and 3; one ALU
        grants = prioritized_grants([True, False, False, True], 2, 1)
        assert grants == [False, False, False, True]

    def test_non_requesters_never_granted(self):
        grants = prioritized_grants([False, True, False, True], 0, 4)
        assert grants == [False, True, False, True]

    def test_zero_alus(self):
        assert prioritized_grants([True, True], 0, 0) == [False, False]

    def test_exact_count_granted(self):
        grants = prioritized_grants([True] * 6, 0, 3)
        assert grants == [True, True, True, False, False, False]

    def test_validation(self):
        with pytest.raises(ValueError):
            prioritized_grants([True], 5, 1)
        with pytest.raises(ValueError):
            prioritized_grants([True], 0, -1)


class TestCircuit:
    @pytest.mark.parametrize("n,k", [(2, 1), (4, 2), (5, 3), (8, 1), (8, 8)])
    def test_matches_behavioural_exhaustively(self, n, k):
        circuit = SchedulerCircuit(n, k)
        for mask in range(2**n):
            requests = [bool((mask >> i) & 1) for i in range(n)]
            for oldest in range(0, n, max(1, n // 3)):
                expected = prioritized_grants(requests, oldest, k)
                assert circuit.evaluate(requests, oldest) == expected, (
                    requests, oldest, k
                )

    def test_more_alus_than_stations_clamped(self):
        circuit = SchedulerCircuit(3, 10)
        assert circuit.num_alus == 3
        assert circuit.evaluate([True] * 3, 0) == [True] * 3

    def test_gate_count_reported(self):
        assert SchedulerCircuit(8, 2).gate_count > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SchedulerCircuit(0, 1)
        with pytest.raises(ValueError):
            SchedulerCircuit(4, 0)
        circuit = SchedulerCircuit(4, 2)
        with pytest.raises(ValueError):
            circuit.evaluate([True] * 3, 0)
        with pytest.raises(ValueError):
            circuit.evaluate([True] * 4, 9)


class TestAddOp:
    def test_combine_adds(self):
        from repro.circuits.netlist import Netlist, bus, bus_value

        nl = Netlist()
        a = bus(nl, "a", 4)
        b = bus(nl, "b", 4)
        out = AddOp(4).combine(nl, a, b)
        assignment = {}
        for i in range(4):
            assignment[a[i]] = bool((5 >> i) & 1)
            assignment[b[i]] = bool((6 >> i) & 1)
        assert bus_value(nl.simulate(assignment), out) == 11
