"""E14/E15 — end-to-end performance projection and the large-window
ILP study the paper calls for."""

from repro.experiments import ilp_limits, performance_projection


def test_bench_performance_projection(once):
    outcome = once(performance_projection.run)
    print()
    print(performance_projection.report())
    # the quadratic conventional machine wins small, then collapses —
    # exactly why it was built in 1999 and why it cannot scale
    assert outcome.conventional_collapses()
    # at the largest window, the hybrid posts the best projection
    assert outcome.hybrid_wins_at_scale()


def test_bench_hybrid_beats_us1_in_projection_everywhere(once):
    outcome = once(performance_projection.run)
    for row in outcome.rows:
        assert row.hybrid.instructions_per_time >= row.us1.instructions_per_time


def test_bench_clock_periods_ordering(once):
    """Clock periods: hybrid <= US-I at scale; all grow with n."""
    outcome = once(performance_projection.run)
    us1_periods = [row.us1.clock.period for row in outcome.rows]
    hybrid_periods = [row.hybrid.clock.period for row in outcome.rows]
    assert us1_periods == sorted(us1_periods)
    assert hybrid_periods == sorted(hybrid_periods)
    assert hybrid_periods[-1] < us1_periods[-1]


def test_bench_ilp_limits(once):
    outcome = once(ilp_limits.run)
    print()
    print(ilp_limits.report())
    assert all(curve.monotone() for curve in outcome.curves)
    assert outcome.looser_code_has_more_ilp()
    # the thousand-wide-window claim (Patt et al., as the paper cites):
    # 128 -> 2048 still multiplies IPC by >= 1.5x at every density
    assert outcome.thousand_wide_window_pays(factor=1.5)
