"""Clock-period and end-to-end performance projection.

The paper: "The only differences between the processors are in their
VLSI complexities, which include gate delays, wire delays, and area,
and which have implications therefore on clock speeds."

This module combines the two delay components the paper's Figure 11
separates — gate delay (measured or from the Θ-expressions) and wire
delay (from the layout models, linear in wire length with repeaters) —
into a projected clock period, and multiplies by simulated IPC to get
the end-to-end projection: instructions per (arbitrary) time unit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.vlsi.grid_layout import Ultrascalar2Layout
from repro.vlsi.htree_layout import Ultrascalar1Layout
from repro.vlsi.hybrid_layout import HybridLayout
from repro.vlsi.tech import Technology, PAPER_TECH
from repro.vlsi.wires import wire_delay


@dataclass(frozen=True)
class ClockProjection:
    """One design point's projected timing."""

    processor: str
    n: int
    L: int
    gate_delays: float
    wire_delay_units: float

    @property
    def period(self) -> float:
        """Clock period in gate-delay units: gates + repeatered wires.

        One Ultrascalar clock must settle the whole datapath ("all
        communications between components being completed in one clock
        cycle"), so the period is the critical gate path plus the
        critical wire's delay.
        """
        return self.gate_delays + self.wire_delay_units

    @property
    def frequency(self) -> float:
        """Relative clock frequency (1 / period)."""
        return 1.0 / self.period


def _log2(x: float) -> float:
    return math.log2(max(2.0, x))


def project_ultrascalar1(n: int, L: int, tech: Technology = PAPER_TECH) -> ClockProjection:
    """US-I: Θ(log n) gates + H-tree critical wire."""
    layout = Ultrascalar1Layout(n, L, tech=tech)
    return ClockProjection(
        processor="ultrascalar1",
        n=n,
        L=L,
        gate_delays=2.0 * _log2(n),  # CSPP up + down sweeps
        wire_delay_units=wire_delay(layout.critical_wire, tech),
    )


def project_ultrascalar2(
    n: int, L: int, variant: str = "mixed", tech: Technology = PAPER_TECH
) -> ClockProjection:
    """US-II: variant-dependent gates + grid critical wire."""
    layout = Ultrascalar2Layout(n, L, variant=variant, tech=tech)
    return ClockProjection(
        processor=f"ultrascalar2-{variant}",
        n=n,
        L=L,
        gate_delays=layout.gate_delay(),
        wire_delay_units=wire_delay(layout.critical_wire, tech),
    )


def project_hybrid(
    n: int, L: int, cluster_size: int | None = None, tech: Technology = PAPER_TECH
) -> ClockProjection:
    """Hybrid: cluster grid gates + inter-cluster CSPP gates + U(n) wire."""
    c = cluster_size if cluster_size is not None else min(L, n)
    while n % c:
        c //= 2
    layout = HybridLayout(n, max(1, c), L, tech=tech)
    cluster_gates = layout.cluster.gate_delay()
    tree_gates = 2.0 * _log2(max(1, n // max(1, c)))
    return ClockProjection(
        processor="hybrid",
        n=n,
        L=L,
        gate_delays=cluster_gates + tree_gates,
        wire_delay_units=wire_delay(layout.critical_wire, tech),
    )


@dataclass(frozen=True)
class PerformanceProjection:
    """IPC x frequency: relative end-to-end throughput."""

    clock: ClockProjection
    ipc: float

    @property
    def instructions_per_time(self) -> float:
        """Relative performance: IPC / period."""
        return self.ipc * self.clock.frequency


def performance(clock: ClockProjection, ipc: float) -> PerformanceProjection:
    """Bundle a clock projection with a simulated IPC."""
    if ipc < 0:
        raise ValueError("ipc must be non-negative")
    return PerformanceProjection(clock=clock, ipc=ipc)
