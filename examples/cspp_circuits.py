"""Build and measure the paper's circuits at gate level.

Usage::

    python examples/cspp_circuits.py

Constructs the mux ring (Figure 1), the CSPP tree (Figure 4), and both
Ultrascalar II grids (Figures 7 and 8) as real netlists; checks they
compute identical results; and measures their settle times with the
event-driven simulator — the paper's gate-delay claims, observed.
"""

from repro.circuits import MuxRing, GridNetwork, TreeGridNetwork
from repro.circuits.cspp import build_copy_cspp, cyclic_segmented_copy
from repro.circuits.grid import RegisterBinding, route_arguments
from repro.util.tables import Table


def main() -> None:
    # --- one register ring: station 2 wrote value 5, station 5 wrote 9 ---
    n = 8
    values = [0, 0, 5, 0, 0, 9, 0, 0]
    modified = [False, False, True, False, False, True, False, False]
    modified[0] = True  # the oldest station always inserts

    reference = cyclic_segmented_copy(values, modified)
    ring = MuxRing(n, width=4)
    tree = build_copy_cspp(n, width=4)
    assert ring.evaluate(values, modified) == reference
    assert tree.evaluate(values, modified) == reference
    print(f"ring/CSPP agree; incoming register values per station: {reference}")
    print(f"mux ring: {ring.gate_count} gates; CSPP tree: {tree.gate_count} gates")
    print()

    # --- settle-time growth: the scalability story in one table ---
    table = Table(
        ["n", "mux ring (Θ(n))", "CSPP tree (Θ(log n))"],
        title="Settle time in gate delays",
    )
    for size in (8, 16, 32, 64, 128):
        stimulus = [1] * size
        segments = [True] + [False] * (size - 1)
        table.add_row(
            [
                size,
                MuxRing(size, 1).settle_time(stimulus, segments),
                build_copy_cspp(size, 1).settle_time(stimulus, segments),
            ]
        )
    print(table.render())
    print()

    # --- an Ultrascalar II grid batch ---
    L = 8
    initial = [(r * 10, True) for r in range(L)]
    writes = [
        RegisterBinding(2, 0, False),   # station 0 writes r2, not ready yet
        RegisterBinding(1, 44, True),   # station 1 writes r1 = 44
        RegisterBinding(2, 99, True),   # station 2 writes r2 = 99
        None,                           # station 3 writes nothing
    ]
    reads = [[0, 1], [2, 3], [1, 2], [2, 1]]
    routed = route_arguments(L, initial, writes, reads)
    grid = GridNetwork(4, L, value_bits=8)
    tgrid = TreeGridNetwork(4, L, value_bits=8)
    assert grid.evaluate(initial, writes, reads) == routed
    assert tgrid.evaluate(initial, writes, reads) == routed
    print("Ultrascalar II routing (station: argument values):")
    for i, args in enumerate(routed.arguments):
        print(f"  station {i} reads {reads[i]} -> {args}")
    print(f"grid settle: linear={grid.settle_time(initial, writes, reads)} gate delays, "
          f"mesh-of-trees={tgrid.settle_time(initial, writes, reads)}")


if __name__ == "__main__":
    main()
