"""Experiment E5 — optimal hybrid cluster size (Section 6).

"To find the value of C that minimizes U(n), one can differentiate and
solve ... to conclude that the side-length is minimized when C = Θ(L)."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cluster import analytic_optimal_cluster, closed_form_sweep
from repro.util.tables import Table
from repro.vlsi.hybrid_layout import optimal_cluster_size


#: sweep points the runner executes and the cache keys (kwargs for
#: :func:`report`)
SWEEP_POINTS: list[dict] = [{"n": 4096}]


@dataclass
class ClusterSweepResult:
    """Empirical and closed-form optima per (n, L)."""

    n: int
    sweeps: dict[int, dict[int, float]]       # L -> {C: side}
    best: dict[int, int]                      # L -> best C (layout model)
    closed_form_best: dict[int, int]          # L -> best C (closed form)

    def optimum_tracks_L(self, slack: float = 4.0) -> bool:
        """Optimal C within a constant factor of L across all L."""
        return all(L / slack <= c <= L * slack for L, c in self.best.items())


def run(n: int = 4096, L_values: list[int] | None = None) -> ClusterSweepResult:
    """Sweep cluster sizes for several register-file sizes."""
    L_values = L_values or [8, 16, 32, 64]
    sweeps: dict[int, dict[int, float]] = {}
    best: dict[int, int] = {}
    closed_best: dict[int, int] = {}
    for L in L_values:
        chosen, sides = optimal_cluster_size(n, L)
        sweeps[L] = sides
        best[L] = chosen
        closed = closed_form_sweep(n, L)
        closed_best[L] = min(closed, key=closed.get)
    return ClusterSweepResult(n=n, sweeps=sweeps, best=best, closed_form_best=closed_best)


def report(n: int = 4096) -> str:
    """U(C) sweep table with the optima highlighted."""
    outcome = run(n)
    cluster_sizes = sorted(next(iter(outcome.sweeps.values())).keys())
    table = Table(
        ["C"] + [f"L={L}" for L in outcome.sweeps],
        title=f"E5 — hybrid side length U(C) in tracks at n={n} "
        "(* = minimum; paper: optimal C = Θ(L))",
    )
    for c in cluster_sizes:
        row = [c]
        for L, sides in outcome.sweeps.items():
            mark = "*" if outcome.best[L] == c else ""
            row.append(f"{sides[c]:,.0f}{mark}")
        table.add_row(row)
    footer = "\n" + "  ".join(
        f"L={L}: model C*={outcome.best[L]}, closed-form C*={outcome.closed_form_best[L]}, "
        f"analytic C*={analytic_optimal_cluster(L):.0f}"
        for L in outcome.sweeps
    )
    return table.render() + footer


if __name__ == "__main__":  # pragma: no cover
    print(report())
