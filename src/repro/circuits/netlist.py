"""Single-bit gate netlists with an event-driven timing simulator.

The simulator measures *settle time*: inputs are applied at time 0 with
every net initialized to 0, and events propagate until the netlist is
quiescent.  For acyclic circuits the settle time is bounded by the
topological critical path; for cyclic circuits (the mux rings and CSPP
trees of the paper, which tie the top of the tree around) the simulator
reaches the unique fixed point whenever one exists — which the
Ultrascalar constructions guarantee by always having at least one
segment bit set (the oldest station's).

Gate delays default to 1 unit each, so settle times are in "gate delays"
— the unit the paper's complexity results use.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence


class GateKind(enum.Enum):
    """Supported gate types (all single output)."""

    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    XOR = "xor"
    XNOR = "xnor"
    NAND = "nand"
    NOR = "nor"
    MUX = "mux"  # inputs (sel, a, b): sel ? a : b


_EVAL: dict[GateKind, Callable[[Sequence[bool]], bool]] = {
    GateKind.BUF: lambda ins: ins[0],
    GateKind.NOT: lambda ins: not ins[0],
    GateKind.AND: lambda ins: all(ins),
    GateKind.OR: lambda ins: any(ins),
    GateKind.XOR: lambda ins: sum(ins) % 2 == 1,
    GateKind.XNOR: lambda ins: sum(ins) % 2 == 0,
    GateKind.NAND: lambda ins: not all(ins),
    GateKind.NOR: lambda ins: not any(ins),
    GateKind.MUX: lambda ins: ins[1] if ins[0] else ins[2],
}

_ARITY: dict[GateKind, tuple[int, int]] = {
    GateKind.BUF: (1, 1),
    GateKind.NOT: (1, 1),
    GateKind.AND: (2, 64),
    GateKind.OR: (2, 64),
    GateKind.XOR: (2, 64),
    GateKind.XNOR: (2, 64),
    GateKind.NAND: (2, 64),
    GateKind.NOR: (2, 64),
    GateKind.MUX: (3, 3),
}


@dataclass(eq=False)
class Net:
    """A single-bit wire.  Primary inputs have ``driver is None``."""

    index: int
    name: str
    driver: "Gate | None" = None
    fanout: list["Gate"] = field(default_factory=list)

    def __repr__(self) -> str:
        return f"Net({self.name})"


@dataclass(eq=False)
class Gate:
    """A logic gate driving exactly one net."""

    index: int
    kind: GateKind
    inputs: tuple[Net, ...]
    output: Net
    delay: int = 1

    def evaluate(self, values: Sequence[bool]) -> bool:
        """Compute the output for the given ordered input values."""
        return _EVAL[self.kind](values)

    def __repr__(self) -> str:
        return f"Gate({self.kind.value}->{self.output.name})"


@dataclass
class SimulationResult:
    """Outcome of an event-driven simulation run."""

    #: final value of every net, keyed by net
    values: dict[Net, bool]
    #: time at which the last net changed value (0 if nothing toggled)
    settle_time: int
    #: number of gate evaluation events processed
    events: int

    def value_of(self, net: Net) -> bool:
        """Final value of *net*."""
        return self.values[net]


class Netlist:
    """A mutable netlist: create inputs, add gates, then simulate.

    The netlist may be cyclic; :meth:`simulate` runs to a fixed point.
    :meth:`topological_depth` is only available for acyclic netlists.
    """

    def __init__(self, name: str = "netlist"):
        self.name = name
        self.nets: list[Net] = []
        self.gates: list[Gate] = []
        self.inputs: list[Net] = []
        self.outputs: dict[str, Net] = {}
        self._const_cache: dict[bool, Net] = {}

    # -- construction -------------------------------------------------

    def add_input(self, name: str) -> Net:
        """Create a primary-input net."""
        net = Net(index=len(self.nets), name=name)
        self.nets.append(net)
        self.inputs.append(net)
        return net

    def add_gate(self, kind: GateKind, *inputs: Net, name: str | None = None, delay: int = 1) -> Net:
        """Add a gate; returns its output net."""
        lo, hi = _ARITY[kind]
        if not lo <= len(inputs) <= hi:
            raise ValueError(f"{kind.value} gate takes {lo}..{hi} inputs, got {len(inputs)}")
        if delay < 0:
            raise ValueError("gate delay must be non-negative")
        out = Net(index=len(self.nets), name=name or f"{kind.value}{len(self.gates)}")
        self.nets.append(out)
        gate = Gate(index=len(self.gates), kind=kind, inputs=tuple(inputs), output=out, delay=delay)
        out.driver = gate
        self.gates.append(gate)
        for net in inputs:
            net.fanout.append(gate)
        return out

    def constant(self, value: bool) -> Net:
        """A net tied to a constant (modelled as an input the simulator pins)."""
        if value not in self._const_cache:
            self._const_cache[value] = self.add_input(f"const_{int(value)}")
        return self._const_cache[value]

    def mark_output(self, name: str, net: Net) -> Net:
        """Give *net* an externally-visible output name."""
        self.outputs[name] = net
        return net

    # -- convenience builders -----------------------------------------

    def mux(self, sel: Net, a: Net, b: Net, name: str | None = None) -> Net:
        """``sel ? a : b`` as a single MUX gate."""
        return self.add_gate(GateKind.MUX, sel, a, b, name=name)

    def reduce_tree(self, kind: GateKind, nets: Sequence[Net], name: str | None = None) -> Net:
        """Balanced binary reduction tree of *kind* gates over *nets*."""
        if not nets:
            raise ValueError("cannot reduce zero nets")
        level = list(nets)
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(self.add_gate(kind, level[i], level[i + 1]))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        if name and level[0].driver is not None:
            level[0].name = name
        return level[0]

    # -- analysis ------------------------------------------------------

    @property
    def gate_count(self) -> int:
        """Total number of gates."""
        return len(self.gates)

    def is_cyclic(self) -> bool:
        """True if the gate graph contains a cycle."""
        try:
            self._topo_order()
            return False
        except ValueError:
            return True

    def _topo_order(self) -> list[Gate]:
        indegree: dict[Gate, int] = {}
        for gate in self.gates:
            indegree[gate] = sum(1 for net in gate.inputs if net.driver is not None)
        ready = [gate for gate, deg in indegree.items() if deg == 0]
        order: list[Gate] = []
        while ready:
            gate = ready.pop()
            order.append(gate)
            for successor in gate.output.fanout:
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    ready.append(successor)
        if len(order) != len(self.gates):
            raise ValueError("netlist is cyclic")
        return order

    def topological_depth(self) -> int:
        """Critical-path length in gate delays (acyclic netlists only)."""
        depth: dict[Net, int] = {net: 0 for net in self.inputs}
        for gate in self._topo_order():
            depth[gate.output] = gate.delay + max(
                (depth.get(net, 0) for net in gate.inputs), default=0
            )
        return max(depth.values(), default=0)

    # -- simulation ----------------------------------------------------

    def simulate(
        self,
        assignments: dict[Net, bool],
        max_time: int = 1_000_000,
    ) -> SimulationResult:
        """Event-driven simulation from an all-zeros initial state.

        *assignments* gives the value of every primary input (missing
        inputs default to 0; constants are pinned automatically).  Raises
        ``RuntimeError`` if the netlist has not settled by *max_time*
        (an oscillating cycle).
        """
        values: dict[Net, bool] = {net: False for net in self.nets}
        for value, net in self._const_cache.items():
            values[net] = value
        for net, value in assignments.items():
            if net.driver is not None:
                raise ValueError(f"{net} is not a primary input")
            values[net] = bool(value)

        # Schedule every gate once at its delay; thereafter only on input
        # changes.  Evaluation is two-phase per timestamp: all gates due at
        # time t read the pre-t values, then all output changes commit
        # together — so a chain of unit-delay gates takes one time unit per
        # stage, as real hardware timing requires.
        queue: list[tuple[int, int]] = []  # (time, gate index)
        queued: set[tuple[int, int]] = set()

        def schedule(time: int, gate: Gate) -> None:
            key = (time, gate.index)
            if key not in queued:
                queued.add(key)
                heapq.heappush(queue, key)

        for gate in self.gates:
            schedule(gate.delay, gate)

        settle_time = 0
        events = 0
        while queue:
            time = queue[0][0]
            if time > max_time:
                raise RuntimeError(f"netlist {self.name!r} did not settle by t={max_time}")
            due: list[Gate] = []
            while queue and queue[0][0] == time:
                _, gate_index = heapq.heappop(queue)
                queued.discard((time, gate_index))
                due.append(self.gates[gate_index])
            updates: list[tuple[Gate, bool]] = []
            for gate in due:
                events += 1
                new_value = gate.evaluate([values[net] for net in gate.inputs])
                if new_value != values[gate.output]:
                    updates.append((gate, new_value))
            for gate, new_value in updates:
                values[gate.output] = new_value
            if updates:
                settle_time = max(settle_time, time)
                for gate, _ in updates:
                    for successor in gate.output.fanout:
                        schedule(time + successor.delay, successor)

        return SimulationResult(values=values, settle_time=settle_time, events=events)

    def simulate_words(
        self, assignments: dict[str, int], widths: dict[str, int] | None = None
    ) -> SimulationResult:
        """Convenience wrapper: assign multi-bit buses by input-name prefix.

        Inputs named ``foo[k]`` are treated as bit *k* of bus ``foo``.
        """
        by_bus: dict[str, dict[int, Net]] = {}
        for net in self.inputs:
            if "[" in net.name and net.name.endswith("]"):
                bus, _, rest = net.name.partition("[")
                by_bus.setdefault(bus, {})[int(rest[:-1])] = net
        flat: dict[Net, bool] = {}
        for bus, value in assignments.items():
            if bus not in by_bus:
                raise KeyError(f"no bus named {bus!r}")
            for bit, net in by_bus[bus].items():
                flat[net] = bool((value >> bit) & 1)
        return self.simulate(flat)


def bus(netlist: Netlist, name: str, width: int) -> list[Net]:
    """Create a *width*-bit primary-input bus named ``name[i]``."""
    return [netlist.add_input(f"{name}[{i}]") for i in range(width)]


def bus_value(result: SimulationResult, nets: Iterable[Net]) -> int:
    """Read an integer off an ordered little-endian list of nets."""
    value = 0
    for bit, net in enumerate(nets):
        if result.value_of(net):
            value |= 1 << bit
    return value
