"""The stable timing protocol behind every benchmark number.

Host-side timing is noisy; the protocol keeps the noise bounded and the
numbers comparable across commits:

* **monotonic clock** — ``time.perf_counter`` (the highest-resolution
  monotonic clock Python exposes);
* **GC disabled** — the collector is paused around every timed region
  and restored afterwards, so a collection pause never lands inside a
  repeat;
* **warmup** — untimed calls first, so import caches, allocator pools,
  and NumPy dispatch tables are hot before the first measurement;
* **repeats** — each benchmark is timed several times and the artifact
  keeps every repeat; comparisons use the *minimum* (least-noise
  estimate of the true cost) and the *median* (robust central value),
  never the mean of a cold first call.

:func:`host_fingerprint` captures where the numbers came from — two
artifacts are only comparable when their fingerprints broadly agree,
and the comparator warns when they do not.
"""

from __future__ import annotations

import gc
import os
import platform
import sys
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable


def host_fingerprint() -> dict[str, Any]:
    """Describe the machine and interpreter that produced a timing.

    Stored in every ``repro-bench/1`` artifact; the comparator prints a
    warning when the baseline's fingerprint differs (cross-host deltas
    measure the hosts, not the code).
    """
    try:
        import numpy
        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy_version,
    }


#: the protocol constants, recorded verbatim in the artifact
def protocol_description(repeats: int, warmup: int) -> dict[str, Any]:
    """The ``protocol`` artifact block for one run's settings."""
    return {
        "clock": "perf_counter",
        "gc_disabled": True,
        "warmup": warmup,
        "repeats": repeats,
    }


@dataclass(frozen=True)
class Timing:
    """Per-repeat wall-clock samples for one benchmark, in seconds."""

    repeats: tuple[float, ...]
    warmup: int

    @property
    def best_s(self) -> float:
        """The minimum repeat — the least-noise estimate."""
        return min(self.repeats)

    @property
    def median_s(self) -> float:
        """The median repeat — the robust central value."""
        ordered = sorted(self.repeats)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0

    @property
    def mean_s(self) -> float:
        """The arithmetic mean — recorded but never gated on."""
        return sum(self.repeats) / len(self.repeats)

    @property
    def total_s(self) -> float:
        """Time spent in timed repeats (excludes warmup)."""
        return sum(self.repeats)


def measure(
    fn: Callable[[], Any],
    *,
    repeats: int = 5,
    warmup: int = 1,
) -> Timing:
    """Time ``fn()`` under the protocol; returns every repeat.

    The GC is disabled only around the timed region (warmup runs with
    the collector in whatever state the caller left it), and its
    enabled/disabled state is restored even when *fn* raises.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    for _ in range(warmup):
        fn()
    samples: list[float] = []
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            start = perf_counter()
            fn()
            samples.append(perf_counter() - start)
    finally:
        if was_enabled:
            gc.enable()
    return Timing(repeats=tuple(samples), warmup=warmup)


@dataclass(frozen=True)
class BenchRecord:
    """One benchmark's full measurement: timing, counters, rates."""

    name: str
    group: str
    title: str
    metadata: dict[str, Any]
    timing: Timing
    #: aggregated telemetry counters from the untimed stats pass (empty
    #: for benchmarks that build no engines)
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def rates(self) -> dict[str, float]:
        """Derived work rates joining simulated work with host time.

        ``sim_cycles_per_s`` and ``sim_instructions_per_s`` appear when
        the stats pass observed the matching counters; both divide by
        the median repeat (the robust wall-clock estimate).
        """
        rates: dict[str, float] = {}
        median = self.timing.median_s
        if median <= 0.0:
            return rates
        cycles = self.stats.get("cycles", 0)
        if cycles:
            rates["sim_cycles_per_s"] = cycles / median
        committed = self.stats.get("commit.instructions", 0)
        if committed:
            rates["sim_instructions_per_s"] = committed / median
        return rates
