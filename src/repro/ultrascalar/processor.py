"""Shared processor configuration, results, and the three paper configurations.

The paper: "The three processors all implement identical instruction
sets, with identical scheduling policies.  The only differences between
the processors are in their VLSI complexities."  Behaviourally the one
place they differ is station refill: per-station (Ultrascalar I),
whole-batch (Ultrascalar II, no wrap-around), or per-cluster (hybrid).
The factories at the bottom build exactly those three configurations
over the shared engine components.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Instruction
from repro.isa.interpreter import StepOutcome
from repro.isa.latency import LatencyModel
from repro.isa.program import Program
from repro.frontend.branch_predictor import BranchPredictor, PerfectPredictor
from repro.ultrascalar.memsys import IdealMemory, MemorySystem


@dataclass
class ProcessorConfig:
    """Parameters common to every processor model.

    Attributes:
        window_size: ``n``, the number of execution stations.
        fetch_width: instructions fetched per cycle (the paper assumes
            fetch width scales with issue width).
        latencies: functional-unit latencies (defaults match Figure 3).
        num_alus: shared-ALU pool size (Ultrascalar Memo 2 scheduler);
            ``None`` replicates an ALU per station, as the paper's
            layouts do.  Separates window size from issue width.
        store_forwarding: enable memory renaming — loads whose nearest
            preceding store (in the window) matches their address take
            the value directly, skipping the memory system (the paper's
            Section 7 bandwidth-reduction suggestion).
        self_timed: distance-dependent register forwarding — a result
            reaches a consumer after a delay proportional to the H-tree
            distance between the stations, instead of one global clock
            (the paper's Section 7 self-timed discussion).
        max_cycles: watchdog against livelock in broken configurations.
    """

    window_size: int = 8
    fetch_width: int = 4
    latencies: LatencyModel = field(default_factory=LatencyModel)
    num_alus: int | None = None
    store_forwarding: bool = False
    self_timed: bool = False
    max_cycles: int = 1_000_000

    def __post_init__(self) -> None:
        if self.window_size < 1:
            raise ValueError("window size must be positive")
        if self.fetch_width < 1:
            raise ValueError("fetch width must be positive")
        if self.num_alus is not None and self.num_alus < 1:
            raise ValueError("num_alus must be positive when set")
        if self.max_cycles < 1:
            raise ValueError("max_cycles must be positive")


@dataclass(frozen=True)
class TimingRecord:
    """Per-dynamic-instruction timing, the raw material of Figure 3."""

    seq: int
    static_index: int
    instruction: Instruction
    fetch_cycle: int
    issue_cycle: int
    complete_cycle: int
    commit_cycle: int

    @property
    def execute_span(self) -> tuple[int, int]:
        """(first busy cycle, last busy cycle + 1) — a Figure 3 bar."""
        return (self.issue_cycle, self.complete_cycle + 1)


@dataclass
class ProcessorResult:
    """What a processor run produces."""

    cycles: int
    committed: list[StepOutcome]
    registers: list[int]
    memory: dict[int, int]
    timings: list[TimingRecord]
    halted: bool
    #: dynamic instructions squashed on mispredicted paths
    squashed: int = 0
    #: mispredicted branches detected
    mispredictions: int = 0
    #: loads satisfied by store-forwarding (memory renaming) instead of
    #: the memory system
    forwarded_loads: int = 0
    #: aggregated telemetry counters (empty under the default NullTracer;
    #: see docs/observability.md for the counter vocabulary)
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def instructions_committed(self) -> int:
        """Committed dynamic instruction count."""
        return len(self.committed)

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.instructions_committed / self.cycles if self.cycles else 0.0

    def timing_diagram(self, width: int = 60) -> str:
        """Render the committed instructions as a Figure 3 style bar chart."""
        if not self.timings:
            return "(no instructions)"
        horizon = max(t.complete_cycle for t in self.timings) + 1
        scale = max(1, -(-horizon // width))  # cycles per character
        lines = []
        for t in self.timings:
            start, end = t.execute_span
            bar = (
                " " * (start // scale)
                + "#" * max(1, (end - start + scale - 1) // scale)
            )
            lines.append(f"{str(t.instruction):24s} |{bar}")
        lines.append(f"{'':24s} +{'-' * (horizon // scale + 1)} ({horizon} cycles)")
        return "\n".join(lines)


def _default_predictor(program: Program) -> BranchPredictor:
    """Perfect prediction by default: isolates scheduling behaviour."""
    from repro.isa.interpreter import run_program

    golden = run_program(program)
    return PerfectPredictor.from_trace(golden.trace)


def make_ultrascalar1(
    program: Program,
    config: ProcessorConfig | None = None,
    predictor: BranchPredictor | None = None,
    memory: MemorySystem | None = None,
    initial_registers: list[int] | None = None,
    tracer=None,
    cycle_hook=None,
):
    """Build an Ultrascalar I: wrap-around ring, per-station refill."""
    from repro.ultrascalar.ring import RingProcessor

    return RingProcessor(
        program=program,
        config=config or ProcessorConfig(),
        predictor=predictor if predictor is not None else _default_predictor(program),
        memory=memory if memory is not None else IdealMemory(),
        cluster_size=1,
        initial_registers=initial_registers,
        tracer=tracer,
        cycle_hook=cycle_hook,
    )


def make_hybrid(
    program: Program,
    cluster_size: int,
    config: ProcessorConfig | None = None,
    predictor: BranchPredictor | None = None,
    memory: MemorySystem | None = None,
    initial_registers: list[int] | None = None,
    tracer=None,
    cycle_hook=None,
):
    """Build a hybrid Ultrascalar: Ultrascalar II clusters on an
    Ultrascalar I ring; stations refill a cluster at a time."""
    from repro.ultrascalar.ring import RingProcessor

    return RingProcessor(
        program=program,
        config=config or ProcessorConfig(),
        predictor=predictor if predictor is not None else _default_predictor(program),
        memory=memory if memory is not None else IdealMemory(),
        cluster_size=cluster_size,
        initial_registers=initial_registers,
        tracer=tracer,
        cycle_hook=cycle_hook,
    )


def make_ultrascalar2(
    program: Program,
    config: ProcessorConfig | None = None,
    predictor: BranchPredictor | None = None,
    memory: MemorySystem | None = None,
    initial_registers: list[int] | None = None,
    tracer=None,
    cycle_hook=None,
):
    """Build an Ultrascalar II: no wrap-around; the station batch refills
    only when every station in it has finished."""
    from repro.ultrascalar.us2 import BatchProcessor

    return BatchProcessor(
        program=program,
        config=config or ProcessorConfig(),
        predictor=predictor if predictor is not None else _default_predictor(program),
        memory=memory if memory is not None else IdealMemory(),
        initial_registers=initial_registers,
        tracer=tracer,
        cycle_hook=cycle_hook,
    )
