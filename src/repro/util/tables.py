"""Plain-text table rendering shared by the experiment drivers.

The benchmark harness reproduces the paper's tables (most prominently
Figure 11) as monospace text.  :class:`Table` does simple column sizing
with left-aligned first column and right-aligned numeric columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


def format_float(value: float, digits: int = 3) -> str:
    """Format *value* compactly: fixed-point when sensible, else scientific."""
    if value == 0:
        return "0"
    if abs(value) >= 10 ** (digits + 3) or abs(value) < 10 ** (-digits):
        return f"{value:.{digits}e}"
    return f"{value:,.{digits}g}"


def format_ratio(value: float) -> str:
    """Format a ratio such as an area improvement, e.g. ``11.3x``."""
    return f"{value:.1f}x"


@dataclass
class Table:
    """A simple monospace table builder.

    >>> t = Table(["n", "area"], title="demo")
    >>> t.add_row([8, 64])
    >>> print(t.render())  # doctest: +SKIP
    """

    headers: Sequence[str]
    title: str | None = None
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, cells: Iterable[object]) -> None:
        """Append a row; cells are stringified (floats via :func:`format_float`)."""
        row = []
        for cell in cells:
            if isinstance(cell, float):
                row.append(format_float(cell))
            else:
                row.append(str(cell))
        if len(row) != len(self.headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(self.headers)}")
        self.rows.append(row)

    def render(self) -> str:
        """Render the table (with title and rule lines) as a string."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt_line(cells: Sequence[str]) -> str:
            parts = []
            for i, cell in enumerate(cells):
                if i == 0:
                    parts.append(cell.ljust(widths[i]))
                else:
                    parts.append(cell.rjust(widths[i]))
            return "  ".join(parts)

        rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
        lines = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * len(self.title))
        lines.append(fmt_line(list(self.headers)))
        lines.append(rule)
        lines.extend(fmt_line(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
