"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro list                 # available experiments
    python -m repro fig3                 # one experiment's table(s)
    python -m repro all                  # everything
    python -m repro all --jobs 4         # fan out across worker processes
    python -m repro verify               # differential fuzz of all designs
                                         # (see `python -m repro verify -h`)
    python -m repro bench                # host-performance benchmarks
                                         # (see `python -m repro bench -h`)

Options::

    --list         registered experiments with their sweep points
    --jobs N       worker processes (default 1: run in-process)
    --json PATH    write a machine-readable run artifact (see docs)
    --trace PATH   write a Chrome trace-event JSON of the run (see docs)
    --cache-dir D  result cache location (default .repro_cache/)
    --no-cache     recompute everything; neither read nor write the cache
    --timeout S    per-job watchdog when --jobs > 1 (default 300)
    --retries N    extra attempts after a crash/timeout (default 1)

``--json`` and ``--trace`` turn on telemetry collection: each executed
job runs inside a tracing session and its aggregated counters appear in
the artifact (schema ``repro-runner/2``) and the trace event args.

Results are cached on disk keyed by (experiment, arguments, package
version), so a warm ``all`` replays instantly; a failing experiment is
reported on stderr and the rest still run (exit code 1).  Set
``REPRO_LOG=DEBUG`` (or ``INFO``) to see retry and cache decisions
that are normally silent (see :mod:`repro.util.log`).
"""

from __future__ import annotations

import argparse
import difflib
import sys
from collections.abc import Mapping
from time import perf_counter

from repro.runner.artifacts import write_artifact, write_run_trace
from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.runner.metrics import JobResult, format_summary
from repro.runner.pool import run_jobs
from repro.runner.registry import REGISTRY, build_jobs
from repro.util.log import get_logger, setup_cli_logging

log = get_logger("runner")


class _ExperimentIndex(Mapping):
    """Legacy view of the registry: key -> (title, report callable).

    Kept for importers of ``repro.__main__.EXPERIMENTS``; loads the
    experiment module only when its entry is actually accessed.
    """

    def __getitem__(self, key: str):
        spec = REGISTRY[key]
        return (spec.title, spec.load())

    def __iter__(self):
        return iter(REGISTRY)

    def __len__(self) -> int:
        return len(REGISTRY)


EXPERIMENTS = _ExperimentIndex()


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", add_help=False)
    parser.add_argument("name", nargs="?")
    parser.add_argument("-h", "--help", action="store_true", dest="help")
    parser.add_argument("--list", action="store_true", dest="list_experiments")
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--json", dest="json_path", default=None)
    parser.add_argument("--trace", dest="trace_path", default=None)
    parser.add_argument("--cache-dir", dest="cache_dir", default=DEFAULT_CACHE_DIR)
    parser.add_argument("--no-cache", action="store_true", dest="no_cache")
    parser.add_argument("--timeout", type=float, default=300.0)
    parser.add_argument("--retries", type=int, default=1)
    return parser


def _print_listing() -> None:
    print(__doc__)
    print("Experiments:")
    for key, spec in REGISTRY.items():
        print(f"  {key:10s} {spec.title}")


def _print_detailed_listing() -> None:
    """The ``--list`` view: every experiment with its sweep points."""
    print("Registered experiments:")
    for key, spec in REGISTRY.items():
        points = spec.sweep_points()
        print(f"  {key:10s} {spec.title}")
        print(f"  {'':10s} module {spec.module}, {len(points)} sweep point(s):")
        for index, point in enumerate(points):
            rendered = (
                ", ".join(f"{k}={v!r}" for k, v in point.items()) or "(no arguments)"
            )
            print(f"  {'':10s}   [{index + 1}] {rendered}")


def _unknown_experiment_message(name: str) -> str:
    """Error text for a bad experiment key, with did-you-mean help."""
    close = difflib.get_close_matches(name, list(REGISTRY), n=3, cutoff=0.4)
    hint = f" (did you mean: {', '.join(close)}?)" if close else ""
    return f"unknown experiment {name!r}{hint}; try `python -m repro --list`"


def main(argv: list[str] | None = None) -> int:
    """Dispatch one experiment (or ``all``); returns a process exit code."""
    args = sys.argv[1:] if argv is None else argv
    setup_cli_logging()
    if args and args[0] == "verify":
        # the verify subcommand owns its own option surface
        from repro.verify.cli import main as verify_main

        return verify_main(args[1:])
    if args and args[0] == "bench":
        # so does the bench subcommand
        from repro.bench.cli import main as bench_main

        return bench_main(args[1:])
    try:
        opts = _build_parser().parse_args(args)
    except SystemExit as exc:
        return exc.code if isinstance(exc.code, int) else 2
    if opts.list_experiments:
        _print_detailed_listing()
        return 0
    if opts.help or opts.name in (None, "list"):
        _print_listing()
        return 0
    name = opts.name
    if name != "all" and name not in REGISTRY:
        print(_unknown_experiment_message(name), file=sys.stderr)
        return 2

    specs = list(REGISTRY.values()) if name == "all" else [REGISTRY[name]]
    cache = None if opts.no_cache else ResultCache(opts.cache_dir)
    jobs = build_jobs(specs, cache=cache)
    show_headers = name == "all"

    def emit(result: JobResult) -> None:
        if show_headers and result.index == 0:
            print(f"\n{'=' * 70}\n{result.title}\n{'=' * 70}")
        if result.ok:
            print(result.output)
        else:
            log.error(
                "experiment %r %s after %d attempt(s)",
                result.experiment,
                result.status,
                result.attempts,
            )
            if result.error:
                log.error("%s", result.error.rstrip())

    start = perf_counter()
    results = run_jobs(
        jobs,
        workers=opts.jobs,
        cache=cache,
        timeout=opts.timeout,
        retries=opts.retries,
        on_result=emit,
        collect_stats=bool(opts.json_path or opts.trace_path),
    )
    print(
        format_summary(results, wall_time_s=perf_counter() - start),
        file=sys.stderr,
    )
    if opts.json_path:
        write_artifact(
            opts.json_path,
            results,
            workers=opts.jobs,
            cache_dir=None if cache is None else str(cache.root),
        )
    if opts.trace_path:
        write_run_trace(opts.trace_path, results)
    return 0 if all(r.ok for r in results) else 1


if __name__ == "__main__":
    raise SystemExit(main())
