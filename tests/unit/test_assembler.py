"""Unit tests for the two-pass assembler."""

import pytest

from repro.isa import AssemblerError, Opcode, assemble
from repro.isa.registers import MachineSpec


class TestBasic:
    def test_empty_source(self):
        assert len(assemble("")) == 0

    def test_single_instruction(self):
        program = assemble("add r1, r2, r3")
        assert len(program) == 1
        assert program[0].op is Opcode.ADD

    def test_comments_ignored(self):
        program = assemble("# a comment\nadd r1, r2, r3  ; trailing\n; full line\n")
        assert len(program) == 1

    def test_case_insensitive_mnemonics(self):
        program = assemble("ADD r1, r2, r3\nAdd r4, r5, r6")
        assert all(inst.op is Opcode.ADD for inst in program)

    def test_hex_immediates(self):
        program = assemble("li r1, 0x10\naddi r2, r1, -0x2")
        assert program[0].imm == 16
        assert program[1].imm == -2


class TestLabels:
    def test_forward_reference(self):
        program = assemble("beq r1, r2, end\nnop\nend: halt")
        assert program[0].target == 2

    def test_backward_reference(self):
        program = assemble("top: nop\nj top")
        assert program[1].target == 0

    def test_label_on_own_line(self):
        program = assemble("loop:\n  nop\n  j loop")
        assert program.labels["loop"] == 0

    def test_label_at_end_of_program(self):
        program = assemble("beq r1, r2, end\nend:")
        assert program[0].target == 1

    def test_numeric_target(self):
        program = assemble("j @0")
        assert program[0].target == 0

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("x: nop\nx: nop")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblerError, match="undefined"):
            assemble("j nowhere")

    def test_multiple_labels_same_line(self):
        program = assemble("a: b: nop\nj a\nj b")
        assert program[1].target == 0
        assert program[2].target == 0


class TestMemoryOperands:
    def test_load_offset(self):
        program = assemble("lw r1, 12(r2)")
        inst = program[0]
        assert (inst.rd, inst.rs1, inst.imm) == (1, 2, 12)

    def test_store_operands(self):
        program = assemble("sw r7, -4(r3)")
        inst = program[0]
        assert (inst.rs2, inst.rs1, inst.imm) == (7, 3, -4)

    def test_hex_offset(self):
        program = assemble("lw r1, 0x10(r2)")
        assert program[0].imm == 16

    def test_malformed_memory_operand(self):
        with pytest.raises(AssemblerError, match="offset"):
            assemble("lw r1, r2")


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble("frobnicate r1, r2")

    def test_bad_register(self):
        with pytest.raises(AssemblerError, match="expected register"):
            assemble("add r1, r2, 3")

    def test_register_out_of_range(self):
        with pytest.raises(AssemblerError, match="out of range"):
            assemble("add r1, r2, r99")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError, match="expected 3 operands"):
            assemble("add r1, r2")

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblerError, match="line 3"):
            assemble("nop\nnop\nbogus r1")


class TestMachineSpec:
    def test_small_machine_rejects_high_registers(self):
        spec = MachineSpec(num_registers=8)
        with pytest.raises(AssemblerError):
            assemble("add r1, r2, r9", spec=spec)

    def test_large_machine_accepts_high_registers(self):
        spec = MachineSpec(num_registers=64)
        program = assemble("add r63, r62, r61", spec=spec)
        assert program[0].rd == 63


class TestRoundTrip:
    def test_disassemble_reassemble(self):
        source = """
        start:
          li r1, 10
          li r2, 3
          div r3, r1, r2
          lw r4, 8(r3)
          sw r4, 0(r1)
          beq r1, r0, start
          j start
          halt
        """
        program = assemble(source)
        # disassembly prints targets numerically (@i), which reassemble as-is
        reassembled = assemble(program.disassemble())
        assert tuple(reassembled) == tuple(program)
