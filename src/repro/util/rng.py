"""Deterministic random-number generation for experiments and tests."""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 0x5CA1AB1E


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` seeded deterministically.

    ``None`` selects the project-wide default seed (*not* entropy), so two
    calls with no argument always produce identical streams; experiments
    stay reproducible without threading a seed through every call site.
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)
