"""Baselines the paper compares against.

* :mod:`repro.baseline.dataflow` -- an idealized out-of-order dataflow
  machine over the golden dynamic trace.  The paper claims the
  Ultrascalar timing "is exactly what would be produced in a traditional
  superscalar processor that has enough functional units"; the dataflow
  schedule is that machine, and the integration tests check the
  Ultrascalar I reproduces it cycle for cycle.
* :mod:`repro.baseline.complexity` -- the conventional-superscalar
  critical-path delay models of Palacharla, Jouppi & Smith (ISCA '97),
  whose quadratic growth in issue width and window size motivates the
  paper ("all the published circuits are at least quadratic delay").
"""

from repro.baseline.complexity import (
    ConventionalDelays,
    conventional_superscalar_delay,
)
from repro.baseline.dataflow import DataflowSchedule, ScheduledInstruction, dataflow_schedule

__all__ = [
    "ConventionalDelays",
    "conventional_superscalar_delay",
    "DataflowSchedule",
    "ScheduledInstruction",
    "dataflow_schedule",
]
