"""Property-based tests: every circuit equals its behavioural reference.

These are the load-bearing correctness arguments for the paper's central
claim that "each parallel prefix circuit has exactly the same
functionality and the same interface as the multiplexer ring that it has
replaced".
"""

from hypothesis import given, settings, strategies as st

from repro.circuits.cspp import (
    build_and_cspp,
    build_copy_cspp,
    cyclic_segmented_and,
    cyclic_segmented_copy,
)
from repro.circuits.grid import GridNetwork, RegisterBinding, TreeGridNetwork, route_arguments
from repro.circuits.mux_ring import MuxRing
from repro.circuits.netlist import Netlist
from repro.circuits.prefix import (
    CopyOp,
    assign_scan_inputs,
    build_linear_scan,
    build_tree_scan,
    cyclic_nearest_preceding_writer,
    np_cyclic_nearest_preceding_writer,
    read_scan_outputs,
    segmented_scan,
)

# Keep circuit sizes modest: netlist construction is O(n^2) for grids.
ring_inputs = st.integers(2, 12).flatmap(
    lambda n: st.tuples(
        st.lists(st.integers(0, 7), min_size=n, max_size=n),
        st.lists(st.booleans(), min_size=n, max_size=n).filter(any),
    )
)


@given(ring_inputs)
@settings(max_examples=40, deadline=None)
def test_mux_ring_equals_reference(data):
    xs, segs = data
    ring = MuxRing(len(xs), width=3)
    assert ring.evaluate(xs, segs) == cyclic_segmented_copy(xs, segs)


@given(ring_inputs)
@settings(max_examples=40, deadline=None)
def test_cspp_tree_equals_reference(data):
    xs, segs = data
    tree = build_copy_cspp(len(xs), width=3)
    assert tree.evaluate(xs, segs) == cyclic_segmented_copy(xs, segs)


@given(ring_inputs)
@settings(max_examples=40, deadline=None)
def test_cspp_tree_equals_mux_ring(data):
    """The paper's drop-in-replacement claim, tested directly."""
    xs, segs = data
    n = len(xs)
    assert build_copy_cspp(n, width=3).evaluate(xs, segs) == MuxRing(n, width=3).evaluate(xs, segs)


@given(ring_inputs)
@settings(max_examples=40, deadline=None)
def test_radix4_cspp_equals_binary(data):
    xs, segs = data
    n = len(xs)
    assert (
        build_copy_cspp(n, width=3, radix=4).evaluate(xs, segs)
        == build_copy_cspp(n, width=3, radix=2).evaluate(xs, segs)
    )


@given(
    st.integers(2, 12).flatmap(
        lambda n: st.tuples(
            st.lists(st.booleans(), min_size=n, max_size=n),
            st.lists(st.booleans(), min_size=n, max_size=n).filter(any),
        )
    )
)
@settings(max_examples=40, deadline=None)
def test_and_cspp_equals_reference(data):
    conditions, segs = data
    tree = build_and_cspp(len(conditions))
    got = [bool(v) for v in tree.evaluate([int(c) for c in conditions], segs)]
    assert got == cyclic_segmented_and(conditions, segs)


@given(
    st.integers(1, 10).flatmap(
        lambda n: st.tuples(
            st.lists(st.integers(0, 15), min_size=n, max_size=n),
            st.lists(st.booleans(), min_size=n, max_size=n),
            st.integers(0, 15),
        )
    )
)
@settings(max_examples=40, deadline=None)
def test_tree_scan_equals_linear_scan(data):
    xs, segs, initial = data
    n = len(xs)
    ref = segmented_scan(xs, segs, lambda a, b: a, initial)

    nl1 = Netlist()
    ports1 = build_linear_scan(nl1, n, CopyOp(4))
    out1 = read_scan_outputs(ports1, nl1.simulate(assign_scan_inputs(ports1, xs, segs, initial)))

    nl2 = Netlist()
    ports2 = build_tree_scan(nl2, n, CopyOp(4))
    out2 = read_scan_outputs(ports2, nl2.simulate(assign_scan_inputs(ports2, xs, segs, initial)))

    assert out1 == ref
    assert out2 == ref


@given(
    st.lists(st.booleans(), min_size=1, max_size=40).filter(any)
)
@settings(max_examples=60, deadline=None)
def test_np_cyclic_writer_matches_python(segs):
    import numpy as np

    expected = cyclic_nearest_preceding_writer(segs)
    got = np_cyclic_nearest_preceding_writer(np.asarray(segs, dtype=bool))
    assert got.tolist() == expected


@st.composite
def grid_cases(draw):
    n = draw(st.integers(1, 5))
    L = draw(st.integers(1, 6))
    initial = [
        (draw(st.integers(0, 7)), draw(st.booleans())) for _ in range(L)
    ]
    writes = [
        None
        if draw(st.booleans())
        else RegisterBinding(draw(st.integers(0, L - 1)), draw(st.integers(0, 7)), draw(st.booleans()))
        for _ in range(n)
    ]
    reads = [
        [draw(st.integers(0, L - 1)), draw(st.integers(0, L - 1))] for _ in range(n)
    ]
    return n, L, initial, writes, reads


@given(grid_cases())
@settings(max_examples=25, deadline=None)
def test_linear_grid_equals_reference(case):
    n, L, initial, writes, reads = case
    network = GridNetwork(n, L, value_bits=3)
    assert network.evaluate(initial, writes, reads) == route_arguments(L, initial, writes, reads)


@given(grid_cases())
@settings(max_examples=25, deadline=None)
def test_tree_grid_equals_reference(case):
    n, L, initial, writes, reads = case
    network = TreeGridNetwork(n, L, value_bits=3)
    assert network.evaluate(initial, writes, reads) == route_arguments(L, initial, writes, reads)
