"""Benchmark harness configuration.

Each ``test_bench_*`` file regenerates one of the paper's tables or
figures (see DESIGN.md §4) and asserts its qualitative shape — who
wins, by roughly what factor, where the crossovers fall.  Run with::

    pytest benchmarks/ --benchmark-only

Tables print into the captured output; add ``-s`` to see them live.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing.

    Most experiments are deterministic table generators; repeating them
    hundreds of times adds nothing, so benches use a single round unless
    they are measuring engine throughput.
    """

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
