"""The paper's Figure 11: the asymptotic comparison table, as evaluable data.

Each entry stores both the Θ-expression string (exactly as printed in
the paper) and a evaluable function of (n, L, M(n)) so experiments can
plot and compare the growth laws.  The hybrid column assumes C = Θ(L)
(the paper's "Hybrid (n = Ω(L))" column).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.analysis.regimes import Regime
from repro.util.tables import Table

Evaluator = Callable[[float, float, float], float]  # (n, L, M(n)) -> Theta value


def _log(x: float) -> float:
    return math.log2(max(2.0, x))


@dataclass(frozen=True)
class Figure11Row:
    """One (regime, processor, quantity) cell of Figure 11."""

    regime: Regime
    processor: str
    quantity: str
    formula: str
    evaluate: Evaluator


_PROCESSORS = ("ultrascalar1", "ultrascalar2-linear", "ultrascalar2-log", "hybrid")
_QUANTITIES = ("gate_delay", "wire_delay", "total_delay", "area")


def _rows() -> list[Figure11Row]:
    rows: list[Figure11Row] = []

    def add(regime: Regime, processor: str, quantity: str, formula: str,
            evaluate: Evaluator) -> None:
        rows.append(Figure11Row(regime, processor, quantity, formula, evaluate))

    for regime in Regime:
        # ---- gate delays: identical across regimes -----------------------
        add(regime, "ultrascalar1", "gate_delay", "Θ(log n)",
            lambda n, L, M: _log(n))
        add(regime, "ultrascalar2-linear", "gate_delay", "Θ(n + L)",
            lambda n, L, M: n + L)
        add(regime, "ultrascalar2-log", "gate_delay", "Θ(log(n + L))",
            lambda n, L, M: _log(n + L))
        add(regime, "hybrid", "gate_delay", "Θ(L + log n)",
            lambda n, L, M: L + _log(n))

        # ---- Ultrascalar II wire delays / areas: regime-independent ------
        add(regime, "ultrascalar2-linear", "wire_delay", "Θ(n + L)",
            lambda n, L, M: n + L)
        add(regime, "ultrascalar2-linear", "total_delay", "Θ(n + L)",
            lambda n, L, M: n + L)
        add(regime, "ultrascalar2-linear", "area", "Θ(n² + L²)",
            lambda n, L, M: n**2 + L**2)
        add(regime, "ultrascalar2-log", "wire_delay", "Θ((n + L) log(n + L))",
            lambda n, L, M: (n + L) * _log(n + L))
        add(regime, "ultrascalar2-log", "total_delay", "Θ((n + L) log(n + L))",
            lambda n, L, M: (n + L) * _log(n + L))
        add(regime, "ultrascalar2-log", "area", "Θ((n + L)² log²(n + L))",
            lambda n, L, M: (n + L) ** 2 * _log(n + L) ** 2)

    # ---- Ultrascalar I and hybrid: regime-dependent ----------------------
    # Case 1: M(n) = O(n^(1/2-eps))
    add(Regime.CASE1, "ultrascalar1", "wire_delay", "Θ(√n L)",
        lambda n, L, M: math.sqrt(n) * L)
    add(Regime.CASE1, "ultrascalar1", "total_delay", "Θ(√n L)",
        lambda n, L, M: math.sqrt(n) * L)
    add(Regime.CASE1, "ultrascalar1", "area", "Θ(n L²)",
        lambda n, L, M: n * L**2)
    add(Regime.CASE1, "hybrid", "wire_delay", "Θ(√(n L))",
        lambda n, L, M: math.sqrt(n * L))
    add(Regime.CASE1, "hybrid", "total_delay", "Θ(√(n L))",
        lambda n, L, M: math.sqrt(n * L))
    add(Regime.CASE1, "hybrid", "area", "Θ(n L)",
        lambda n, L, M: n * L)

    # Case 2: M(n) = Θ(n^(1/2))
    add(Regime.CASE2, "ultrascalar1", "wire_delay", "Θ(√n (L + log n))",
        lambda n, L, M: math.sqrt(n) * (L + _log(n)))
    add(Regime.CASE2, "ultrascalar1", "total_delay", "Θ(√n (L + log n))",
        lambda n, L, M: math.sqrt(n) * (L + _log(n)))
    add(Regime.CASE2, "ultrascalar1", "area", "Θ(n (L² + log² n))",
        lambda n, L, M: n * (L**2 + _log(n) ** 2))
    add(Regime.CASE2, "hybrid", "wire_delay", "Θ(√(n L))",
        lambda n, L, M: math.sqrt(n * L))
    add(Regime.CASE2, "hybrid", "total_delay", "Θ(√(n L))",
        lambda n, L, M: math.sqrt(n * L))
    add(Regime.CASE2, "hybrid", "area", "Θ(n L)",
        lambda n, L, M: n * L)

    # Case 3: M(n) = Ω(n^(1/2+eps))
    add(Regime.CASE3, "ultrascalar1", "wire_delay", "Θ(√n L + M(n))",
        lambda n, L, M: math.sqrt(n) * L + M)
    add(Regime.CASE3, "ultrascalar1", "total_delay", "Θ(√n L + M(n))",
        lambda n, L, M: math.sqrt(n) * L + M)
    add(Regime.CASE3, "ultrascalar1", "area", "Θ(n L² + M(n)²)",
        lambda n, L, M: n * L**2 + M**2)
    add(Regime.CASE3, "hybrid", "wire_delay", "Θ(√(n L) + M(n))",
        lambda n, L, M: math.sqrt(n * L) + M)
    add(Regime.CASE3, "hybrid", "total_delay", "Θ(√(n L) + M(n))",
        lambda n, L, M: math.sqrt(n * L) + M)
    add(Regime.CASE3, "hybrid", "area", "Θ(n L + M(n)²)",
        lambda n, L, M: n * L + M**2)

    return rows


#: every cell of the paper's Figure 11
FIGURE11: tuple[Figure11Row, ...] = tuple(_rows())


def lookup(regime: Regime, processor: str, quantity: str) -> Figure11Row:
    """Fetch one Figure 11 cell; raises KeyError when absent."""
    for row in FIGURE11:
        if row.regime is regime and row.processor == processor and row.quantity == quantity:
            return row
    raise KeyError(f"no Figure 11 entry for ({regime}, {processor}, {quantity})")


def figure11_table(regime: Regime) -> Table:
    """Render one regime's block of Figure 11 as a text table."""
    title = {
        Regime.CASE1: "M(n) = O(n^(1/2-eps))",
        Regime.CASE2: "M(n) = Θ(n^(1/2))",
        Regime.CASE3: "M(n) = Ω(n^(1/2+eps))",
    }[regime]
    table = Table(
        ["Quantity", "Ultrascalar I", "US II (linear)", "US II (log)", "Hybrid (n=Ω(L))"],
        title=f"Figure 11 — {title}",
    )
    label = {
        "gate_delay": "Gate Delay",
        "wire_delay": "Wire Delay",
        "total_delay": "Total Delay",
        "area": "Area",
    }
    for quantity in _QUANTITIES:
        cells = [label[quantity]]
        for processor in _PROCESSORS:
            cells.append(lookup(regime, processor, quantity).formula)
        table.add_row(cells)
    return table


def evaluate_cell(
    regime: Regime, processor: str, quantity: str, n: float, L: float, M: float
) -> float:
    """Evaluate one Figure 11 Θ-expression at concrete (n, L, M(n))."""
    return lookup(regime, processor, quantity).evaluate(n, L, M)
