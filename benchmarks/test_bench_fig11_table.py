"""E2 — regenerate the paper's Figure 11 comparison table and validate
its growth laws against the measured layout model."""

from repro.analysis.asymptotics import evaluate_cell, figure11_table
from repro.analysis.regimes import Regime
from repro.experiments import fig11_table


def test_bench_figure11_render_and_validate(once):
    validation = once(fig11_table.validate)
    print()
    print(fig11_table.report())
    # measured exponents match the paper's Case-1 growth laws
    assert abs(validation.us1_exponent - 0.5) < 0.06
    assert abs(validation.us2_exponent - 1.0) < 0.06
    assert abs(validation.hybrid_exponent - 0.5) < 0.08


def test_bench_figure11_dominance_relations(once):
    """The hybrid column dominates in every regime and every quantity."""

    def check():
        results = []
        for regime in Regime:
            for quantity in ("wire_delay", "total_delay", "area"):
                n, L = 1 << 16, 32
                m = {Regime.CASE1: 1.0, Regime.CASE2: n**0.5, Regime.CASE3: n**0.75}[regime]
                hybrid = evaluate_cell(regime, "hybrid", quantity, n, L, m)
                us1 = evaluate_cell(regime, "ultrascalar1", quantity, n, L, m)
                us2 = evaluate_cell(regime, "ultrascalar2-linear", quantity, n, L, m)
                results.append((regime, quantity, hybrid, us1, us2))
        return results

    results = once(check)
    for regime, quantity, hybrid, us1, us2 in results:
        assert hybrid <= us1 * 1.001, (regime, quantity)
        assert hybrid <= us2 * 1.001, (regime, quantity)


def test_bench_incomparability_of_us1_us2(once):
    """US-I and US-II each win somewhere: small n favours US-II wire
    delay, large n favours US-I (the paper's 'incomparable')."""

    def check():
        small_n, large_n, L = 64, 1 << 16, 64
        us1_small = evaluate_cell(Regime.CASE1, "ultrascalar1", "wire_delay", small_n, L, 1)
        us2_small = evaluate_cell(Regime.CASE1, "ultrascalar2-linear", "wire_delay", small_n, L, 1)
        us1_large = evaluate_cell(Regime.CASE1, "ultrascalar1", "wire_delay", large_n, L, 1)
        us2_large = evaluate_cell(Regime.CASE1, "ultrascalar2-linear", "wire_delay", large_n, L, 1)
        return us1_small, us2_small, us1_large, us2_large

    us1_small, us2_small, us1_large, us2_large = once(check)
    assert us2_small < us1_small   # small n: US-II wins
    assert us1_large < us2_large   # large n: US-I wins
