"""Log-log growth-exponent fitting.

Used throughout the experiments to turn measured series (settle times,
side lengths, wire lengths) into growth exponents comparable with the
paper's Θ-bounds: fit ``y = a x^k`` by least squares in log space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class LogLogFit:
    """Result of fitting ``y = a * x**exponent``."""

    exponent: float
    scale: float
    r_squared: float

    def predict(self, x: float) -> float:
        """Model value at *x*."""
        return self.scale * x**self.exponent


def fit_loglog(xs: Sequence[float], ys: Sequence[float]) -> LogLogFit:
    """Least-squares fit in log-log space.

    Raises ``ValueError`` on fewer than two points or non-positive data.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("log-log fit needs positive data")
    log_x = np.log(np.asarray(xs, dtype=float))
    log_y = np.log(np.asarray(ys, dtype=float))
    slope, intercept = np.polyfit(log_x, log_y, 1)
    predicted = slope * log_x + intercept
    total = np.sum((log_y - log_y.mean()) ** 2)
    residual = np.sum((log_y - predicted) ** 2)
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    return LogLogFit(exponent=float(slope), scale=float(math.exp(intercept)),
                     r_squared=float(r_squared))


def fit_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Just the growth exponent of :func:`fit_loglog`."""
    return fit_loglog(xs, ys).exponent


def is_logarithmic(xs: Sequence[float], ys: Sequence[float], tolerance: float = 0.2) -> bool:
    """Heuristic: does y grow like log x (rather than any power)?

    True when y is (a) far slower than sqrt growth and (b) well fitted
    by a linear model in log x.
    """
    if fit_exponent(xs, ys) > 0.35:
        return False
    log_x = np.log(np.asarray(xs, dtype=float))
    y = np.asarray(ys, dtype=float)
    slope, intercept = np.polyfit(log_x, y, 1)
    predicted = slope * log_x + intercept
    total = np.sum((y - y.mean()) ** 2)
    if total == 0:
        return True
    r_squared = 1.0 - np.sum((y - predicted) ** 2) / total
    return bool(r_squared > 1.0 - tolerance)
