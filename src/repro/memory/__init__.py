"""Memory-system substrates.

The paper connects the execution stations "to an interleaved data cache
and to an instruction trace cache via two fat-tree or butterfly
networks".  This subpackage provides cycle-level behavioural models of
those structures:

* :mod:`repro.memory.mainmem` -- a flat word-addressed backing store
  with configurable access latency.
* :mod:`repro.memory.interleaved_cache` -- a banked, word-interleaved,
  write-back data cache; one request per bank per cycle, bank conflicts
  and miss traffic modelled, fed through a fat-tree admission stage.
* :mod:`repro.memory.trace_cache` -- an instruction trace cache
  (Rotenberg et al.) that lets the fetch unit cross taken branches.
* :mod:`repro.memory.cluster_cache` -- the Section 7 suggestion: a data
  cache distributed among the clusters, cutting shared-memory bandwidth.
"""

from repro.memory.cluster_cache import ClusterCacheStats, ClusteredMemory
from repro.memory.interleaved_cache import CacheStats, InterleavedCache, MemoryRequest
from repro.memory.mainmem import MainMemory
from repro.memory.trace_cache import TraceCache, TraceCacheStats

__all__ = [
    "CacheStats",
    "ClusterCacheStats",
    "ClusteredMemory",
    "InterleavedCache",
    "MemoryRequest",
    "MainMemory",
    "TraceCache",
    "TraceCacheStats",
]
