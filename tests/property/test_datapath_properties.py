"""Property tests: the full gate-level datapath vs the behavioural walk."""

from hypothesis import given, settings, strategies as st

from repro.circuits.datapath import StationSnapshot, Ultrascalar1Datapath

N, L, W = 8, 3, 3

# one shared datapath instance (construction is the expensive part)
DATAPATH = Ultrascalar1Datapath(N, L, value_bits=W)


@st.composite
def datapath_states(draw):
    stations = []
    for _ in range(N):
        if draw(st.booleans()) or draw(st.booleans()):  # 75% occupied
            stations.append(
                StationSnapshot(
                    writes_register=draw(st.one_of(st.none(), st.integers(0, L - 1))),
                    result=draw(st.integers(0, (1 << W) - 1)),
                    done=draw(st.booleans()),
                    finished_store=draw(st.booleans()),
                    finished_memory=draw(st.booleans()),
                )
            )
        else:
            stations.append(None)
    oldest = draw(st.integers(0, N - 1))
    committed = [draw(st.integers(0, (1 << W) - 1)) for _ in range(L)]
    return stations, oldest, committed


def behavioural(stations, oldest, committed):
    order = [(oldest + k) % N for k in range(N)]
    values = list(committed)
    ready = [True] * L
    incoming = {}
    for pos in order:
        incoming[pos] = (list(values), list(ready))
        snapshot = stations[pos]
        if snapshot is not None and snapshot.writes_register is not None:
            r = snapshot.writes_register
            values[r] = snapshot.result
            ready[r] = snapshot.done
    return incoming


@given(datapath_states())
@settings(max_examples=30, deadline=None)
def test_register_rings_match_behavioural_walk(state):
    stations, oldest, committed = state
    outputs = DATAPATH.step(stations, oldest, committed)
    reference = behavioural(stations, oldest, committed)
    for pos in range(N):
        if pos == oldest:
            continue  # the oldest ignores incoming values
        expect_values, expect_ready = reference[pos]
        for r in range(L):
            got_value, got_ready = outputs.incoming[pos][r]
            assert got_ready == expect_ready[r]
            if expect_ready[r]:
                assert got_value == expect_values[r]


@given(datapath_states())
@settings(max_examples=30, deadline=None)
def test_sequencing_conditions_match_scan(state):
    stations, oldest, committed = state
    outputs = DATAPATH.step(stations, oldest, committed)
    order = [(oldest + k) % N for k in range(N)]

    def scan(key):
        out = {}
        acc = True
        for idx, pos in enumerate(order):
            out[pos] = True if idx == 0 else acc
            snapshot = stations[pos]
            acc = acc and (True if snapshot is None else key(snapshot))
        return out

    done_ref = scan(lambda s: s.done)
    store_ref = scan(lambda s: s.finished_store)
    mem_ref = scan(lambda s: s.finished_memory)
    for pos in range(N):
        assert outputs.all_earlier_done[pos] == done_ref[pos]
        assert outputs.stores_done[pos] == store_ref[pos]
        assert outputs.memory_done[pos] == mem_ref[pos]


@given(datapath_states())
@settings(max_examples=20, deadline=None)
def test_settle_time_bounded_by_logarithm(state):
    stations, oldest, committed = state
    outputs = DATAPATH.step(stations, oldest, committed)
    # a binary CSPP over 8 stations settles within ~4 log2(8) gate delays
    assert outputs.settle_time <= 14
