"""Declarative experiment registry: specs in, runnable jobs out.

Each experiment module under :mod:`repro.experiments` declares its sweep
points as a module-level ``SWEEP_POINTS`` list — keyword-argument dicts
for its ``report`` function, JSON-serializable so the cache can key on
them.  The registry pairs each experiment key with its title and module
path without importing the experiment up front; :func:`build_jobs`
expands specs into one :class:`JobSpec` per sweep point.
"""

from __future__ import annotations

import importlib
import inspect
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment: a key, a display title, and where its code lives."""

    key: str
    title: str
    module: str
    func: str = "report"

    def load(self) -> Callable[..., str]:
        """Import the experiment module and return its report function."""
        return getattr(importlib.import_module(self.module), self.func)

    def sweep_points(self) -> list[dict[str, Any]]:
        """The declared sweep points (kwargs for ``report``), copied.

        Every point is validated against the ``report`` signature at
        declaration-read time, so a typo in ``SWEEP_POINTS`` fails fast
        with the offending module's name instead of surfacing later as
        a ``TypeError`` inside a worker process.
        """
        module = importlib.import_module(self.module)
        points = [dict(point) for point in getattr(module, "SWEEP_POINTS", [{}])]
        _validate_sweep_points(self.module, getattr(module, self.func), points)
        return points


class SweepPointError(ValueError):
    """A SWEEP_POINTS entry does not match its report() signature."""


def _validate_sweep_points(
    module: str, report: Callable[..., str], points: list[dict[str, Any]]
) -> None:
    """Reject sweep points whose keys the report function cannot bind.

    Raises :class:`SweepPointError` naming the module and the bad key —
    the runner surfaces this before any job runs.  A ``**kwargs``
    catch-all in the signature accepts everything (none of the bundled
    experiments use one, but custom ones may).
    """
    signature = inspect.signature(report)
    if any(
        p.kind is inspect.Parameter.VAR_KEYWORD
        for p in signature.parameters.values()
    ):
        return
    accepted = {
        name
        for name, p in signature.parameters.items()
        if p.kind
        in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
    }
    for index, point in enumerate(points):
        unknown = sorted(set(point) - accepted)
        if unknown:
            raise SweepPointError(
                f"{module}: SWEEP_POINTS[{index}] has keyword(s) "
                f"{', '.join(map(repr, unknown))} not accepted by "
                f"{report.__name__}({', '.join(sorted(accepted))})"
            )


@dataclass(frozen=True)
class JobSpec:
    """One unit of runnable work: a single sweep point of one experiment."""

    experiment: str
    title: str
    module: str
    func: str
    kwargs: dict[str, Any] = field(default_factory=dict)
    #: position of this sweep point within the experiment, and how many
    #: sweep points the experiment declared (for report re-assembly)
    index: int = 0
    count: int = 1

    @property
    def is_first(self) -> bool:
        """True for the job that opens an experiment's report."""
        return self.index == 0


#: key -> spec, in the canonical reporting order of ``python -m repro all``
REGISTRY: dict[str, ExperimentSpec] = {
    spec.key: spec
    for spec in [
        ExperimentSpec("fig3", "E1  — Figure 3 timing diagram", "repro.experiments.fig3_timing"),
        ExperimentSpec("fig11", "E2  — Figure 11 asymptotic comparison", "repro.experiments.fig11_table"),
        ExperimentSpec("fig12", "E3  — Figure 12 layout density", "repro.experiments.fig12_layout"),
        ExperimentSpec("crossover", "E4  — dominance crossovers", "repro.experiments.crossover"),
        ExperimentSpec("cluster", "E5  — optimal cluster size", "repro.experiments.cluster_sweep"),
        ExperimentSpec("membw", "E6  — X(n) by memory regime", "repro.experiments.memory_bw"),
        ExperimentSpec("3d", "E7  — three-dimensional bounds", "repro.experiments.three_d"),
        ExperimentSpec("selftimed", "E8  — self-timed locality", "repro.experiments.selftimed"),
        ExperimentSpec("gates", "E9  — measured gate delays", "repro.experiments.gate_depth"),
        ExperimentSpec("ipc", "E10 — ILP equivalence & quadratic wall", "repro.experiments.ipc_equivalence"),
        ExperimentSpec("window", "E12 — window size vs issue width (Memo 2)", "repro.experiments.window_vs_issue"),
        ExperimentSpec("map", "E13 — dominance map over (n, L)", "repro.experiments.dominance_map"),
        ExperimentSpec("perf", "E14 — end-to-end performance projection", "repro.experiments.performance_projection"),
        ExperimentSpec("ilp", "E15 — ILP limits at large windows", "repro.experiments.ilp_limits"),
        ExperimentSpec("1cm", "E16 — the closing 1 cm chip claim", "repro.experiments.one_cm_chip"),
    ]
}


def build_jobs(specs: list[ExperimentSpec], cache=None) -> list[JobSpec]:
    """Expand specs into one job per declared sweep point, in order.

    With a :class:`~repro.runner.cache.ResultCache`, sweep points come
    from the cache's sidecar index when this package version already
    stored them — a fully warm run then never imports the experiment
    modules.  Fresh declarations are written back to the index.
    """
    jobs: list[JobSpec] = []
    for spec in specs:
        points = cache.get_sweep_points(spec.key) if cache is not None else None
        if points is None:
            points = spec.sweep_points()
            if cache is not None:
                cache.put_sweep_points(spec.key, points)
        for index, kwargs in enumerate(points):
            jobs.append(
                JobSpec(
                    experiment=spec.key,
                    title=spec.title,
                    module=spec.module,
                    func=spec.func,
                    kwargs=kwargs,
                    index=index,
                    count=len(points),
                )
            )
    return jobs
