"""Per-job metrics and run summaries for the experiment runner."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

#: job terminal states
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"


@dataclass
class JobResult:
    """What one (experiment, sweep point) job produced, plus how."""

    experiment: str
    title: str
    kwargs: dict[str, Any]
    index: int
    count: int
    status: str
    cache_hit: bool
    attempts: int
    wall_time_s: float
    output: str | None = None
    error: str | None = None
    #: compute time recorded when the entry was first produced (equals
    #: ``wall_time_s`` on a miss; the historical cost on a hit)
    compute_time_s: float = field(default=0.0)
    #: aggregated telemetry counters collected while the job ran (None
    #: when collection was off or the result came from the cache)
    stats: dict[str, int] | None = None

    @property
    def ok(self) -> bool:
        """True when the job produced a report."""
        return self.status == STATUS_OK

    @property
    def output_sha256(self) -> str | None:
        """Digest of the report text, for cross-run diffing."""
        if self.output is None:
            return None
        return hashlib.sha256(self.output.encode("utf-8")).hexdigest()

    @property
    def error_summary(self) -> str:
        """The last line of the captured traceback (the exception itself)."""
        if not self.error:
            return ""
        lines = [line for line in self.error.strip().splitlines() if line.strip()]
        return lines[-1] if lines else ""


def summarize(results: list[JobResult]) -> dict[str, Any]:
    """Aggregate counters over a run's job results."""
    return {
        "jobs": len(results),
        "experiments": len({r.experiment for r in results}),
        "ok": sum(1 for r in results if r.ok),
        "failed": sum(1 for r in results if not r.ok),
        "cache_hits": sum(1 for r in results if r.cache_hit),
        "retried": sum(1 for r in results if r.attempts > 1),
        "wall_time_s": round(sum(r.wall_time_s for r in results), 6),
    }


def format_summary(
    results: list[JobResult], *, wall_time_s: float | None = None
) -> str:
    """One human-readable line: job counts, hits/misses, failures, time.

    ``wall_time_s`` is the caller's end-to-end clock for the whole run;
    with parallel workers it is smaller than the summed per-job time,
    and the gap between the two is where ``python -m repro all`` spent
    its time (pool fan-out vs. cache replay).
    """
    totals = summarize(results)
    misses = totals["jobs"] - totals["cache_hits"]
    parts = [
        f"{totals['jobs']} job(s) across {totals['experiments']} experiment(s)",
        f"{totals['cache_hits']} cache hit(s), {misses} miss(es)",
        f"{totals['failed']} failure(s)",
        f"{totals['wall_time_s']:.2f}s job time",
    ]
    if totals["retried"]:
        parts.insert(2, f"{totals['retried']} retried")
    if wall_time_s is not None:
        parts.append(f"{wall_time_s:.2f}s wall-clock")
    return "; ".join(parts)
