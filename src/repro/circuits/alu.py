"""A gate-level integer ALU ("a simple integer ALU", Section 7).

The paper's empirical layouts replicate a simple integer ALU in every
execution station.  This module builds one as a real netlist — a
ripple-carry adder/subtractor plus bitwise logic and an operation mux —
so the VLSI model can derive a realistic standard-cell count for an
execution station, and so tests can check the datapath end to end at
gate level.

Operation select (2 bits): 00=ADD, 01=SUB, 10=AND, 11=OR.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.netlist import GateKind, Net, Netlist, bus, bus_value


@dataclass(frozen=True)
class AluPorts:
    """Primary nets of a constructed ALU."""

    a: list[Net]
    b: list[Net]
    op: list[Net]  # 2 bits: op[0]=low
    result: list[Net]
    carry_out: Net


OP_ADD = 0
OP_SUB = 1
OP_AND = 2
OP_OR = 3


def build_full_adder(netlist: Netlist, a: Net, b: Net, cin: Net) -> tuple[Net, Net]:
    """One full adder; returns (sum, carry_out)."""
    axb = netlist.add_gate(GateKind.XOR, a, b)
    total = netlist.add_gate(GateKind.XOR, axb, cin)
    carry = netlist.add_gate(
        GateKind.OR,
        netlist.add_gate(GateKind.AND, a, b),
        netlist.add_gate(GateKind.AND, axb, cin),
    )
    return total, carry


def build_ripple_adder(
    netlist: Netlist, a: list[Net], b: list[Net], cin: Net
) -> tuple[list[Net], Net]:
    """Ripple-carry adder over equal-width buses; returns (sum bus, carry out)."""
    if len(a) != len(b):
        raise ValueError("bus widths differ")
    sums: list[Net] = []
    carry = cin
    for ai, bi in zip(a, b):
        s, carry = build_full_adder(netlist, ai, bi, carry)
        sums.append(s)
    return sums, carry


def build_alu(netlist: Netlist, width: int = 32, name: str = "alu") -> AluPorts:
    """Build the 4-operation ALU; returns its port nets.

    Subtraction is implemented as ``a + ~b + 1`` by muxing inverted ``b``
    into the adder and driving carry-in from the op code.
    """
    if width < 1:
        raise ValueError("width must be positive")
    a = bus(netlist, f"{name}_a", width)
    b = bus(netlist, f"{name}_b", width)
    op = bus(netlist, f"{name}_op", 2)

    is_sub = netlist.add_gate(
        GateKind.AND, op[0], netlist.add_gate(GateKind.NOT, op[1])
    )
    b_eff = [
        netlist.mux(is_sub, netlist.add_gate(GateKind.NOT, bi), bi) for bi in b
    ]
    sums, carry = build_ripple_adder(netlist, a, b_eff, is_sub)

    ands = [netlist.add_gate(GateKind.AND, ai, bi) for ai, bi in zip(a, b)]
    ors = [netlist.add_gate(GateKind.OR, ai, bi) for ai, bi in zip(a, b)]

    result = []
    for i in range(width):
        logic = netlist.mux(op[0], ors[i], ands[i])  # op=11 -> OR, op=10 -> AND
        result.append(netlist.mux(op[1], logic, sums[i]))  # op[1]=1 -> logic
    for i, net in enumerate(result):
        netlist.mark_output(f"{name}_r[{i}]", net)
    netlist.mark_output(f"{name}_cout", carry)
    return AluPorts(a=a, b=b, op=op, result=result, carry_out=carry)


def evaluate_alu(netlist: Netlist, ports: AluPorts, a: int, b: int, op: int) -> int:
    """Simulate the ALU on concrete operands; returns the result bus value."""
    width = len(ports.a)
    assignment: dict[Net, bool] = {}
    for i in range(width):
        assignment[ports.a[i]] = bool((a >> i) & 1)
        assignment[ports.b[i]] = bool((b >> i) & 1)
    assignment[ports.op[0]] = bool(op & 1)
    assignment[ports.op[1]] = bool((op >> 1) & 1)
    result = netlist.simulate(assignment)
    return bus_value(result, ports.result)
