"""Fixed-width two's-complement arithmetic helpers.

The reproduced instruction-set architecture is a 32-bit machine (the
paper's empirical layouts use 32 32-bit logical registers).  All register
values are stored as Python ints in ``[0, 2**32)`` and these helpers
convert between the signed and unsigned views.
"""

from __future__ import annotations

WORD_BITS = 32
WORD_MASK = (1 << WORD_BITS) - 1


def to_unsigned(value: int, bits: int = WORD_BITS) -> int:
    """Reduce *value* into the unsigned ``bits``-wide range ``[0, 2**bits)``."""
    return value & ((1 << bits) - 1)


def to_signed(value: int, bits: int = WORD_BITS) -> int:
    """Interpret the low ``bits`` of *value* as a two's-complement integer."""
    value &= (1 << bits) - 1
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def sign_extend(value: int, from_bits: int, to_bits: int = WORD_BITS) -> int:
    """Sign-extend *value* from ``from_bits`` wide to ``to_bits`` wide (unsigned view)."""
    if from_bits > to_bits:
        raise ValueError(f"cannot sign-extend from {from_bits} to narrower {to_bits} bits")
    return to_unsigned(to_signed(value, from_bits), to_bits)


def tree_level_distance(a: int, b: int, radix: int = 4) -> int:
    """H-tree levels a signal climbs travelling between leaves *a* and *b*.

    Zero when the leaves coincide; otherwise the height of their lowest
    common ancestor in the radix-``radix`` tree the layouts use.  This
    is both the self-timed forwarding latency metric and the telemetry
    hop-distance metric.
    """
    if a < 0 or b < 0:
        raise ValueError("leaf indices must be non-negative")
    level = 0
    while a != b:
        a //= radix
        b //= radix
        level += 1
    return level
