"""Integration: programs survive the binary encoding round trip, and a
processor running from decoded instruction memory behaves identically."""

import pytest

from repro.frontend.imem import InstructionMemory
from repro.isa import Program
from repro.isa.encoding import EncodingError
from repro.isa.registers import MachineSpec
from repro.ultrascalar import IdealMemory, ProcessorConfig, make_ultrascalar1
from repro.workloads import (
    bubble_sort,
    daxpy_loop,
    fibonacci,
    paper_sequence,
    random_ilp,
    reduction_loop,
)

WORKLOADS = [
    paper_sequence(),
    daxpy_loop(4),
    reduction_loop(5),
    fibonacci(10),
    bubble_sort([4, 1, 3]),
    random_ilp(30, 0.5, seed=501),
]


@pytest.mark.parametrize("workload", WORKLOADS, ids=lambda w: w.name)
class TestRoundTrip:
    def test_every_workload_encodes_and_decodes(self, workload):
        imem = InstructionMemory.from_program(workload.program)
        assert imem.verify_against(workload.program)

    def test_decoded_program_runs_identically(self, workload):
        imem = InstructionMemory.from_program(workload.program)
        decoded = Program(
            tuple(imem.fetch_decode(pc) for pc in range(len(imem))),
            {},
            workload.program.spec,
        )
        config = ProcessorConfig(window_size=16, fetch_width=4)

        def run(program):
            memory = IdealMemory()
            memory.load_image(workload.memory_image)
            return make_ultrascalar1(
                program, config, memory=memory,
                initial_registers=workload.registers_for(),
            ).run()

        original = run(workload.program)
        redecoded = run(decoded)
        assert redecoded.cycles == original.cycles
        assert redecoded.registers == original.registers
        assert redecoded.memory == original.memory


class TestLimits:
    def test_large_register_files_rejected(self):
        from repro.isa import Instruction, Opcode

        spec = MachineSpec(num_registers=64)
        program = Program.from_instructions(
            [Instruction(Opcode.ADD, rd=63, rs1=0, rs2=0), Instruction(Opcode.HALT)],
            spec,
        )
        with pytest.raises(EncodingError):
            InstructionMemory.from_program(program)

    def test_raw_words_accessible(self):
        imem = InstructionMemory.from_program(paper_sequence().program)
        assert all(0 <= w < (1 << 32) for w in imem.words)
        assert len(imem) == 9
