"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro list                 # available experiments
    python -m repro fig3                 # one experiment's table(s)
    python -m repro all                  # everything (a few minutes)
"""

from __future__ import annotations

import sys

from repro.experiments import (
    cluster_sweep,
    crossover,
    dominance_map,
    fig3_timing,
    fig11_table,
    fig12_layout,
    gate_depth,
    ilp_limits,
    ipc_equivalence,
    performance_projection,
    memory_bw,
    one_cm_chip,
    selftimed,
    three_d,
    window_vs_issue,
)

EXPERIMENTS = {
    "fig3": ("E1  — Figure 3 timing diagram", fig3_timing.report),
    "fig11": ("E2  — Figure 11 asymptotic comparison", fig11_table.report),
    "fig12": ("E3  — Figure 12 layout density", fig12_layout.report),
    "crossover": ("E4  — dominance crossovers", crossover.report),
    "cluster": ("E5  — optimal cluster size", cluster_sweep.report),
    "membw": ("E6  — X(n) by memory regime", memory_bw.report),
    "3d": ("E7  — three-dimensional bounds", three_d.report),
    "selftimed": ("E8  — self-timed locality", selftimed.report),
    "gates": ("E9  — measured gate delays", gate_depth.report),
    "ipc": ("E10 — ILP equivalence & quadratic wall", ipc_equivalence.report),
    "window": ("E12 — window size vs issue width (Memo 2)", window_vs_issue.report),
    "map": ("E13 — dominance map over (n, L)", dominance_map.report),
    "perf": ("E14 — end-to-end performance projection", performance_projection.report),
    "ilp": ("E15 — ILP limits at large windows", ilp_limits.report),
    "1cm": ("E16 — the closing 1 cm chip claim", one_cm_chip.report),
}


def main(argv: list[str] | None = None) -> int:
    """Dispatch one experiment (or ``all``); returns a process exit code."""
    args = sys.argv[1:] if argv is None else argv
    if not args or args[0] in ("-h", "--help", "list"):
        print(__doc__)
        print("Experiments:")
        for key, (title, _) in EXPERIMENTS.items():
            print(f"  {key:10s} {title}")
        return 0
    name = args[0]
    if name == "all":
        for key, (title, report) in EXPERIMENTS.items():
            print(f"\n{'=' * 70}\n{title}\n{'=' * 70}")
            print(report())
        return 0
    if name not in EXPERIMENTS:
        print(f"unknown experiment {name!r}; try `python -m repro list`", file=sys.stderr)
        return 2
    print(EXPERIMENTS[name][1]())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
