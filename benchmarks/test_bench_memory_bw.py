"""E6 — X(n) and W(n) growth across the three M(n) regimes."""

from repro.experiments import memory_bw
from repro.analysis.regimes import regularity_holds
from repro.network.fattree import bandwidth_power


def test_bench_side_length_exponents(once):
    outcome = once(memory_bw.run)
    print()
    print(memory_bw.report())
    assert outcome.exponents_match_paper(tolerance=0.1)


def test_bench_wire_length_is_theta_of_side(once):
    """W(n) = Θ(X(n)) in every regime (the paper's Section 3 solution)."""
    outcome = once(memory_bw.run)
    assert outcome.wire_tracks_side()


def test_bench_bandwidth_dominates_beyond_sqrt(once):
    """'Memory bandwidth is the dominating factor': in Case 3 the side
    grows strictly faster than Case 1's sqrt(n)."""
    outcome = once(memory_bw.run)
    assert outcome.fitted[1.0] > outcome.fitted[0.0] + 0.3
    assert outcome.fitted[0.75] > outcome.fitted[0.0] + 0.1


def test_bench_regularity_condition(once):
    """The Case 3 analysis requires M(n/4) <= c M(n)/2 — power laws with
    exponent > 1/2 satisfy it, slower ones need not."""

    def check():
        return (
            regularity_holds(bandwidth_power(0.75)),
            regularity_holds(bandwidth_power(1.0)),
            regularity_holds(bandwidth_power(0.25)),
        )

    ok_75, ok_100, ok_25 = once(check)
    assert ok_75 and ok_100
    assert not ok_25
