"""Baseline comparator and the --fail-on-regress CLI gate."""

import json

import pytest

from repro.bench.cli import main as bench_main
from repro.bench.compare import (
    ADDED,
    IMPROVED,
    INCOMPARABLE,
    REGRESSED,
    REMOVED,
    UNCHANGED,
    compare_artifacts,
    format_compare_table,
    hosts_differ,
    regressions,
)
from repro.bench.registry import Benchmark


def _artifact(entries, host=None):
    """A minimal artifact document with the given (name, best_s) pairs."""
    return {
        "schema": "repro-bench/1",
        "version": "0.1.0",
        "mode": "quick",
        "host": host or {"python": "3.12", "platform": "test", "cpu_count": 1},
        "protocol": {"clock": "perf_counter", "gc_disabled": True,
                     "warmup": 1, "repeats": 3},
        "totals": {"benchmarks": len(entries), "wall_time_s": 0.0},
        "results": [
            {
                "name": name,
                "group": name.split(".")[0],
                "title": name,
                "units": "s",
                "metadata": {},
                "repeats_s": [best],
                "best_s": best,
                "median_s": best,
                "mean_s": best,
                "stats": {},
                "rates": {},
            }
            for name, best in entries
        ],
    }


class TestComparator:
    def test_unchanged_improved_regressed(self):
        base = _artifact([("a", 1.0), ("b", 1.0), ("c", 1.0)])
        new = _artifact([("a", 1.02), ("b", 0.5), ("c", 2.0)])
        by_name = {
            d.name: d for d in compare_artifacts(base, new, threshold_pct=5.0)
        }
        assert by_name["a"].status == UNCHANGED
        assert by_name["b"].status == IMPROVED
        assert by_name["c"].status == REGRESSED
        assert by_name["c"].pct == pytest.approx(100.0)

    def test_missing_baseline_entry_is_added(self):
        base = _artifact([("a", 1.0)])
        new = _artifact([("a", 1.0), ("fresh", 0.1)])
        by_name = {d.name: d for d in compare_artifacts(base, new)}
        assert by_name["fresh"].status == ADDED
        assert by_name["fresh"].pct is None
        assert regressions(list(by_name.values())) == []

    def test_renamed_benchmark_is_removed_plus_added(self):
        base = _artifact([("old.name", 1.0)])
        new = _artifact([("new.name", 1.0)])
        statuses = {d.name: d.status for d in compare_artifacts(base, new)}
        assert statuses == {"new.name": ADDED, "old.name": REMOVED}

    def test_zero_time_guard(self):
        base = _artifact([("a", 0.0), ("b", 1.0)])
        new = _artifact([("a", 1.0), ("b", 0.0)])
        by_name = {d.name: d for d in compare_artifacts(base, new)}
        assert by_name["a"].status == INCOMPARABLE
        assert by_name["b"].status == INCOMPARABLE
        assert by_name["a"].pct is None

    def test_threshold_boundary_is_not_a_regression(self):
        # exactly at the threshold stays "unchanged"; strictly above trips
        base = _artifact([("a", 1.0), ("b", 1.0)])
        new = _artifact([("a", 1.05), ("b", 1.0500001)])
        by_name = {
            d.name: d for d in compare_artifacts(base, new, threshold_pct=5.0)
        }
        assert by_name["a"].status == UNCHANGED
        assert by_name["b"].status == REGRESSED

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            compare_artifacts(_artifact([]), _artifact([]), threshold_pct=-1)

    def test_format_table(self):
        base = _artifact([("a", 1.0), ("gone", 1.0)])
        new = _artifact([("a", 2.0)])
        deltas = compare_artifacts(base, new, threshold_pct=5.0)
        table = format_compare_table(deltas, threshold_pct=5.0)
        assert "a" in table and "gone" in table
        assert "+100.0%" in table
        assert "1 regressed" in table and "1 removed" in table

    def test_hosts_differ(self):
        same = _artifact([])
        other = _artifact([], host={"python": "3.11", "platform": "test",
                                    "cpu_count": 1})
        assert not hosts_differ(same, same)
        assert hosts_differ(same, other)


def _toy_registry(extra_sleep_s=0.0):
    """A single fast fake benchmark, optionally artificially slowed."""
    import time

    def make():
        def thunk():
            total = sum(range(200))
            if extra_sleep_s:
                time.sleep(extra_sleep_s)
            return total

        return thunk

    bench = Benchmark(
        name="toy.spin", group="toy", title="toy spin", make=make, quick=True
    )
    return {bench.name: bench}


class TestCliGate:
    def test_compare_unchanged_tree_exits_zero(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr("repro.bench.registry.REGISTRY", _toy_registry())
        baseline = tmp_path / "BENCH_base.json"
        assert bench_main(["--quick", "--repeats", "2",
                           "--json", str(baseline)]) == 0
        # informational compare never gates, whatever the noise says
        assert bench_main(["--quick", "--repeats", "2",
                           "--compare", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "toy.spin" in out and "status" in out

    def test_fail_on_regress_trips_on_slowdown(self, tmp_path, monkeypatch, capsys):
        # baseline recorded from the fast registry...
        monkeypatch.setattr("repro.bench.registry.REGISTRY", _toy_registry())
        baseline = tmp_path / "BENCH_base.json"
        assert bench_main(["--quick", "--repeats", "2",
                           "--json", str(baseline)]) == 0
        # ...then the same benchmark artificially slowed by a sleep
        monkeypatch.setattr(
            "repro.bench.registry.REGISTRY", _toy_registry(extra_sleep_s=0.02)
        )
        code = bench_main(["--quick", "--repeats", "2",
                           "--compare", str(baseline),
                           "--fail-on-regress", "50"])
        assert code == 1
        captured = capsys.readouterr()
        assert "regression: toy.spin" in captured.err
        # without the gate the same slowdown is informational
        assert bench_main(["--quick", "--repeats", "2",
                           "--compare", str(baseline)]) == 0

    def test_usage_errors(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr("repro.bench.registry.REGISTRY", _toy_registry())
        assert bench_main(["--fail-on-regress", "10"]) == 2
        assert bench_main(["--fail-on-regress", "-5", "--compare", "x"]) == 2
        assert bench_main(["--repeats", "0"]) == 2
        assert bench_main(["--filter", "no-such-benchmark"]) == 2
        # a missing or malformed baseline fails fast, before any timing
        missing = tmp_path / "missing.json"
        assert bench_main(["--compare", str(missing)]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope"}), encoding="utf-8")
        assert bench_main(["--compare", str(bad)]) == 2
        capsys.readouterr()

    def test_list_mode(self, monkeypatch, capsys):
        monkeypatch.setattr("repro.bench.registry.REGISTRY", _toy_registry())
        assert bench_main(["--list"]) == 0
        assert "toy.spin" in capsys.readouterr().out
