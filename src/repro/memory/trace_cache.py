"""An instruction trace cache (Rotenberg, Bennett & Smith, MICRO 1996).

The paper proposes a trace cache behind a fat-tree so that instruction
fetch can supply the wide Ultrascalar window: a conventional
instruction cache delivers at most one fetch block per cycle and stops
at the first taken branch, while a trace cache stores *dynamic*
instruction sequences — identified by a start PC and the outcomes of
the branches inside — and can deliver a whole multi-branch trace in one
cycle.

This model stores traces of up to ``trace_length`` instructions with up
to ``max_branches`` conditional branches, in a direct-mapped structure
indexed by start PC with the branch-outcome vector as part of the tag.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceKey:
    """Identity of a trace: start PC + outcomes of its internal branches."""

    start_pc: int
    outcomes: tuple[bool, ...]


@dataclass
class TraceCacheStats:
    """Hit/miss counters."""

    hits: int = 0
    misses: int = 0
    fills: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class TraceCache:
    """Direct-mapped trace cache.

    Args:
        num_sets: direct-mapped sets (indexed by start PC).
        trace_length: maximum instructions per trace line.
        max_branches: maximum conditional branches embedded in a trace.
    """

    num_sets: int = 256
    trace_length: int = 16
    max_branches: int = 3
    stats: TraceCacheStats = field(default_factory=TraceCacheStats)
    _lines: dict[int, tuple[TraceKey, tuple[int, ...]]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_sets < 1:
            raise ValueError("need at least one set")
        if self.trace_length < 1:
            raise ValueError("trace length must be positive")
        if self.max_branches < 0:
            raise ValueError("max_branches must be non-negative")

    def _set_of(self, pc: int) -> int:
        return pc % self.num_sets

    def lookup(self, start_pc: int, predicted_outcomes: tuple[bool, ...]) -> tuple[int, ...] | None:
        """Return the stored trace matching the prediction, or ``None``.

        The outcome vector must match the stored trace's outcomes
        *prefix-wise*: a stored trace with fewer branches than predicted
        still hits (the fetch unit simply delivers fewer instructions).
        """
        entry = self._lines.get(self._set_of(start_pc))
        if entry is None:
            self.stats.misses += 1
            return None
        key, trace = entry
        if key.start_pc != start_pc:
            self.stats.misses += 1
            return None
        stored = key.outcomes
        if stored != tuple(predicted_outcomes[: len(stored)]):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return trace

    def fill(self, start_pc: int, outcomes: tuple[bool, ...], trace: tuple[int, ...]) -> None:
        """Insert a trace built by the fill unit after a miss."""
        if len(trace) > self.trace_length:
            raise ValueError(
                f"trace of {len(trace)} instructions exceeds trace_length={self.trace_length}"
            )
        if len(outcomes) > self.max_branches:
            raise ValueError(
                f"trace with {len(outcomes)} branches exceeds max_branches={self.max_branches}"
            )
        self.stats.fills += 1
        self._lines[self._set_of(start_pc)] = (TraceKey(start_pc, tuple(outcomes)), tuple(trace))

    def invalidate(self) -> None:
        """Drop all traces (e.g. on self-modifying code; unused by the ISA)."""
        self._lines.clear()
