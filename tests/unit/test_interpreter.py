"""Unit tests for the golden sequential interpreter."""

import pytest

from repro.isa import InterpreterError, MachineState, assemble, run_program
from repro.isa.interpreter import branch_taken
from repro.isa.opcodes import Opcode
from repro.util.bitops import WORD_MASK, to_unsigned


def run(source, **kwargs):
    return run_program(assemble(source), **kwargs)


class TestArithmetic:
    def test_add(self):
        r = run("li r1, 2\nli r2, 3\nadd r3, r1, r2\nhalt")
        assert r.state.registers[3] == 5

    def test_add_wraps(self):
        r = run("li r1, -1\nli r2, 2\nadd r3, r1, r2\nhalt")
        assert r.state.registers[1] == WORD_MASK
        assert r.state.registers[3] == 1

    def test_sub_negative_result(self):
        r = run("li r1, 3\nli r2, 5\nsub r3, r1, r2\nhalt")
        assert r.state.registers[3] == to_unsigned(-2)

    def test_mul(self):
        r = run("li r1, -4\nli r2, 6\nmul r3, r1, r2\nhalt")
        assert r.state.registers[3] == to_unsigned(-24)

    def test_div_truncates_toward_zero(self):
        r = run("li r1, -7\nli r2, 2\ndiv r3, r1, r2\nhalt")
        assert r.state.registers[3] == to_unsigned(-3)

    def test_div_by_zero_gives_minus_one(self):
        r = run("li r1, 7\nli r2, 0\ndiv r3, r1, r2\nhalt")
        assert r.state.registers[3] == WORD_MASK

    def test_div_overflow(self):
        # INT_MIN / -1 -> INT_MIN (RISC-V convention)
        r = run("li r1, 1\nslli r1, r1, 31\nli r2, -1\ndiv r3, r1, r2\nhalt")
        assert r.state.registers[3] == 1 << 31

    def test_rem_sign_follows_dividend(self):
        r = run("li r1, -7\nli r2, 2\nrem r3, r1, r2\nhalt")
        assert r.state.registers[3] == to_unsigned(-1)

    def test_rem_by_zero_gives_dividend(self):
        r = run("li r1, 9\nli r2, 0\nrem r3, r1, r2\nhalt")
        assert r.state.registers[3] == 9

    def test_logic_ops(self):
        r = run(
            "li r1, 0xFF\nli r2, 0x0F\n"
            "and r3, r1, r2\nor r4, r1, r2\nxor r5, r1, r2\nnot r6, r2\nhalt"
        )
        assert r.state.registers[3] == 0x0F
        assert r.state.registers[4] == 0xFF
        assert r.state.registers[5] == 0xF0
        assert r.state.registers[6] == to_unsigned(~0x0F)

    def test_shifts(self):
        r = run(
            "li r1, -8\nli r2, 1\n"
            "sll r3, r1, r2\nsrl r4, r1, r2\nsra r5, r1, r2\nhalt"
        )
        assert r.state.registers[3] == to_unsigned(-16)
        assert r.state.registers[4] == to_unsigned(-8) >> 1
        assert r.state.registers[5] == to_unsigned(-4)

    def test_shift_amount_masked_to_5_bits(self):
        r = run("li r1, 1\nli r2, 33\nsll r3, r1, r2\nhalt")
        assert r.state.registers[3] == 2

    def test_slt_signed_vs_unsigned(self):
        r = run("li r1, -1\nli r2, 1\nslt r3, r1, r2\nsltu r4, r1, r2\nhalt")
        assert r.state.registers[3] == 1  # -1 < 1 signed
        assert r.state.registers[4] == 0  # 0xFFFFFFFF > 1 unsigned

    def test_lui(self):
        r = run("lui r1, 1\nhalt")
        assert r.state.registers[1] == 1 << 16

    def test_neg_mov(self):
        r = run("li r1, 5\nneg r2, r1\nmov r3, r2\nhalt")
        assert r.state.registers[2] == to_unsigned(-5)
        assert r.state.registers[3] == to_unsigned(-5)


class TestMemory:
    def test_store_then_load(self):
        r = run("li r1, 100\nli r2, 42\nsw r2, 4(r1)\nlw r3, 4(r1)\nhalt")
        assert r.state.registers[3] == 42
        assert r.state.memory[104] == 42

    def test_uninitialized_memory_reads_zero(self):
        r = run("li r1, 8\nlw r2, 0(r1)\nhalt")
        assert r.state.registers[2] == 0

    def test_unaligned_load_rejected(self):
        with pytest.raises(InterpreterError, match="unaligned"):
            run("li r1, 2\nlw r2, 0(r1)\nhalt")

    def test_unaligned_store_rejected(self):
        with pytest.raises(InterpreterError, match="unaligned"):
            run("li r1, 1\nsw r1, 0(r1)\nhalt")

    def test_negative_offset(self):
        r = run("li r1, 8\nli r2, 7\nsw r2, -4(r1)\nlw r3, -4(r1)\nhalt")
        assert r.state.registers[3] == 7
        assert r.state.memory[4] == 7


class TestControlFlow:
    def test_taken_branch_skips(self):
        r = run("li r1, 1\nbeq r1, r1, end\nli r2, 99\nend: halt")
        assert r.state.registers[2] == 0

    def test_not_taken_branch_falls_through(self):
        r = run("li r1, 1\nbne r1, r1, end\nli r2, 99\nend: halt")
        assert r.state.registers[2] == 99

    def test_loop_countdown(self):
        r = run(
            """
            li r1, 5
            li r2, 0
            loop:
              add r2, r2, r1
              addi r1, r1, -1
              bne r1, r0, loop
            halt
            """
        )
        assert r.state.registers[2] == 15
        assert r.halted

    def test_signed_branches(self):
        r = run("li r1, -1\nli r2, 1\nblt r1, r2, yes\nli r3, 1\nyes: halt")
        assert r.state.registers[3] == 0
        r = run("li r1, -1\nli r2, 1\nbltu r1, r2, yes\nli r3, 1\nyes: halt")
        assert r.state.registers[3] == 1  # 0xFFFFFFFF not < 1 unsigned

    def test_falling_off_end_is_not_halted(self):
        r = run("nop")
        assert not r.halted
        assert r.dynamic_length == 1

    def test_runaway_loop_detected(self):
        with pytest.raises(InterpreterError, match="exceeded"):
            run("top: j top", max_steps=100)


class TestTrace:
    def test_trace_records_operands_and_results(self):
        r = run("li r1, 6\nli r2, 2\ndiv r3, r1, r2\nhalt")
        step = r.trace[2]
        assert step.operand_values == (6, 2)
        assert step.result == 3

    def test_trace_records_memory_address(self):
        r = run("li r1, 100\nsw r1, 4(r1)\nhalt")
        assert r.trace[1].address == 104

    def test_trace_records_branch_outcome(self):
        r = run("li r1, 1\nbeq r1, r0, end\nend: halt")
        assert r.trace[1].taken is False

    def test_next_pc_sequence_is_consistent(self):
        r = run("li r1, 2\nbeq r1, r1, end\nnop\nend: halt")
        pcs = [step.static_index for step in r.trace]
        assert pcs == [0, 1, 3]
        for prev, nxt in zip(r.trace, r.trace[1:]):
            assert prev.next_pc == nxt.static_index


class TestBranchTaken:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            (Opcode.BEQ, 5, 5, True),
            (Opcode.BEQ, 5, 6, False),
            (Opcode.BNE, 5, 6, True),
            (Opcode.BLT, to_unsigned(-2), 1, True),
            (Opcode.BGE, 1, to_unsigned(-2), True),
            (Opcode.BLTU, to_unsigned(-2), 1, False),
            (Opcode.BGEU, to_unsigned(-2), 1, True),
        ],
    )
    def test_outcomes(self, op, a, b, expected):
        assert branch_taken(op, a, b) is expected

    def test_rejects_non_branch(self):
        with pytest.raises(InterpreterError):
            branch_taken(Opcode.ADD, 0, 0)


class TestMachineState:
    def test_copy_is_deep(self):
        state = MachineState.zeroed(4)
        state.store_word(0, 1)
        clone = state.copy()
        clone.registers[0] = 9
        clone.store_word(0, 2)
        assert state.registers[0] == 0
        assert state.memory[0] == 1

    def test_initial_state_respected(self):
        state = MachineState.zeroed(32)
        state.registers[1] = 7
        r = run_program(assemble("add r2, r1, r1\nhalt"), state=state)
        assert r.state.registers[2] == 14
