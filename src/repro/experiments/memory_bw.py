"""Experiment E6 — the Section 3 side-length recurrence by M(n) regime.

X(n) = Θ(√n L)           when M(n) = O(n^(1/2-eps))  [Case 1]
X(n) = Θ(√n (L + log n)) when M(n) = Θ(n^(1/2))      [Case 2]
X(n) = Θ(√n L + M(n))    when M(n) = Ω(n^(1/2+eps))  [Case 3]

and W(n) = Θ(X(n)).  "Our analytical results show that memory bandwidth
is the dominating factor in the design of large-scale processors."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.fitting import fit_exponent
from repro.analysis.regimes import classify_exponent
from repro.network.fattree import bandwidth_power
from repro.util.tables import Table
from repro.vlsi.htree_layout import Ultrascalar1Layout


#: sweep points the runner executes and the cache keys (kwargs for
#: :func:`report`)
SWEEP_POINTS: list[dict] = [
    {
        "sizes": [4**k for k in range(3, 15)],
        "L": 32,
        "exponents": [0.0, 0.25, 0.5, 0.75, 1.0],
    }
]


@dataclass
class MemoryBwResult:
    """Side-length sweeps per bandwidth exponent."""

    sizes: list[int]
    L: int
    #: m_exponent -> [(n, X(n))]
    sweeps: dict[float, list[tuple[int, float]]]
    #: m_exponent -> fitted exponent of X in n
    fitted: dict[float, float]
    #: m_exponent -> W(n)/X(n) at the largest n
    wire_over_side: dict[float, float]

    def exponents_match_paper(self, tolerance: float = 0.1) -> bool:
        """Case 1/2 fit ~0.5; Case 3 with exponent e fits ~max(0.5, e)."""
        for m_exp, fitted in self.fitted.items():
            expected = max(0.5, m_exp)
            if abs(fitted - expected) > tolerance:
                return False
        return True

    def wire_tracks_side(self) -> bool:
        """W(n) = Θ(X(n)): the ratio stays within a small constant."""
        return all(0.2 <= r <= 3.0 for r in self.wire_over_side.values())


def run(
    sizes: list[int] | None = None,
    L: int = 32,
    exponents: list[float] | None = None,
) -> MemoryBwResult:
    """Sweep the Ultrascalar I layout over M(n) = n^e for several e.

    The Θ-bounds are asymptotic: for Case 3 the M(n) term only dominates
    once n^e outgrows √n·L, so the fitted exponent is the *tail* slope
    over the largest two decades of the sweep (the paper's claim is
    about exactly that asymptotic regime).
    """
    sizes = sizes or [4**k for k in range(3, 15)]  # 64 .. 268M (arithmetic only)
    exponents = exponents if exponents is not None else [0.0, 0.25, 0.5, 0.75, 1.0]
    sweeps: dict[float, list[tuple[int, float]]] = {}
    fitted: dict[float, float] = {}
    wire_over_side: dict[float, float] = {}
    for m_exp in exponents:
        bandwidth = bandwidth_power(m_exp)
        series = []
        for n in sizes:
            layout = Ultrascalar1Layout(n, L, bandwidth=bandwidth)
            series.append((n, layout.side_length()))
        sweeps[m_exp] = series
        tail = series[-4:]
        fitted[m_exp] = fit_exponent([n for n, _ in tail], [x for _, x in tail])
        largest = Ultrascalar1Layout(sizes[-1], L, bandwidth=bandwidth)
        wire_over_side[m_exp] = largest.root_to_leaf_wire() / largest.side_length()
    return MemoryBwResult(
        sizes=sizes, L=L, sweeps=sweeps, fitted=fitted, wire_over_side=wire_over_side
    )


def report(
    sizes: list[int] | None = None,
    L: int = 32,
    exponents: list[float] | None = None,
) -> str:
    """The E6 table: measured exponents per regime."""
    outcome = run(sizes, L, exponents)
    table = Table(
        ["M(n) = n^e", "paper case", "X(n) exponent (measured)", "expected", "W/X at max n"],
        title=f"E6 — Ultrascalar I side-length X(n) growth by memory regime (L={outcome.L})",
    )
    for m_exp, fitted in outcome.fitted.items():
        regime = classify_exponent(m_exp)
        expected = max(0.5, m_exp)
        table.add_row(
            [
                f"e={m_exp}",
                regime.value,
                round(fitted, 3),
                expected,
                round(outcome.wire_over_side[m_exp], 2),
            ]
        )
    return table.render()


if __name__ == "__main__":  # pragma: no cover
    print(report())
