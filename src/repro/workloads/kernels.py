"""Realistic program kernels: sorting, matrix multiply, Fibonacci.

These stress the full machine — nested loops, data-dependent branches
(a predictor's worst case), and mixed memory/ALU traffic — and give the
examples and integration tests programs with recognisable behaviour.
"""

from __future__ import annotations

from repro.isa.assembler import assemble
from repro.isa.registers import MachineSpec
from repro.workloads.generators import Workload


def bubble_sort(values: list[int], spec: MachineSpec | None = None) -> Workload:
    """Bubble-sort *values* in memory (data-dependent branches).

    The array lives at address 1024; the result is the sorted array.
    """
    if not values:
        raise ValueError("need at least one value")
    if any(not 0 <= v < (1 << 31) for v in values):
        raise ValueError("values must be non-negative 31-bit ints")
    spec = spec or MachineSpec()
    count = len(values)
    source = f"""
        # r1 = outer counter, r2 = inner pointer, r3 = inner limit
        li   r1, {count - 1}
        beq  r1, r0, done
      outer:
        li   r2, 1024
        li   r4, {4 * (count - 1)}
        add  r3, r2, r4
      inner:
        lw   r5, 0(r2)
        lw   r6, 4(r2)
        bge  r6, r5, noswap      # already ordered
        sw   r6, 0(r2)
        sw   r5, 4(r2)
      noswap:
        addi r2, r2, 4
        blt  r2, r3, inner
        addi r1, r1, -1
        bne  r1, r0, outer
      done:
        halt
    """
    image = {1024 + 4 * i: v for i, v in enumerate(values)}
    return Workload(
        name=f"bubble-sort-{count}",
        program=assemble(source, spec=spec),
        memory_image=image,
        description="Bubble sort (data-dependent branches, swap stores)",
    )


def matmul(size: int, spec: MachineSpec | None = None) -> Workload:
    """Dense ``size x size`` integer matrix multiply C = A x B.

    A at 4096, B at 8192, C at 12288; row-major; triple nested loop.
    """
    if size < 1:
        raise ValueError("size must be positive")
    spec = spec or MachineSpec()
    row_bytes = 4 * size
    source = f"""
        li   r1, 0               # i
      iloop:
        li   r2, 0               # j
      jloop:
        li   r3, 0               # k
        li   r4, 0               # acc
      kloop:
        # A[i][k]
        li   r5, {row_bytes}
        mul  r6, r1, r5
        slli r7, r3, 2
        add  r6, r6, r7
        addi r6, r6, 4096
        lw   r8, 0(r6)
        # B[k][j]
        mul  r6, r3, r5
        slli r7, r2, 2
        add  r6, r6, r7
        addi r6, r6, 8192
        lw   r9, 0(r6)
        mul  r10, r8, r9
        add  r4, r4, r10
        addi r3, r3, 1
        li   r11, {size}
        blt  r3, r11, kloop
        # C[i][j] = acc
        li   r5, {row_bytes}
        mul  r6, r1, r5
        slli r7, r2, 2
        add  r6, r6, r7
        addi r6, r6, 12288
        sw   r4, 0(r6)
        addi r2, r2, 1
        li   r11, {size}
        blt  r2, r11, jloop
        addi r1, r1, 1
        li   r11, {size}
        blt  r1, r11, iloop
        halt
    """
    image = {}
    for i in range(size):
        for j in range(size):
            image[4096 + 4 * (i * size + j)] = i + j + 1          # A
            image[8192 + 4 * (i * size + j)] = (i * j) % 5 + 1    # B
    return Workload(
        name=f"matmul-{size}",
        program=assemble(source, spec=spec),
        memory_image=image,
        description="Dense integer matrix multiply (nested loops)",
    )


def expected_matmul(size: int, workload: Workload) -> dict[int, int]:
    """The C-matrix words *matmul* must produce (for assertions)."""
    a = [[workload.memory_image[4096 + 4 * (i * size + k)] for k in range(size)] for i in range(size)]
    b = [[workload.memory_image[8192 + 4 * (k * size + j)] for j in range(size)] for k in range(size)]
    out = {}
    for i in range(size):
        for j in range(size):
            out[12288 + 4 * (i * size + j)] = sum(a[i][k] * b[k][j] for k in range(size))
    return out


def fibonacci(n: int, spec: MachineSpec | None = None) -> Workload:
    """Iterative Fibonacci: F(n) into r3 (serial RAW chain + loop)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    spec = spec or MachineSpec()
    source = f"""
        li   r1, {n}
        li   r2, 0               # F(0)
        li   r3, 1               # F(1)
        beq  r1, r0, base
        li   r4, 1               # counter
      loop:
        add  r5, r2, r3
        mov  r2, r3
        mov  r3, r5
        addi r4, r4, 1
        blt  r4, r1, loop
        j    done
      base:
        li   r3, 0
      done:
        halt
    """
    return Workload(
        name=f"fib-{n}",
        program=assemble(source, spec=spec),
        description="Iterative Fibonacci (tight serial loop)",
    )


def fib_value(n: int) -> int:
    """Reference F(n) for assertions."""
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    return a
