"""The Ultrascalar ring processor (Ultrascalar I and the hybrid).

A wrap-around ring of ``n`` execution stations.  Register values flow
from each writer to younger readers through one CSPP circuit per
logical register; the oldest station inserts the committed register
file.  Three 1-bit CSPP conditions sequence instructions: oldest
tracking / deallocation, load-after-store ordering, and
store-after-everything ordering with branch commitment.

The model is cycle-accurate with respect to the paper's timing rules:

* arguments become visible to a consumer one cycle after the producer
  finishes ("newly computed results propagate through the datapath" at
  the end of each clock cycle, and "forward new results in one clock
  cycle");
* a mispredicted branch squashes all younger stations the cycle it
  resolves, and fetch restarts on the following cycle ("Nothing needs
  to be done to recover from misprediction except to fetch new
  instructions from the correct program path");
* a station is deallocated and refilled once it and every older
  station have finished.

With ``cluster_size = C > 1`` the ring refills C stations at a time —
the hybrid's clusters acting as "super execution stations".  The
scheduling policy is otherwise identical, as the paper requires.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.cspp import cyclic_segmented_and
from repro.frontend.branch_predictor import BranchPredictor
from repro.frontend.fetch import FetchUnit
from repro.isa.interpreter import StepOutcome, alu_result, branch_taken
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.telemetry.session import resolve_tracer
from repro.telemetry.tracer import Tracer
from repro.ultrascalar.memsys import MemorySystem
from repro.ultrascalar.processor import ProcessorConfig, ProcessorResult, TimingRecord
from repro.ultrascalar.station import Station, StationState
from repro.util.bitops import to_unsigned, tree_level_distance


@dataclass
class _RegView:
    """One station's incoming register view: value and ready per register.

    ``writers[r]`` is the producing station, or ``None`` when the value
    comes from the committed register file — used by the self-timed mode
    to charge distance-dependent forwarding latency.
    """

    values: list[int]
    ready: list[bool]
    writers: list["Station | None"] | None = None


class RingProcessor:
    """See module docstring."""

    def __init__(
        self,
        program: Program,
        config: ProcessorConfig,
        predictor: BranchPredictor,
        memory: MemorySystem,
        cluster_size: int = 1,
        initial_registers: list[int] | None = None,
        fetch_unit: FetchUnit | None = None,
        tracer: Tracer | None = None,
        cycle_hook=None,
    ):
        if cluster_size < 1 or config.window_size % cluster_size:
            raise ValueError("cluster_size must divide the window size")
        self.program = program
        self.config = config
        self.predictor = predictor
        self.memory = memory
        self.cluster_size = cluster_size
        self.n = config.window_size
        self.L = program.spec.num_registers

        self.stations = [Station(i) for i in range(self.n)]
        self.oldest = 0  # ring position holding the oldest instruction
        self.committed_regs = list(initial_registers or [0] * self.L)
        if len(self.committed_regs) != self.L:
            raise ValueError("initial register file has wrong size")

        self.tracer = resolve_tracer(tracer)
        self._tracing = self.tracer.enabled
        # opt-in per-cycle observer (see repro.verify.invariants); None in
        # normal runs, so the only cost is one attribute test per cycle
        self._cycle_hook = cycle_hook
        self._refill_mode = "per_station" if cluster_size == 1 else "per_cluster"
        self.fetch = fetch_unit or FetchUnit(program, predictor, width=config.fetch_width)
        self.cycle = 0
        self.seq = 0
        self.committed: list[StepOutcome] = []
        self.timings: list[TimingRecord] = []
        self.halted = False
        self.squashed = 0
        self.mispredictions = 0
        self.forwarded_loads = 0
        self._cancelled_requests: set[int] = set()
        # self-timed bookkeeping: where and when each committed register
        # value was physically produced (commitment does not teleport
        # data; it still flows from the producing station's position)
        self._reg_source_pos: list[int | None] = [None] * self.L
        self._reg_source_cycle: list[int] = [0] * self.L

    # ------------------------------------------------------------------
    # ring helpers
    # ------------------------------------------------------------------

    def _ring_order(self) -> list[int]:
        """Station positions from oldest to youngest slot."""
        return [(self.oldest + k) % self.n for k in range(self.n)]

    def _occupied_in_order(self) -> list[Station]:
        """Occupied stations oldest-first (a contiguous prefix of the ring)."""
        stations = []
        for pos in self._ring_order():
            station = self.stations[pos]
            if not station.occupied:
                break
            stations.append(station)
        return stations

    # ------------------------------------------------------------------
    # per-cycle phases
    # ------------------------------------------------------------------

    def _phase_fetch(self) -> None:
        """Refill empty stations from the fetch unit.

        Because clusters free as a unit (see :meth:`_phase_commit`), the
        empty positions always form the contiguous tail of the ring
        order, so filling them in order preserves ring contiguity.
        """
        order = self._ring_order()
        occupied = len(self._occupied_in_order())
        free_positions = order[occupied:]
        budget = min(self.config.fetch_width, len(free_positions))
        if budget == 0 or self.fetch.stalled():
            if self._tracing:
                if self.fetch.stalled():
                    self.tracer.count("fetch.stall_cycles.starved")
                else:
                    self.tracer.count("fetch.stall_cycles.window_full")
            return
        fetched = self.fetch.fetch_cycle(budget=budget)
        if self._tracing and fetched:
            self.tracer.count("fetch.cycles_active")
            self.tracer.count("fetch.instructions", len(fetched))
        for fetched_inst, pos in zip(fetched, free_positions):
            self.stations[pos].load(fetched_inst, self.seq, self.cycle)
            self.seq += 1

    def _register_views(self, occupied: list[Station]) -> list[_RegView]:
        """Each occupied station's incoming register view (CSPP semantics).

        Walk from the oldest: the committed register file is the oldest
        station's insertion; each station then overlays its own write
        (ready iff DONE).
        """
        track_writers = self.config.self_timed or self._tracing
        values = list(self.committed_regs)
        ready = [True] * self.L
        writers: list[Station | None] = [None] * self.L
        views: list[_RegView] = []
        for station in occupied:
            views.append(
                _RegView(
                    values=list(values),
                    ready=list(ready),
                    writers=list(writers) if track_writers else None,
                )
            )
            reg = station.writes_register
            if reg is not None:
                if station.done and station.result is not None:
                    values[reg] = station.result
                    ready[reg] = True
                else:
                    values[reg] = 0
                    ready[reg] = False
                if track_writers:
                    writers[reg] = station
        return views

    def _forward_latency(self, producer_pos: int, consumer_pos: int) -> int:
        """Cycles for a result to travel producer -> consumer.

        Global single-phase clock: always 1 ("all communications between
        components being completed in one clock cycle").  Self-timed:
        one cycle per H-tree level the signal must climb — neighbouring
        stations communicate in a single cycle, far stations pay for the
        longer wires (the paper's Section 7 pipelining discussion).
        """
        if not self.config.self_timed:
            return 1
        return max(1, tree_level_distance(producer_pos, consumer_pos))

    def _source_ready(self, view: _RegView, reg: int, consumer: Station) -> bool:
        """Is register *reg* usable by *consumer* this cycle?"""
        if not view.ready[reg]:
            return False
        # Writers may be tracked for telemetry alone; only the self-timed
        # mode charges distance-dependent latency.
        if view.writers is None or not self.config.self_timed:
            return True
        writer = view.writers[reg]
        if writer is not None:
            latency = self._forward_latency(writer.index, consumer.index)
            return self.cycle >= writer.complete_cycle + latency
        # committed value: still in flight from the station that produced
        # it (initial register values have no producer and are ready)
        source_pos = self._reg_source_pos[reg]
        if source_pos is None:
            return True
        latency = self._forward_latency(source_pos, consumer.index)
        return self.cycle >= self._reg_source_cycle[reg] + latency

    def _ordering_conditions(
        self, occupied: list[Station]
    ) -> tuple[list[bool], list[bool], list[bool]]:
        """The three Figure 5 CSPP conditions for each occupied station.

        Returns (stores_done, mem_done, branches_resolved): per station,
        whether all *older* stations have finished their stores / all
        memory operations / resolved their control transfers.
        """
        count = len(occupied)
        if count == 0:
            return [], [], []
        store_ok = []
        mem_ok = []
        branch_ok = []
        for station in occupied:
            inst = station.fetched.instruction
            store_ok.append(not inst.is_store or station.done)
            mem_ok.append(not inst.is_memory or station.done)
            branch_ok.append(not inst.is_control or station.done)
        # Cyclic segmented AND with the oldest station raising its segment
        # bit: output[i] = AND of conditions of all older stations.  The
        # circuit's wrap-around output at the oldest station itself is
        # ignored, exactly as the oldest station "does not latch incoming
        # values" in the register datapath: it has no older stations, so
        # its conditions hold vacuously.
        segments = [i == 0 for i in range(count)]
        stores = cyclic_segmented_and(store_ok, segments)
        mems = cyclic_segmented_and(mem_ok, segments)
        branches = cyclic_segmented_and(branch_ok, segments)
        stores[0] = mems[0] = branches[0] = True
        return stores, mems, branches

    def _alu_grants(self, occupied: list[Station], candidates: list[bool]) -> list[bool]:
        """Shared-ALU arbitration (Memo 2): grant the oldest requesters.

        Returns per-occupied-station permission to start executing on an
        ALU this cycle.  With ``num_alus=None`` every candidate is
        granted (one ALU per station, as the paper's layouts replicate).
        """
        from repro.isa.opcodes import OpClass
        from repro.ultrascalar.scheduler import prioritized_grants

        if self.config.num_alus is None:
            return list(candidates)
        busy = sum(
            1
            for s in occupied
            if s.state is StationState.EXECUTING
            and s.fetched.instruction.op.op_class is not OpClass.SYSTEM
        )
        free = max(0, self.config.num_alus - busy)
        requests = [
            candidates[i]
            and occupied[i].fetched.instruction.op.op_class is not OpClass.SYSTEM
            for i in range(len(occupied))
        ]
        if free == 0:
            grants = [False] * len(occupied)
        else:
            grants = prioritized_grants(requests, oldest=0, num_alus=free)
        # SYSTEM ops (NOP/HALT) need no ALU and always proceed
        for i in range(len(occupied)):
            if candidates[i] and not requests[i]:
                grants[i] = True
        return grants

    def _find_forwarding_store(
        self, occupied: list[Station], idx: int, address: int
    ) -> Station | None:
        """Nearest preceding store to *address* (memory renaming).

        Only called when all preceding stores are DONE, so every earlier
        store's address is known — the disambiguation the paper's CSPP
        ordering circuits provide.
        """
        for earlier in reversed(occupied[:idx]):
            inst = earlier.fetched.instruction
            if inst.is_store and earlier.address == address:
                return earlier
        return None

    def _phase_issue(self, occupied: list[Station], views: list[_RegView]) -> None:
        stores_done, mem_done, branches_resolved = self._ordering_conditions(occupied)

        # pass 1: who could issue this cycle?
        ready_operands: dict[int, tuple[int, ...]] = {}
        candidates = [False] * len(occupied)
        for idx, station in enumerate(occupied):
            if station.state is not StationState.WAITING:
                continue
            inst = station.fetched.instruction
            view = views[idx]
            operands = []
            all_ready = True
            for reg in (inst.rs1, inst.rs2):
                if reg is None:
                    continue
                if not self._source_ready(view, reg, station):
                    all_ready = False
                    break
                operands.append(view.values[reg])
            if not all_ready:
                continue
            if inst.is_load and not stores_done[idx]:
                continue
            if inst.is_store and not (mem_done[idx] and branches_resolved[idx]):
                continue
            candidates[idx] = True
            ready_operands[idx] = tuple(operands)

        # pass 2: shared-ALU arbitration (memory ops use the memory
        # network, not the ALU pool)
        alu_ok = self._alu_grants(
            occupied,
            [
                candidates[i] and not occupied[i].fetched.instruction.is_memory
                for i in range(len(occupied))
            ],
        )

        issued = 0
        for idx, station in enumerate(occupied):
            if not candidates[idx]:
                continue
            inst = station.fetched.instruction
            if not inst.is_memory and not alu_ok[idx]:
                if self._tracing:
                    self.tracer.count("issue.alu_denied")
                continue  # no free ALU this cycle; retry next cycle
            operands = ready_operands[idx]
            station.operands = operands
            station.issue_cycle = self.cycle
            issued += 1
            if self._tracing:
                self._trace_issue(station, views[idx], inst)
            if inst.is_load:
                station.address = to_unsigned(operands[0] + inst.imm)
                forwarder = (
                    self._find_forwarding_store(occupied, idx, station.address)
                    if self.config.store_forwarding
                    else None
                )
                if forwarder is not None:
                    # memory renaming: take the store's data directly
                    self.forwarded_loads += 1
                    if self._tracing:
                        self.tracer.count("mem.store_forward_hits")
                    station.result = forwarder.operands[1]
                    station.state = StationState.EXECUTING
                    station.remaining = 1
                else:
                    station.memory_request_id = self.memory.submit_load(
                        station.address, leaf=station.index
                    )
                    station.state = StationState.MEMORY
            elif inst.is_store:
                station.address = to_unsigned(operands[0] + inst.imm)
                station.memory_request_id = self.memory.submit_store(
                    station.address, operands[1], leaf=station.index
                )
                station.state = StationState.MEMORY
            else:
                station.state = StationState.EXECUTING
                station.remaining = self.config.latencies.latency_of(inst.op)
        if self._tracing and issued:
            self.tracer.count("issue.cycles_active")
            self.tracer.count("issue.instructions", issued)

    def _trace_issue(self, station: Station, view: _RegView, inst) -> None:
        """Record forwarding provenance and memory traffic for one issue."""
        for reg in (inst.rs1, inst.rs2):
            if reg is None:
                continue
            writer = view.writers[reg] if view.writers is not None else None
            if writer is not None:
                hops = tree_level_distance(writer.index, station.index)
                self.tracer.count("forward.from_station")
                self.tracer.count(f"forward.hops.{hops}")
                self.tracer.count(
                    "forward.latency_cycles",
                    self._forward_latency(writer.index, station.index),
                )
            else:
                self.tracer.count("forward.from_regfile")
        if inst.is_load:
            self.tracer.count("mem.loads")
        elif inst.is_store:
            self.tracer.count("mem.stores")

    def _phase_execute(self, occupied: list[Station]) -> None:
        """Advance functional units; resolve branches; handle squashes."""
        for idx, station in enumerate(occupied):
            if station.state is not StationState.EXECUTING:
                continue
            station.remaining -= 1
            if station.remaining > 0:
                continue
            inst = station.fetched.instruction
            station.state = StationState.DONE
            station.complete_cycle = self.cycle
            op = inst.op
            if inst.is_branch:
                station.taken = branch_taken(op, station.operands[0], station.operands[1])
                actual_next = inst.target if station.taken else station.fetched.static_index + 1
                if station.taken != station.fetched.predicted_taken:
                    self._mispredict(station, actual_next)
                    return  # younger stations were squashed; stop this phase
            elif op is Opcode.J:
                station.taken = True
            elif op in (Opcode.HALT, Opcode.NOP):
                pass
            elif inst.is_load:
                pass  # store-forwarded load: result preset at issue
            else:
                station.result = alu_result(
                    op,
                    station.operands[0] if station.operands else 0,
                    station.operands[1] if len(station.operands) > 1 else 0,
                    inst.imm,
                )

    def _mispredict(self, station: Station, actual_next: int) -> None:
        """Squash everything younger than *station* and redirect fetch."""
        self.mispredictions += 1
        order = self._ring_order()
        past_branch = False
        for pos in order:
            current = self.stations[pos]
            if past_branch and current.occupied:
                if current.memory_request_id is not None and not current.done:
                    self._cancelled_requests.add(current.memory_request_id)
                current.clear()
                self.squashed += 1
            if current is station:
                past_branch = True
        # rewind the fetch sequence numbering to just after the branch
        self.seq = station.seq + 1
        self.fetch.redirect(actual_next)

    def _phase_memory(self, occupied: list[Station]) -> None:
        completions = self.memory.tick()
        if not completions:
            return
        by_request = {
            station.memory_request_id: station
            for station in occupied
            if station.state is StationState.MEMORY
        }
        for request_id, value in completions.items():
            if request_id in self._cancelled_requests:
                self._cancelled_requests.discard(request_id)
                continue
            station = by_request.get(request_id)
            if station is None:
                continue
            station.state = StationState.DONE
            station.complete_cycle = self.cycle
            if station.fetched.instruction.is_load:
                station.result = value

    def _phase_commit(self) -> None:
        """Commit finished oldest instructions; deallocate whole clusters.

        Commitment (applying results to the architectural register file,
        in program order) is per instruction; *deallocation* frees an
        aligned cluster of ``cluster_size`` stations only once every
        station in it has committed — the hybrid's "super execution
        station" behaviour.  With ``cluster_size == 1`` this is exactly
        the Ultrascalar I's per-station reuse.
        """
        for pos in self._ring_order():
            station = self.stations[pos]
            if not station.occupied:
                break
            if station.committed:
                continue
            if not station.done:
                break
            inst = station.fetched.instruction
            reg = station.writes_register
            if reg is not None and station.result is not None:
                self.committed_regs[reg] = station.result
                self._reg_source_pos[reg] = station.index
                self._reg_source_cycle[reg] = station.complete_cycle
            taken = station.taken
            next_pc = station.fetched.static_index + 1
            if inst.is_control and taken:
                next_pc = inst.target
            self.committed.append(
                StepOutcome(
                    static_index=station.fetched.static_index,
                    instruction=inst,
                    operand_values=station.operands,
                    result=station.result,
                    address=station.address,
                    taken=taken,
                    next_pc=next_pc,
                )
            )
            self.timings.append(
                TimingRecord(
                    seq=station.seq,
                    static_index=station.fetched.static_index,
                    instruction=inst,
                    fetch_cycle=station.fetch_cycle,
                    issue_cycle=station.issue_cycle,
                    complete_cycle=station.complete_cycle,
                    commit_cycle=self.cycle,
                )
            )
            if inst.is_branch:
                self.predictor.update(station.fetched.static_index, bool(taken))
            if inst.is_halt:
                self.halted = True
            station.committed = True
            if self._tracing:
                self.tracer.count("commit.instructions")
                self.tracer.event(
                    str(inst),
                    cat="instruction",
                    ts=station.issue_cycle,
                    dur=station.complete_cycle - station.issue_cycle + 1,
                    tid=station.index,
                    seq=station.seq,
                    static_index=station.fetched.static_index,
                    fetch_cycle=station.fetch_cycle,
                    commit_cycle=self.cycle,
                )

        # Deallocate leading fully-committed clusters.  `oldest` is always
        # cluster-aligned: the initial fill starts at position 0 and
        # clusters free as aligned units.
        while True:
            members = [
                self.stations[(self.oldest + k) % self.n]
                for k in range(self.cluster_size)
            ]
            if not all(s.occupied and s.committed for s in members):
                break
            for s in members:
                s.clear()
            self.oldest = (self.oldest + self.cluster_size) % self.n
            if self._tracing:
                self.tracer.count(f"fetch.refills.{self._refill_mode}")
                self.tracer.count("fetch.refilled_stations", self.cluster_size)

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Advance the processor one clock cycle."""
        self._phase_fetch()
        occupied = self._occupied_in_order()
        if self._tracing:
            self.tracer.count("cycles")
            self.tracer.count("commit.window_occupancy", len(occupied))
        views = self._register_views(occupied)
        self._phase_issue(occupied, views)
        self._phase_execute(occupied)
        self._phase_memory(self._occupied_in_order())
        self._phase_commit()
        if self._cycle_hook is not None:
            self._cycle_hook(self)
        self.cycle += 1

    def _idle(self) -> bool:
        return self.fetch.stalled() and not any(s.occupied for s in self.stations)

    def run(self) -> ProcessorResult:
        """Run to completion (HALT committed, or program exhausted)."""
        while not self.halted and not self._idle():
            if self.cycle >= self.config.max_cycles:
                raise RuntimeError(f"exceeded max_cycles={self.config.max_cycles}")
            self.step()
        if self._tracing:
            self.tracer.count("commit.squashed", self.squashed)
            self.tracer.count("commit.mispredictions", self.mispredictions)
            memory_counters = getattr(self.memory, "counters", None)
            if memory_counters is not None:
                for name, value in memory_counters().items():
                    self.tracer.count(name, value)
            for name, value in self.fetch.counters().items():
                self.tracer.count(name, value)
        return ProcessorResult(
            cycles=self.cycle,
            committed=self.committed,
            registers=list(self.committed_regs),
            memory=self.memory.final_state(),
            timings=self.timings,
            halted=self.halted,
            squashed=self.squashed,
            mispredictions=self.mispredictions,
            forwarded_loads=self.forwarded_loads,
            stats=self.tracer.snapshot(),
        )
