"""Host-performance observability: benchmarks, baselines, profiles.

The simulator's telemetry (:mod:`repro.telemetry`) measures *simulated*
cycles; this package measures the *host* — how fast the simulation
itself runs — so optimisation PRs have a target and regressions have a
tripwire.  See ``docs/benchmarking.md`` for the workflow.

* :mod:`repro.bench.registry` — the hot-path benchmark catalogue;
* :mod:`repro.bench.timing` — the stable timing protocol;
* :mod:`repro.bench.run` — measurement plus the telemetry stats join;
* :mod:`repro.bench.artifact` — the ``repro-bench/1`` JSON artifact;
* :mod:`repro.bench.compare` — baseline diffing and the regression gate;
* :mod:`repro.bench.profile` — cProfile hooks with collapsed stacks;
* :mod:`repro.bench.cli` — ``python -m repro bench``.
"""

from repro.bench.artifact import (
    BENCH_SCHEMA,
    build_bench_artifact,
    load_bench_artifact,
    validate_bench_artifact,
    write_bench_artifact,
)
from repro.bench.compare import (
    Delta,
    compare_artifacts,
    format_compare_table,
    regressions,
)
from repro.bench.registry import REGISTRY, Benchmark, register, select
from repro.bench.run import run_benchmark, run_benchmarks
from repro.bench.timing import BenchRecord, Timing, host_fingerprint, measure

__all__ = [
    "BENCH_SCHEMA",
    "BenchRecord",
    "Benchmark",
    "Delta",
    "REGISTRY",
    "Timing",
    "build_bench_artifact",
    "compare_artifacts",
    "format_compare_table",
    "host_fingerprint",
    "load_bench_artifact",
    "measure",
    "register",
    "regressions",
    "run_benchmark",
    "run_benchmarks",
    "select",
    "validate_bench_artifact",
    "write_bench_artifact",
]
