"""A MIPS-like 32-bit binary instruction encoding.

Layout (bit 31 is the most significant):

* R-format  ``op[31:26] rd[25:21] rs1[20:16] rs2[15:11] zero[10:0]``
* I-format  ``op[31:26] rd[25:21] rs1[20:16] imm16[15:0]``   (also MEM)
* B-format  ``op[31:26] rs1[25:21] rs2[20:16] target16[15:0]``
* J-format  ``op[31:26] target26[25:0]``

Register fields are 5 bits, so the binary encoding supports machines with
up to 32 logical registers (the paper's empirical configuration).  The
rest of the library operates on decoded :class:`Instruction` objects and
supports any ``L``; the encoder exists so that the fetch path, trace
cache, and instruction memory can store realistic 32-bit words.
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.opcodes import CODES, Format, Opcode
from repro.util.bitops import to_signed, to_unsigned


class EncodingError(ValueError):
    """Raised when an instruction cannot be represented in 32 bits."""


_REG_BITS = 5
_IMM_BITS = 16
_TARGET_BITS = 26


def _check_reg(reg: int) -> int:
    if not 0 <= reg < (1 << _REG_BITS):
        raise EncodingError(f"register r{reg} does not fit in {_REG_BITS} bits")
    return reg


def _check_imm(imm: int, bits: int) -> int:
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not lo <= imm <= hi:
        raise EncodingError(f"immediate {imm} does not fit in {bits} signed bits")
    return to_unsigned(imm, bits)


def _check_target(target: int, bits: int) -> int:
    if not 0 <= target < (1 << bits):
        raise EncodingError(f"target {target} does not fit in {bits} bits")
    return target


def encode_instruction(inst: Instruction) -> int:
    """Encode *inst* into a 32-bit word."""
    op = inst.op.code << 26
    fmt = inst.op.fmt
    if fmt is Format.R3:
        return (
            op
            | (_check_reg(inst.rd) << 21)
            | (_check_reg(inst.rs1) << 16)
            | (_check_reg(inst.rs2) << 11)
        )
    if fmt is Format.R2:
        return op | (_check_reg(inst.rd) << 21) | (_check_reg(inst.rs1) << 16)
    if fmt is Format.I2:
        return (
            op
            | (_check_reg(inst.rd) << 21)
            | (_check_reg(inst.rs1) << 16)
            | _check_imm(inst.imm, _IMM_BITS)
        )
    if fmt is Format.I1:
        return op | (_check_reg(inst.rd) << 21) | _check_imm(inst.imm, _IMM_BITS)
    if fmt is Format.MEM:
        data_reg = inst.rd if inst.op is Opcode.LW else inst.rs2
        return (
            op
            | (_check_reg(data_reg) << 21)
            | (_check_reg(inst.rs1) << 16)
            | _check_imm(inst.imm, _IMM_BITS)
        )
    if fmt is Format.B2:
        return (
            op
            | (_check_reg(inst.rs1) << 21)
            | (_check_reg(inst.rs2) << 16)
            | _check_target(inst.target, _IMM_BITS)
        )
    if fmt is Format.J:
        return op | _check_target(inst.target, _TARGET_BITS)
    return op  # Format.NONE


def decode_instruction(word: int) -> Instruction:
    """Decode a 32-bit word back into an :class:`Instruction`."""
    if not 0 <= word < (1 << 32):
        raise EncodingError(f"word {word:#x} is not a 32-bit value")
    code = (word >> 26) & 0x3F
    if code not in CODES:
        raise EncodingError(f"unknown opcode code {code}")
    op = CODES[code]
    fmt = op.fmt
    f21 = (word >> 21) & 0x1F
    f16 = (word >> 16) & 0x1F
    f11 = (word >> 11) & 0x1F
    imm = to_signed(word & 0xFFFF, _IMM_BITS)
    if fmt is Format.R3:
        return Instruction(op, rd=f21, rs1=f16, rs2=f11)
    if fmt is Format.R2:
        return Instruction(op, rd=f21, rs1=f16)
    if fmt is Format.I2:
        return Instruction(op, rd=f21, rs1=f16, imm=imm)
    if fmt is Format.I1:
        return Instruction(op, rd=f21, imm=imm)
    if fmt is Format.MEM:
        if op is Opcode.LW:
            return Instruction(op, rd=f21, rs1=f16, imm=imm)
        return Instruction(op, rs2=f21, rs1=f16, imm=imm)
    if fmt is Format.B2:
        return Instruction(op, rs1=f21, rs2=f16, target=word & 0xFFFF)
    if fmt is Format.J:
        return Instruction(op, target=word & ((1 << _TARGET_BITS) - 1))
    return Instruction(op)
