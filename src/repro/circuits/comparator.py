"""Register-number equality comparators (the paper's Figure 7/8 crosspoints).

Each Ultrascalar II crosspoint compares a column's requested register
number with a row's written register number.  The comparator is built
from per-bit XNORs followed by an AND reduction tree, giving gate depth
``1 + ceil(log2(bits))`` — the paper's "additional O(log log L) gate
delay" for ``bits = ceil(log2 L)``.
"""

from __future__ import annotations

from repro.circuits.netlist import GateKind, Net, Netlist


def register_number_bits(num_registers: int) -> int:
    """Bits needed to name one of *num_registers* registers (min 1)."""
    if num_registers < 1:
        raise ValueError("need at least one register")
    return max(1, (num_registers - 1).bit_length())


def build_equality_comparator(netlist: Netlist, a: list[Net], b: list[Net]) -> Net:
    """Build ``a == b`` over two equal-width buses; returns the match net."""
    if len(a) != len(b):
        raise ValueError("bus widths differ")
    if not a:
        raise ValueError("cannot compare zero-width buses")
    bits = [netlist.add_gate(GateKind.XNOR, ai, bi) for ai, bi in zip(a, b)]
    if len(bits) == 1:
        return bits[0]
    return netlist.reduce_tree(GateKind.AND, bits)


def build_constant_match(netlist: Netlist, a: list[Net], constant: int) -> Net:
    """Build ``a == constant`` (used by the register-file rows, whose numbers are fixed)."""
    if not a:
        raise ValueError("cannot compare zero-width buses")
    bits = []
    for i, net in enumerate(a):
        if (constant >> i) & 1:
            bits.append(netlist.add_gate(GateKind.BUF, net))
        else:
            bits.append(netlist.add_gate(GateKind.NOT, net))
    if len(bits) == 1:
        return bits[0]
    return netlist.reduce_tree(GateKind.AND, bits)
