"""Unit tests for the telemetry subsystem: tracers, sessions, engine
counters, and the Chrome trace-event export.

The counter-exactness tests pin a hand-scheduled four-instruction
program on all three processor designs; the golden-counter test pins
the same run against the committed ``tests/golden/telemetry_counters.json``
so counter regressions show up as a diffable artifact change.
"""

import json
import pathlib

import pytest

from repro.isa import assemble
from repro.telemetry import (
    NULL_TRACER,
    CountingTracer,
    EventTracer,
    NullTracer,
    TraceEvent,
    Tracer,
    build_chrome_trace,
    collecting,
    current_tracer,
    validate_chrome_trace,
)
from repro.ultrascalar import (
    ProcessorConfig,
    make_hybrid,
    make_ultrascalar1,
    make_ultrascalar2,
)
from repro.workloads import store_load_pairs

#: four instructions, hand-schedulable by eye: an immediate write to
#: r1, a store of r1 (one register forward), a load that can be
#: store-forwarded, and the halt — all four fetch in one cycle into a
#: four-station window
FOUR_INSTRUCTIONS = """
    addi r1, r0, 7
    sw   r1, 0(r0)
    lw   r2, 0(r0)
    halt
"""

GOLDEN_COUNTERS = pathlib.Path("tests/golden/telemetry_counters.json")


def build(kind: str, tracer=None):
    """One of the three factories on the four-instruction program."""
    program = assemble(FOUR_INSTRUCTIONS)
    config = ProcessorConfig(window_size=4, fetch_width=4)
    if kind == "us1":
        return make_ultrascalar1(program, config, tracer=tracer)
    if kind == "us2":
        return make_ultrascalar2(program, config, tracer=tracer)
    return make_hybrid(program, 2, config, tracer=tracer)


class TestTracers:
    def test_null_tracer_is_disabled_and_empty(self):
        tracer = NullTracer()
        tracer.count("anything", 5)
        tracer.event("e", cat="c", ts=0)
        assert tracer.enabled is False
        assert tracer.snapshot() == {}

    def test_counting_tracer_accumulates_and_sorts(self):
        tracer = CountingTracer()
        tracer.count("b")
        tracer.count("a", 2)
        tracer.count("b", 3)
        assert list(tracer.snapshot().items()) == [("a", 2), ("b", 4)]

    def test_counting_tracer_merge(self):
        tracer = CountingTracer()
        tracer.count("x")
        tracer.merge({"x": 2, "y": 5})
        assert tracer.snapshot() == {"x": 3, "y": 5}

    def test_event_tracer_records_timeline(self):
        tracer = EventTracer()
        tracer.event("inst", cat="instruction", ts=3, dur=2, tid=1, seq=0)
        [event] = tracer.events
        assert event == TraceEvent(
            name="inst", cat="instruction", ts=3, dur=2, tid=1, args={"seq": 0}
        )

    def test_implementations_satisfy_protocol(self):
        for tracer in (NullTracer(), CountingTracer(), EventTracer()):
            assert isinstance(tracer, Tracer)


class TestSession:
    def test_default_is_null_tracer(self):
        assert current_tracer() is NULL_TRACER

    def test_collecting_installs_and_restores(self):
        with collecting() as tracer:
            assert current_tracer() is tracer
            assert isinstance(tracer, CountingTracer)
        assert current_tracer() is NULL_TRACER

    def test_sessions_nest(self):
        outer = CountingTracer()
        inner = CountingTracer()
        with collecting(outer):
            with collecting(inner):
                assert current_tracer() is inner
            assert current_tracer() is outer

    def test_session_tracer_reaches_engines(self):
        with collecting() as tracer:
            build("us1").run()
        assert tracer.snapshot()["commit.instructions"] == 4

    def test_restored_after_exception(self):
        with pytest.raises(RuntimeError):
            with collecting():
                raise RuntimeError("boom")
        assert current_tracer() is NULL_TRACER


class TestCounterExactness:
    """Hand-derived counters for the four-instruction program.

    All four instructions fetch in cycle 0 (one active fetch cycle,
    four stations refilled); the remaining cycles fetch nothing
    (starved: the program is exhausted).  Four instructions issue and
    commit; the store and the load each hit memory once.
    """

    def expected_common(self):
        return {
            "fetch.instructions": 4,
            "fetch.cycles_active": 1,
            "fetch.delivered": 4,
            "fetch.refilled_stations": 4,
            "issue.instructions": 4,
            "commit.instructions": 4,
            "commit.mispredictions": 0,
            "commit.squashed": 0,
            "mem.loads": 1,
            "mem.stores": 1,
            "mem.requests": 2,
        }

    @pytest.mark.parametrize("kind", ["us1", "us2", "hybrid"])
    def test_common_counters_exact(self, kind):
        tracer = CountingTracer()
        build(kind, tracer=tracer).run()
        stats = tracer.snapshot()
        for name, value in self.expected_common().items():
            assert stats[name] == value, f"{kind}: {name}"

    def test_refill_mode_distinguishes_designs(self):
        snapshots = {}
        for kind in ("us1", "us2", "hybrid"):
            tracer = CountingTracer()
            build(kind, tracer=tracer).run()
            snapshots[kind] = tracer.snapshot()
        # per-station on the ring: each of the 4 stations recycles alone
        assert snapshots["us1"]["fetch.refills.per_station"] == 4
        # whole-batch on the US-II: one refill of the whole window
        assert snapshots["us2"]["fetch.refills.whole_batch"] == 1
        # per-cluster on the hybrid: two clusters of two stations
        assert snapshots["hybrid"]["fetch.refills.per_cluster"] == 2

    def test_station_forwarding_visible_where_it_happens(self):
        # the US-II keeps its batch allocated until everyone finishes,
        # so the store still sees r1's writer station at issue time; the
        # ring has already committed and recycled station 0, so the same
        # read comes from the register file
        us2 = CountingTracer()
        build("us2", tracer=us2).run()
        assert us2.snapshot()["forward.from_station"] == 1
        assert us2.snapshot()["forward.hops.1"] == 1
        us1 = CountingTracer()
        build("us1", tracer=us1).run()
        assert us1.snapshot()["forward.from_regfile"] == 4
        assert "forward.from_station" not in us1.snapshot()

    @pytest.mark.parametrize("kind", ["us1", "us2", "hybrid"])
    def test_golden_counters_pinned(self, kind):
        golden = json.loads(GOLDEN_COUNTERS.read_text(encoding="utf-8"))
        tracer = CountingTracer()
        build(kind, tracer=tracer).run()
        assert tracer.snapshot() == golden[kind]


class TestSeedKernelCoverage:
    """Acceptance criterion: all three factories report non-zero
    fetch/issue/forward/memory counters on a seed kernel."""

    @pytest.mark.parametrize("kind", ["us1", "us2", "hybrid"])
    def test_counter_families_nonzero(self, kind):
        workload = store_load_pairs(6)
        config = ProcessorConfig(window_size=8, fetch_width=4)
        tracer = CountingTracer()
        kwargs = dict(
            config=config,
            initial_registers=workload.registers_for(),
            tracer=tracer,
        )
        if kind == "us1":
            make_ultrascalar1(workload.program, **kwargs).run()
        elif kind == "us2":
            make_ultrascalar2(workload.program, **kwargs).run()
        else:
            make_hybrid(workload.program, 2, **kwargs).run()
        stats = tracer.snapshot()
        for family in ("fetch.", "issue.", "forward.", "mem."):
            assert any(
                name.startswith(family) and value > 0
                for name, value in stats.items()
            ), f"{kind}: no non-zero {family}* counter in {sorted(stats)}"


class TestTracingChangesNothing:
    """Observing a run must not change it."""

    @pytest.mark.parametrize("kind", ["us1", "us2", "hybrid"])
    def test_traced_run_matches_untraced(self, kind):
        plain = build(kind).run()
        traced = build(kind, tracer=EventTracer()).run()
        assert traced.cycles == plain.cycles
        assert traced.registers == plain.registers
        assert [t.issue_cycle for t in traced.timings] == [
            t.issue_cycle for t in plain.timings
        ]

    def test_untraced_result_has_empty_stats(self):
        result = build("us1").run()
        assert result.stats == {}

    def test_golden_reports_byte_identical_without_tracing(self):
        # the default path (no session, NullTracer) must reproduce the
        # committed report text exactly — tracing is strictly additive
        from repro.experiments import fig3_timing

        golden = pathlib.Path("tests/golden/fig3.txt").read_text(encoding="utf-8")
        assert fig3_timing.report() == golden


class TestChromeExport:
    def run_events(self):
        tracer = EventTracer()
        build("us2", tracer=tracer).run()
        return tracer

    def test_engine_emits_one_event_per_commit(self):
        tracer = self.run_events()
        assert len(tracer.events) == tracer.snapshot()["commit.instructions"]

    def test_trace_document_validates(self):
        tracer = self.run_events()
        document = build_chrome_trace(tracer.events, process_name="test")
        assert validate_chrome_trace(document) == []
        names = [e["name"] for e in document["traceEvents"]]
        assert names[0] == "process_name"  # metadata event first

    def test_validator_rejects_malformed_documents(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": []}) != []  # no schema
        bad_event = {
            "traceEvents": [{"ph": "X"}],
            "otherData": {"schema": "repro-trace/1"},
        }
        problems = validate_chrome_trace(bad_event)
        assert any("missing" in p for p in problems)

    def test_roundtrips_through_json(self, tmp_path):
        from repro.telemetry import write_chrome_trace

        tracer = self.run_events()
        path = write_chrome_trace(tmp_path / "t.json", tracer.events)
        assert validate_chrome_trace(json.loads(path.read_text())) == []
