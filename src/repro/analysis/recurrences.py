"""Exact numeric solvers for the paper's layout recurrences.

These solve the recurrences symbol-free (given concrete constants) so
the closed forms can be checked against them by exponent fitting:

* Ultrascalar I side length:
  ``X(n) = a L + b M(n) + 2 X(n/4)``, ``X(1) = s0``.
* Hybrid side length:
  ``U(n) = a L + b M(n) + 2 U(n/4)`` for n > C, ``U(C) = cluster(C)``.
* Closed forms for the three M(n) cases (Section 3).
"""

from __future__ import annotations

import math
from typing import Callable


def solve_side_recurrence(
    n: int,
    L: int,
    bandwidth: Callable[[int], float],
    register_coeff: float = 1.0,
    memory_coeff: float = 1.0,
    base: float | None = None,
) -> float:
    """Numerically evaluate X(n) = reg + mem + 2 X(n/4) down to X(1).

    *n* is rounded up to a power of 4.  ``base`` defaults to
    ``register_coeff * L`` (a 1-station Ultrascalar has width Θ(L)).
    """
    if n < 1 or L < 1:
        raise ValueError("n and L must be positive")
    m = 1
    while m < n:
        m *= 4
    base_value = register_coeff * L if base is None else base
    if m == 1:
        return base_value
    return (
        register_coeff * L
        + memory_coeff * bandwidth(m)
        + 2 * solve_side_recurrence(m // 4, L, bandwidth, register_coeff, memory_coeff, base)
    )


def solve_hybrid_recurrence(
    n: int,
    cluster_size: int,
    L: int,
    bandwidth: Callable[[int], float],
    register_coeff: float = 1.0,
    memory_coeff: float = 1.0,
    cluster_side: Callable[[int], float] | None = None,
) -> float:
    """Numerically evaluate the hybrid recurrence U(n).

    ``U(n) = Theta(n + L)`` for n <= C; else
    ``U(n) = reg + mem + 2 U(n/4)``.
    """
    if n < 1 or cluster_size < 1 or L < 1:
        raise ValueError("parameters must be positive")
    side_of_cluster = cluster_side or (lambda c: float(c + L))
    if n <= cluster_size:
        return side_of_cluster(n)
    return (
        register_coeff * L
        + memory_coeff * bandwidth(n)
        + 2 * solve_hybrid_recurrence(
            max(cluster_size, n // 4),
            cluster_size,
            L,
            bandwidth,
            register_coeff,
            memory_coeff,
            cluster_side,
        )
    )


def x_closed_form(n: int, L: int, m_exponent: float, m_scale: float = 1.0) -> float:
    """The paper's closed-form X(n) for M(n) = m_scale * n**m_exponent.

    Case 1 (exp < 1/2):  X = Theta(sqrt(n) L)
    Case 2 (exp = 1/2):  X = Theta(sqrt(n) (L + log n))
    Case 3 (exp > 1/2):  X = Theta(sqrt(n) L + M(n))
    """
    if n < 1 or L < 1:
        raise ValueError("n and L must be positive")
    root = math.sqrt(n)
    if m_exponent < 0.5:
        return root * L
    if m_exponent == 0.5:
        return root * (L + math.log2(max(2, n)))
    return root * L + m_scale * n**m_exponent


def u_closed_form(n: int, cluster_size: int, L: int, m_exponent: float,
                  m_scale: float = 1.0) -> float:
    """The paper's hybrid solution
    ``U(n) = Theta(M(n) + L sqrt(n)/sqrt(C) + sqrt(n C))`` for n >= C."""
    if n < cluster_size:
        raise ValueError("need n >= cluster_size")
    return (
        m_scale * n**m_exponent
        + L * math.sqrt(n) / math.sqrt(cluster_size)
        + math.sqrt(n * cluster_size)
    )


def optimal_cluster_closed_form(L: int) -> float:
    """dU/dC = 0  =>  C = Theta(L) (the paper's Section 6 conclusion)."""
    if L < 1:
        raise ValueError("L must be positive")
    return float(L)
