"""The ``python -m repro verify`` subcommand.

Fans seeded fuzz shards out across the runner pool, each shard
generating random programs and differentially testing every backend
against the sequential oracle (see :mod:`repro.verify.fuzz`).

Usage::

    python -m repro verify                       # default smoke sweep
    python -m repro verify --seeds 0:50 --budget 500
    python -m repro verify --designs us1,us2 --sizes 4,8,16
    python -m repro verify --repro failures/seed00000003.json

Options::

    --seeds A:B     seed range (half-open), or a count N meaning 0:N
    --budget N      generated body instructions per shard (default 200)
    --designs CSV   backends to test (default: all of them)
    --sizes CSV     window sizes; the wrap-free size is always added
    --no-minimize   skip shrinking failing programs
    --no-invariants skip the per-cycle engine invariant checks
    --jobs N        worker processes (default 1: run in-process)
    --json PATH     write a repro-verify/1 artifact
    --failures-dir D  where reproducers land
                      (default .repro_cache/repro_failures/)
    --repro PATH    replay one recorded reproducer instead of fuzzing
    --timeout S     per-shard watchdog when --jobs > 1 (default 300)

Exit status: 0 all shards clean, 1 divergence or shard error, 2 usage.
"""

from __future__ import annotations

import argparse
import sys
from time import perf_counter

from repro.runner.metrics import STATUS_OK, JobResult
from repro.runner.pool import run_jobs
from repro.runner.registry import JobSpec
from repro.verify.artifact import (
    build_verify_artifact,
    validate_verify_artifact,
    write_verify_artifact,
)
from repro.verify.diff import DESIGNS
from repro.verify.fuzz import load_reproducer, parse_shard_report, run_case

DEFAULT_FAILURES_DIR = ".repro_cache/repro_failures"


def _parse_seeds(text: str) -> range:
    try:
        if ":" in text:
            start, stop = text.split(":", 1)
            seeds = range(int(start), int(stop))
        else:
            seeds = range(int(text))
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected A:B or a count, got {text!r}") from None
    if len(seeds) == 0:
        raise argparse.ArgumentTypeError(f"empty seed range {text!r}")
    return seeds


def _parse_designs(text: str) -> tuple[str, ...]:
    designs = tuple(part.strip() for part in text.split(",") if part.strip())
    unknown = sorted(set(designs) - set(DESIGNS))
    if unknown or not designs:
        raise argparse.ArgumentTypeError(
            f"unknown design(s) {unknown or text!r}; expected from {DESIGNS}"
        )
    return designs


def _parse_sizes(text: str) -> tuple[int, ...]:
    try:
        sizes = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected CSV of ints, got {text!r}") from None
    if not sizes or any(size < 1 for size in sizes):
        raise argparse.ArgumentTypeError(f"window sizes must be >= 1, got {text!r}")
    return sizes


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro verify", add_help=True)
    parser.add_argument("--seeds", type=_parse_seeds, default=range(8))
    parser.add_argument("--budget", type=int, default=200)
    parser.add_argument("--designs", type=_parse_designs, default=DESIGNS)
    parser.add_argument("--sizes", type=_parse_sizes, default=(4, 16))
    parser.add_argument("--no-minimize", action="store_true", dest="no_minimize")
    parser.add_argument("--no-invariants", action="store_true", dest="no_invariants")
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--json", dest="json_path", default=None)
    parser.add_argument("--failures-dir", dest="failures_dir", default=DEFAULT_FAILURES_DIR)
    parser.add_argument("--repro", dest="repro_path", default=None)
    parser.add_argument("--timeout", type=float, default=300.0)
    return parser


def _replay(
    path: str,
    designs: tuple[str, ...],
    sizes: tuple[int, ...],
    check_invariants: bool,
) -> int:
    """The ``--repro`` path: re-run one recorded failing case."""
    case = load_reproducer(path)
    print(f"replaying {path} (seed {case.seed}, {len(case.program)} instructions)")
    failure = run_case(case, sizes=sizes, designs=designs, check_invariants=check_invariants)
    if failure is None:
        print("reproducer no longer fails")
        return 0
    print(f"still fails at window={failure.window}:")
    for item in failure.describe():
        print(f"  {item['design']}.{item['field']}: {item['detail']}")
    return 1


def _shard_entry(result: JobResult) -> dict:
    """One artifact ``shards[]`` object from a runner job result."""
    if result.status == STATUS_OK:
        outcome = parse_shard_report(result.output)
        return {
            "seed": outcome.seed,
            "status": "ok" if outcome.ok else "failed",
            "cases": outcome.cases,
            "instructions": outcome.instructions,
            "failures": outcome.failures,
            "error": None,
        }
    return {
        "seed": result.kwargs.get("seed"),
        "status": result.status if result.status == "timeout" else "error",
        "cases": 0,
        "instructions": 0,
        "failures": [],
        "error": result.error_summary,
    }


def main(argv: list[str] | None = None) -> int:
    """Run the verify subcommand; returns a process exit code."""
    args = sys.argv[1:] if argv is None else argv
    try:
        opts = _build_parser().parse_args(args)
    except SystemExit as exc:
        return exc.code if isinstance(exc.code, int) else 2

    designs = tuple(opts.designs)
    sizes = tuple(opts.sizes)
    check_invariants = not opts.no_invariants
    if opts.repro_path is not None:
        return _replay(opts.repro_path, designs, sizes, check_invariants)

    seeds = list(opts.seeds)
    jobs = [
        JobSpec(
            experiment="verify",
            title="differential fuzz",
            module="repro.verify.fuzz",
            func="shard_report",
            kwargs={
                "seed": seed,
                "budget": opts.budget,
                "sizes": sizes,
                "designs": designs,
                "minimize": not opts.no_minimize,
                "check_invariants": check_invariants,
                "failures_dir": opts.failures_dir,
            },
            index=index,
            count=len(seeds),
        )
        for index, seed in enumerate(seeds)
    ]

    def emit(result: JobResult) -> None:
        entry = _shard_entry(result)
        line = (
            f"shard seed={entry['seed']} {entry['status']}: "
            f"{entry['cases']} case(s), {entry['instructions']} instruction(s)"
        )
        print(line)
        for failure in entry["failures"]:
            for item in failure["divergences"]:
                print(
                    f"  {item['design']}.{item['field']}: {item['detail']}",
                    file=sys.stderr,
                )
            if "reproducer" in failure:
                print(f"  reproducer: {failure['reproducer']}", file=sys.stderr)
        if entry["error"]:
            print(f"  {entry['error']}", file=sys.stderr)

    start = perf_counter()
    results = run_jobs(
        jobs,
        workers=opts.jobs,
        cache=None,  # fuzzing must re-execute; a result cache would hide bugs
        timeout=opts.timeout,
        retries=0,
        on_result=emit,
    )
    elapsed = perf_counter() - start

    shards = [_shard_entry(result) for result in results]
    document = build_verify_artifact(
        shards,
        designs=designs,
        sizes=sizes,
        budget=opts.budget,
        minimize=not opts.no_minimize,
        wall_time_s=elapsed,
    )
    problems = validate_verify_artifact(document)
    if problems:  # a malformed artifact is a bug in this module
        for problem in problems:
            print(f"artifact problem: {problem}", file=sys.stderr)
        return 1
    if opts.json_path:
        write_verify_artifact(opts.json_path, document)

    totals = document["totals"]
    ok = totals["failures"] == 0 and totals["errors"] == 0
    print(
        f"verify: {totals['shards']} shard(s), {totals['cases']} case(s), "
        f"{totals['instructions']} instruction(s), "
        f"{totals['failures']} failure(s), {totals['errors']} error(s) "
        f"in {elapsed:.1f}s",
        file=sys.stderr,
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
