"""Technology parameters and calibration.

All geometry in this package is measured in **tracks**: one track is the
pitch at which one datapath wire plus its share of the switching logic
can be laid out.  A track is deliberately coarser than a bare
metal pitch — in the paper's 3-metal 0.35 um process the register
datapath's "wires" are accompanied at every tree node by the
parallel-prefix mux cells, so the effective pitch is set by the
standard-cell row, not the metal rules.

Calibration: the paper reports a 64-station Ultrascalar I register
datapath (L = 32 x 32-bit, simple integer ALU) occupying 7 cm x 7 cm.
Our H-tree model gives X(64) = 8*s0 + 7*B tracks (s0 = station side,
B = switch-block side); with the default constants below and
``track_um = 4.0`` this reproduces ~7 cm, and the hybrid's 3.2 x 2.7 cm
follows from the same constants (see EXPERIMENTS.md, E3).  The
*ratios* between layouts — what the paper's empirical comparison is
about — do not depend on ``track_um`` at all.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Technology:
    """Process and layout-constant bundle.

    Attributes:
        name: human label.
        track_um: physical size of one track in micrometres (absolute
            scale only; ratios are scale-free).
        metal_layers: routing layers (3 in the paper's academic flow).
        wire_delay_per_track: relative delay of one track of repeatered
            wire, in gate-delay units ("wire delay can be made linear in
            wire length by inserting repeater buffers").
        station_logic_tracks: side contribution of one execution
            station's non-register logic (ALU + decode + control), in
            tracks, for a 32-bit machine; scaled by word width.
        regfile_bit_tracks: linear tracks per register-file bit cell.
        prefix_node_pitch: tracks of switch-block side per datapath wire
            passing through an H-tree prefix node (the P cells of
            Figure 6).
        grid_row_pitch_per_bit: tracks of Ultrascalar II grid row height
            per bit carried (value + ready + register-number wires).
        memory_wire_pitch: tracks of switch-block side per memory wire
            (the M cells of Figure 6).
    """

    name: str = "paper-0.35um-3metal"
    track_um: float = 4.0
    metal_layers: int = 3
    wire_delay_per_track: float = 0.02
    station_logic_tracks: float = 280.0
    regfile_bit_tracks: float = 0.55
    prefix_node_pitch: float = 1.25
    grid_row_pitch_per_bit: float = 0.7
    memory_wire_pitch: float = 1.25

    def __post_init__(self) -> None:
        for field_name in (
            "track_um",
            "wire_delay_per_track",
            "station_logic_tracks",
            "regfile_bit_tracks",
            "prefix_node_pitch",
            "grid_row_pitch_per_bit",
            "memory_wire_pitch",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")
        if self.metal_layers < 1:
            raise ValueError("need at least one metal layer")

    def tracks_to_cm(self, tracks: float) -> float:
        """Convert a track length to centimetres (1 um = 1e-4 cm)."""
        return tracks * self.track_um * 1e-4

    def tracks_to_mm(self, tracks: float) -> float:
        """Convert a track length to millimetres."""
        return tracks * self.track_um * 1e-3


#: The paper's empirical technology (0.35 um CMOS, 3 metal layers).
PAPER_TECH = Technology()
