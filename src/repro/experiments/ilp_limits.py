"""Experiment E15 — available ILP at very large windows.

The paper motivates scalability with the ILP-limits literature: "Lam
and Wilson suggest that ILP of ten to twenty is available with an
infinite instruction window"; "Patt et al argue that a window size of
1000's is the best way to use large chips"; and closes: "The amount of
parallelism available in a thousand-wide instruction window ... is not
well understood."

With the vectorized ring engine, we run that study on synthetic
dependence graphs: IPC versus window size (8 → 2048) for a range of
dependence densities.  The curves saturate at each workload's dataflow
limit — low-density code keeps gaining IPC deep into thousand-wide
windows, which is precisely the regime the Ultrascalar is built for.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ultrascalar.vector_engine import VectorRingEngine
from repro.util.tables import Table
from repro.workloads import random_ilp


#: sweep points the runner executes and the cache keys (kwargs for
#: :func:`report`)
SWEEP_POINTS: list[dict] = [
    {
        "densities": [0.2, 0.5, 0.8],
        "sizes": [8, 32, 128, 512, 2048],
        "instructions": 4000,
    }
]


@dataclass
class IlpCurve:
    """IPC vs window for one dependence density."""

    density: float
    windows: list[int]
    ipc: list[float]

    @property
    def saturation_ipc(self) -> float:
        """IPC at the largest window (the available-ILP estimate)."""
        return self.ipc[-1]

    def monotone(self) -> bool:
        """Bigger windows never hurt."""
        return all(b >= a - 1e-9 for a, b in zip(self.ipc, self.ipc[1:]))

    def gain_beyond(self, window: int) -> float:
        """IPC multiplier from the nearest swept window >= *window* to
        the largest window."""
        index = next(
            (i for i, w in enumerate(self.windows) if w >= window),
            len(self.windows) - 1,
        )
        at = self.ipc[index]
        return self.saturation_ipc / at if at else float("inf")


@dataclass
class IlpLimitsResult:
    """All curves."""

    curves: list[IlpCurve]

    def thousand_wide_window_pays(self, factor: float = 1.5) -> bool:
        """Patt et al.'s claim (as cited by the paper): thousand-wide
        windows are worth building — every density still gains at least
        *factor* going from a 128-entry window to the largest swept."""
        return all(curve.gain_beyond(128) >= factor for curve in self.curves)

    def looser_code_has_more_ilp(self) -> bool:
        """At every window, lower dependence density means higher IPC."""
        by_density = sorted(self.curves, key=lambda c: c.density)
        for i in range(len(by_density[0].windows)):
            ipcs = [curve.ipc[i] for curve in by_density]
            if ipcs != sorted(ipcs, reverse=True):
                return False
        return True


def run(
    densities: list[float] | None = None,
    sizes: list[int] | None = None,
    instructions: int = 4000,
) -> IlpLimitsResult:
    """Sweep (density, window size); IPC from the vector engine."""
    densities = densities or [0.2, 0.5, 0.8]
    windows = sizes or [8, 32, 128, 512, 2048]
    curves = []
    for density in densities:
        workload = random_ilp(instructions, density, seed=int(1000 * density) + 7)
        ipcs = []
        for window in windows:
            engine = VectorRingEngine(
                workload.program, window, min(window, 64),
                initial_registers=workload.registers_for(),
            )
            ipcs.append(engine.run().ipc)
        curves.append(IlpCurve(density=density, windows=windows, ipc=ipcs))
    return IlpLimitsResult(curves=curves)


def report(
    densities: list[float] | None = None,
    sizes: list[int] | None = None,
    instructions: int = 4000,
) -> str:
    """The ILP-vs-window table."""
    outcome = run(densities, sizes, instructions)
    windows = outcome.curves[0].windows
    table = Table(
        ["dependence density"] + [f"n={w}" for w in windows],
        title="E15 — IPC vs window size at large n (vector engine; "
        "the thousand-wide-window study the paper calls for)",
    )
    for curve in outcome.curves:
        table.add_row(
            [curve.density] + [round(v, 2) for v in curve.ipc]
        )
    return table.render()


if __name__ == "__main__":  # pragma: no cover
    print(report())
