"""A NumPy-vectorized Ultrascalar ring engine for large-n studies.

The object-per-station :class:`repro.ultrascalar.ring.RingProcessor` is
convenient and fully general but too slow for the paper's interesting
regime (hundreds to thousands of stations).  This engine vectorizes the
per-cycle datapath across stations and registers:

* the per-register "nearest preceding done writer" CSPP is one
  ``np.maximum.accumulate`` over a ``(L, n)`` writer matrix;
* issue, execution countdown, and commit are boolean array operations.

Scope: straight-line register programs (the workloads the large-n
throughput sweeps use) — ALU/MUL/DIV ops, immediates, MOV/NOP/HALT.
Memory operations and branches are rejected at construction; use
:class:`RingProcessor` for those.  On the supported programs the engine
is differentially tested to produce *identical* cycle counts, final
registers, and per-instruction issue times as :class:`RingProcessor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.isa.latency import LatencyModel
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.telemetry.session import resolve_tracer
from repro.telemetry.tracer import Tracer
from repro.util.bitops import WORD_MASK

_SUPPORTED = {
    Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.SLL, Opcode.SRL, Opcode.MUL, Opcode.DIV,
    Opcode.ADDI, Opcode.MULI, Opcode.LI, Opcode.MOV,
    Opcode.NOP, Opcode.HALT,
}

# dense op codes for vectorized dispatch
_OP_INDEX = {op: i for i, op in enumerate(sorted(_SUPPORTED, key=lambda o: o.code))}

_EMPTY, _WAITING, _EXECUTING, _DONE = 0, 1, 2, 3


@dataclass
class VectorResult:
    """Outcome of a vector-engine run."""

    cycles: int
    registers: list[int]
    issue_cycles: list[int]
    complete_cycles: list[int]
    #: aggregated telemetry counters (empty under the default NullTracer)
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return len(self.issue_cycles) / self.cycles if self.cycles else 0.0


class VectorRingEngine:
    """See module docstring.

    Args:
        program: a straight-line program (last instruction HALT or not).
        window_size: number of stations, ``n``.
        fetch_width: instructions fetched per cycle.
        latencies: functional-unit latencies.
    """

    def __init__(
        self,
        program: Program,
        window_size: int,
        fetch_width: int,
        latencies: LatencyModel | None = None,
        initial_registers: list[int] | None = None,
        tracer: Tracer | None = None,
    ):
        if window_size < 1 or fetch_width < 1:
            raise ValueError("window and fetch width must be positive")
        for index, inst in enumerate(program):
            if inst.op not in _SUPPORTED:
                raise ValueError(
                    f"vector engine does not support {inst.op.mnemonic} "
                    f"(instruction {index}); use RingProcessor"
                )
        self.program = program
        self.tracer = resolve_tracer(tracer)
        self._tracing = self.tracer.enabled
        self.n = window_size
        self.fetch_width = fetch_width
        self.latencies = latencies or LatencyModel()
        self.L = program.spec.num_registers

        m = len(program)
        # static per-instruction tables
        self.s_op = np.array([_OP_INDEX[inst.op] for inst in program], dtype=np.int64)
        self.s_rd = np.array(
            [inst.rd if inst.rd is not None else -1 for inst in program], dtype=np.int64
        )
        self.s_rs1 = np.array(
            [inst.rs1 if inst.rs1 is not None else -1 for inst in program], dtype=np.int64
        )
        self.s_rs2 = np.array(
            [inst.rs2 if inst.rs2 is not None else -1 for inst in program], dtype=np.int64
        )
        self.s_imm = np.array(
            [inst.imm if inst.imm is not None else 0 for inst in program], dtype=np.int64
        )
        self.s_lat = np.array(
            [self.latencies.latency_of(inst.op) for inst in program], dtype=np.int64
        )
        self.s_is_halt = np.array([inst.is_halt for inst in program], dtype=bool)
        self.m = m

        regs = initial_registers if initial_registers is not None else [0] * self.L
        if len(regs) != self.L:
            raise ValueError("initial register file has wrong size")
        self.committed_regs = np.array(regs, dtype=np.uint64)

        # dynamic station state
        n = self.n
        self.state = np.full(n, _EMPTY, dtype=np.int64)
        self.seq = np.full(n, -1, dtype=np.int64)       # dynamic index into program
        self.remaining = np.zeros(n, dtype=np.int64)
        self.result = np.zeros(n, dtype=np.uint64)
        self.oldest = 0
        self.next_fetch = 0
        self.cycle = 0
        self.issue_cycles = np.full(m, -1, dtype=np.int64)
        self.complete_cycles = np.full(m, -1, dtype=np.int64)
        self.committed_count = 0
        self.halted = False

    # ------------------------------------------------------------------

    def _compute(self, op_index: np.ndarray, a: np.ndarray, b: np.ndarray,
                 imm: np.ndarray) -> np.ndarray:
        """Vectorized ALU over uint64 operands (results masked to 32 bits)."""
        a64 = a.astype(np.uint64)
        b64 = b.astype(np.uint64)
        sa = a64.astype(np.int64)
        sa = np.where(sa >= 1 << 31, sa - (1 << 32), sa)
        sb = b64.astype(np.int64)
        sb = np.where(sb >= 1 << 31, sb - (1 << 32), sb)
        imm64 = imm.astype(np.int64)

        out = np.zeros_like(a64, dtype=np.int64)

        def sel(op: Opcode) -> np.ndarray:
            return op_index == _OP_INDEX[op]

        ai = a64.astype(np.int64)
        bi = b64.astype(np.int64)
        out = np.where(sel(Opcode.ADD), ai + bi, out)
        out = np.where(sel(Opcode.SUB), ai - bi, out)
        out = np.where(sel(Opcode.AND), ai & bi, out)
        out = np.where(sel(Opcode.OR), ai | bi, out)
        out = np.where(sel(Opcode.XOR), ai ^ bi, out)
        out = np.where(sel(Opcode.SLL), ai << (bi & 0x1F), out)
        out = np.where(sel(Opcode.SRL), ai >> (bi & 0x1F), out)
        out = np.where(sel(Opcode.MUL), (sa * sb) & WORD_MASK, out)
        # signed division with RISC-V edge cases
        safe_sb = np.where(sb == 0, 1, sb)
        quotient = np.abs(sa) // np.abs(safe_sb)
        quotient = np.where((sa < 0) != (safe_sb < 0), -quotient, quotient)
        quotient = np.where(sb == 0, -1, quotient)
        quotient = np.where((sa == -(1 << 31)) & (sb == -1), -(1 << 31), quotient)
        out = np.where(sel(Opcode.DIV), quotient, out)
        out = np.where(sel(Opcode.ADDI), ai + imm64, out)
        out = np.where(sel(Opcode.MULI), (sa * imm64) & WORD_MASK, out)
        out = np.where(sel(Opcode.LI), imm64, out)
        out = np.where(sel(Opcode.MOV), ai, out)
        return (out & WORD_MASK).astype(np.uint64)

    def step(self) -> None:
        """Advance one clock cycle (same phase order as RingProcessor)."""
        n, L = self.n, self.L

        # -- fetch ------------------------------------------------------
        if not self.halted:
            order = (self.oldest + np.arange(n)) % n
            empty_in_order = self.state[order] == _EMPTY
            occupied_count = (
                int(np.argmax(empty_in_order)) if empty_in_order.any() else n
            )
            free = order[occupied_count:]
            budget = min(self.fetch_width, len(free), self.m - self.next_fetch)
            loaded = 0
            for k in range(budget):
                pos = free[k]
                idx = self.next_fetch
                self.state[pos] = _WAITING
                self.seq[pos] = idx
                self.next_fetch += 1
                loaded += 1
                if self.s_is_halt[idx]:
                    break
            if self._tracing:
                if loaded:
                    self.tracer.count("fetch.cycles_active")
                    self.tracer.count("fetch.instructions", loaded)
                elif budget == 0 and self.next_fetch < self.m:
                    self.tracer.count("fetch.stall_cycles.window_full")

        # -- view + issue -------------------------------------------------
        order = (self.oldest + np.arange(n)) % n
        occ = self.state[order] != _EMPTY
        seq_ord = self.seq[order]
        safe_seq = np.where(seq_ord >= 0, seq_ord, 0)
        rd_ord = np.where(occ, self.s_rd[safe_seq], -1)
        done_ord = self.state[order] == _DONE
        result_ord = self.result[order]

        # nearest preceding done writer per register (the CSPP)
        reg_ids = np.arange(L)[:, None]
        writes = rd_ord[None, :] == reg_ids  # (L, n)
        write_pos = np.where(writes, np.arange(n)[None, :], -1)
        last_writer = np.maximum.accumulate(write_pos, axis=1)
        prev_writer = np.concatenate(
            [np.full((L, 1), -1, dtype=np.int64), last_writer[:, :-1]], axis=1
        )  # strictly earlier writer, (L, n)

        def source_view(src_regs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            """(value, ready) per order position for given source registers."""
            has_src = src_regs >= 0
            safe_src = np.where(has_src, src_regs, 0)
            writer = prev_writer[safe_src, np.arange(n)]
            from_committed = writer < 0
            safe_writer = np.where(from_committed, 0, writer)
            ready = from_committed | done_ord[safe_writer]
            value = np.where(
                from_committed,
                self.committed_regs[safe_src],
                result_ord[safe_writer],
            )
            ready = np.where(has_src, ready, True)
            value = np.where(has_src, value, np.uint64(0))
            return value, ready

        rs1_ord = np.where(occ, self.s_rs1[safe_seq], -1)
        rs2_ord = np.where(occ, self.s_rs2[safe_seq], -1)
        v1, r1 = source_view(rs1_ord)
        v2, r2 = source_view(rs2_ord)

        if self._tracing:
            self.tracer.count("cycles")
            self.tracer.count("commit.window_occupancy", int(occ.sum()))
        waiting = self.state[order] == _WAITING
        can_issue = waiting & r1 & r2
        if can_issue.any():
            positions = order[can_issue]
            seqs = self.seq[positions]
            self.state[positions] = _EXECUTING
            self.remaining[positions] = self.s_lat[seqs]
            self.issue_cycles[seqs] = self.cycle
            # compute results now; they publish when the countdown ends
            self.result[positions] = self._compute(
                self.s_op[seqs], v1[can_issue], v2[can_issue], self.s_imm[seqs]
            )
            if self._tracing:
                self.tracer.count("issue.cycles_active")
                self.tracer.count("issue.instructions", int(can_issue.sum()))

        # -- execute countdown -------------------------------------------
        executing = self.state == _EXECUTING
        self.remaining[executing] -= 1
        finishing = executing & (self.remaining == 0)
        if finishing.any():
            self.state[finishing] = _DONE
            self.complete_cycles[self.seq[finishing]] = self.cycle

        # -- commit ---------------------------------------------------------
        order = (self.oldest + np.arange(n)) % n
        done_prefix = (self.state[order] == _DONE)
        commits = int(np.argmax(~done_prefix)) if (~done_prefix).any() else n
        if commits:
            positions = order[:commits]
            seqs = self.seq[positions]
            rds = self.s_rd[seqs]
            has_rd = rds >= 0
            # in-order writes: later commits overwrite earlier ones
            self.committed_regs[rds[has_rd]] = self.result[positions][has_rd]
            if self.s_is_halt[seqs].any():
                self.halted = True
            self.state[positions] = _EMPTY
            self.seq[positions] = -1
            self.oldest = (self.oldest + commits) % n
            self.committed_count += commits
            if self._tracing:
                self.tracer.count("commit.instructions", commits)
                self.tracer.count("fetch.refills.per_station", commits)
                self.tracer.count("fetch.refilled_stations", commits)

        self.cycle += 1

    def run(self, max_cycles: int = 10_000_000) -> VectorResult:
        """Run until HALT (or the whole program) commits."""
        while not self.halted and self.committed_count < self.m:
            if self.cycle >= max_cycles:
                raise RuntimeError("vector engine exceeded max_cycles")
            self.step()
        return VectorResult(
            cycles=self.cycle,
            registers=[int(v) for v in self.committed_regs],
            issue_cycles=self.issue_cycles[: self.committed_count].tolist(),
            complete_cycles=self.complete_cycles[: self.committed_count].tolist(),
            stats=self.tracer.snapshot(),
        )
