"""Compare the three Ultrascalar designs on the paper's workload mix.

Usage::

    python examples/compare_processors.py

Runs every workload on the Ultrascalar I (wrap-around ring), the
Ultrascalar II (batch refill), and the hybrid (cluster refill), with
both a perfect oracle and a realistic bimodal predictor, and prints an
IPC table — the behavioural side of the paper's "identical scheduling
policies" claim plus the Ultrascalar II's idle-tax.
"""

from repro.api import IdealMemory, ProcessorConfig, build_processor
from repro.frontend.branch_predictor import BimodalPredictor
from repro.util.tables import Table
from repro.workloads import (
    daxpy_loop,
    dependency_chain,
    independent_ops,
    paper_sequence,
    random_ilp,
    reduction_loop,
)


def run_one(workload, kind, predictor=None):
    config = ProcessorConfig(window_size=32, fetch_width=8)
    memory = IdealMemory()
    memory.load_image(workload.memory_image)
    processor = build_processor(kind, config, cluster_size=8)
    return processor.run(
        workload.program,
        memory=memory,
        predictor=predictor,
        initial_registers=workload.registers_for(),
    )


def main() -> None:
    workloads = [
        paper_sequence(),
        dependency_chain(40),
        independent_ops(40),
        random_ilp(80, 0.4, seed=7),
        reduction_loop(12),
        daxpy_loop(10),
    ]
    table = Table(
        ["Workload", "US-I", "US-II", "Hybrid", "US-I (bimodal)", "mispred"],
        title="IPC at window=32 (oracle prediction unless noted)",
    )
    for workload in workloads:
        us1 = run_one(workload, "us1")
        us2 = run_one(workload, "us2")
        hybrid = run_one(workload, "hybrid")
        real = run_one(workload, "us1", predictor=BimodalPredictor(size=128))
        table.add_row(
            [
                workload.name,
                round(us1.ipc, 2),
                round(us2.ipc, 2),
                round(hybrid.ipc, 2),
                round(real.ipc, 2),
                real.mispredictions,
            ]
        )
    print(table.render())
    print()
    print("Note the column ordering: US-I >= hybrid >= US-II on every row —")
    print("the Ultrascalar II pays for not wrapping around ('stations idle")
    print("waiting for everyone to finish before refilling').")


if __name__ == "__main__":
    main()
