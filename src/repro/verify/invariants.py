"""Engine-internal invariant checking (the opt-in per-cycle observer).

An :class:`InvariantChecker` is a callable passed as the engines'
``cycle_hook``; both :class:`~repro.ultrascalar.ring.RingProcessor` and
:class:`~repro.ultrascalar.us2.BatchProcessor` invoke it once at the end
of every :meth:`step`.  Normal runs pass no hook, so they execute
exactly the pre-verification code.

Checked properties (violations raise :class:`InvariantViolation`):

* **Commit-window FIFO order** — the committed stream's sequence numbers
  are strictly increasing and each commit's static index equals the
  previous commit's ``next_pc``: commitment follows the architectural
  control-flow path in order, never reorders, never skips.
* **CSPP ready-bit monotonicity** — once a station's result is DONE (its
  ready bit asserted into the prefix network), it stays DONE until the
  station is deallocated or squashed; a ready bit never de-asserts while
  the same instruction occupies the station.
* **Ordering-condition consistency** (ring) — the engine's CSPP-derived
  Figure 5 conditions (stores done / memory done / branches resolved for
  all older stations) equal a naive O(n²) recomputation; the segmented
  prefix circuit and the specification walk must agree every cycle.
* **Single-writer-per-column routing** (US-II grid) — the batch's
  register views equal :func:`repro.circuits.grid.route_arguments`, the
  behavioural reference for the grid network: each station's arguments
  come from the *nearest* preceding writer column (of which each station
  contributes at most one), else the incoming register file.
"""

from __future__ import annotations

from repro.circuits.grid import RegisterBinding, route_arguments
from repro.ultrascalar.ring import RingProcessor
from repro.ultrascalar.us2 import BatchProcessor


class InvariantViolation(AssertionError):
    """An engine-internal property failed during execution."""


class InvariantChecker:
    """Per-cycle invariant observer; install as an engine ``cycle_hook``.

    One checker can watch several engines at once (it keys its
    bookkeeping by engine identity), so a differential run can share a
    single instance across all designs.  :attr:`checks` counts the
    individual property evaluations performed, for reporting.
    """

    def __init__(self) -> None:
        self.checks = 0
        #: per engine id: last observed (seq, done) per station position
        self._done_seen: dict[int, dict[int, int]] = {}
        #: per engine id: committed-stream length already validated
        self._commit_cursor: dict[int, int] = {}

    # ------------------------------------------------------------------

    def __call__(self, engine) -> None:
        if isinstance(engine, RingProcessor):
            stations = engine._occupied_in_order()
            self._check_commit_fifo(engine)
            self._check_done_monotonic(engine, stations)
            self._check_ring_ordering(engine, stations)
        elif isinstance(engine, BatchProcessor):
            self._check_commit_fifo(engine)
            self._check_done_monotonic(engine, engine.batch)
            self._check_batch_routing(engine)

    # ------------------------------------------------------------------

    def _fail(self, engine, message: str) -> None:
        raise InvariantViolation(f"{type(engine).__name__} @ cycle {engine.cycle}: {message}")

    def _check_commit_fifo(self, engine) -> None:
        """Committed stream is FIFO and follows the architectural path."""
        self.checks += 1
        start = self._commit_cursor.get(id(engine), 0)
        timings = engine.timings
        committed = engine.committed
        for k in range(max(1, start), len(committed)):
            if timings[k].seq <= timings[k - 1].seq:
                self._fail(
                    engine,
                    f"commit FIFO violated: seq {timings[k].seq} committed "
                    f"after seq {timings[k - 1].seq}",
                )
            if committed[k].static_index != committed[k - 1].next_pc:
                self._fail(
                    engine,
                    f"commit stream left the architectural path: commit {k} "
                    f"is instruction {committed[k].static_index}, expected "
                    f"{committed[k - 1].next_pc}",
                )
        self._commit_cursor[id(engine)] = len(committed)

    def _check_done_monotonic(self, engine, stations) -> None:
        """A DONE (ready) station stays DONE until deallocated/squashed."""
        self.checks += 1
        seen = self._done_seen.setdefault(id(engine), {})
        current: dict[int, int] = {}
        for station in stations:
            if station.done:
                current[station.index] = station.seq
        for position, seq in seen.items():
            still_here = any(s.index == position and s.seq == seq for s in stations)
            if still_here and current.get(position) != seq:
                self._fail(
                    engine,
                    f"ready bit de-asserted: station {position} (seq {seq}) "
                    "was DONE and is no longer",
                )
        self._done_seen[id(engine)] = current

    def _check_ring_ordering(self, engine: RingProcessor, occupied) -> None:
        """Engine's CSPP ordering conditions equal the naive walk."""
        self.checks += 1
        if not occupied:
            return
        got = engine._ordering_conditions(occupied)
        stores, mems, branches = [], [], []
        store_ok = mem_ok = branch_ok = True
        for station in occupied:
            stores.append(store_ok)
            mems.append(mem_ok)
            branches.append(branch_ok)
            inst = station.fetched.instruction
            store_ok = store_ok and (not inst.is_store or station.done)
            mem_ok = mem_ok and (not inst.is_memory or station.done)
            branch_ok = branch_ok and (not inst.is_control or station.done)
        want = (stores, mems, branches)
        if tuple(got) != want:
            for name, g, w in zip(("stores", "mem", "branches"), got, want):
                if g != w:
                    self._fail(
                        engine,
                        f"CSPP {name}-ordering condition diverged from the "
                        f"specification walk: circuit {g}, walk {w}",
                    )

    def _check_batch_routing(self, engine: BatchProcessor) -> None:
        """Batch register views equal the grid network's routed arguments."""
        self.checks += 1
        batch = engine.batch
        if not batch:
            return
        writes: list[RegisterBinding | None] = []
        reads: list[list[int]] = []
        for station in batch:
            reg = station.writes_register
            if reg is None:
                writes.append(None)
            else:
                published = station.done and station.result is not None
                writes.append(
                    RegisterBinding(
                        reg=reg,
                        value=station.result if published else 0,
                        ready=published,
                    )
                )
            reads.append(list(station.fetched.instruction.reads))
        routed = route_arguments(
            engine.L,
            [(value, True) for value in engine.registers],
            writes,
            reads,
        )
        views = engine._register_views()
        for idx, (station, requested) in enumerate(zip(batch, reads)):
            for port, reg in enumerate(requested):
                want = routed.arguments[idx][port]
                got = (views[idx].values[reg], views[idx].ready[reg])
                if got != want:
                    self._fail(
                        engine,
                        f"grid routing diverged at station {idx} r{reg}: "
                        f"view {got}, route_arguments {want}",
                    )


def checked_run(engine, checker: InvariantChecker | None = None):
    """Drive *engine* to completion under an invariant checker.

    Convenience for engines built without a ``cycle_hook``: installs
    *checker* (default: a fresh one) and calls ``engine.run()``.
    """
    active = checker if checker is not None else InvariantChecker()
    engine._cycle_hook = active
    return engine.run()
