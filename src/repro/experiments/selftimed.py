"""Experiment E8 — the self-timed back-of-the-envelope argument.

"A back-of-the envelope calculation is promising however: Half of the
communications paths from one station to its successor are completely
local.  In such a processor, a program could run faster if most of its
instructions depend on their immediate predecessors rather than on
far-previous instructions."

We census, in the H-tree, the tree distance (and routed wire length)
between every station and its ring successor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.htree import successor_tree_distances, successor_wire_lengths
from repro.util.tables import Table


#: sweep points the runner executes and the cache keys (kwargs for
#: :func:`report`)
SWEEP_POINTS: list[dict] = [{"sizes": [16, 64, 256, 1024]}]


@dataclass
class SelfTimedResult:
    """Per-n locality census."""

    #: n -> fraction of successor hops with LCA at level <= 1 (local)
    local_fraction: dict[int, float]
    #: n -> mean routed successor wire length (leaf units)
    mean_wire: dict[int, float]
    #: n -> max routed successor wire length
    max_wire: dict[int, float]

    def at_least_half_local(self) -> bool:
        """The paper's "half ... are completely local" claim."""
        return all(fraction >= 0.5 for fraction in self.local_fraction.values())


def run(sizes: list[int] | None = None) -> SelfTimedResult:
    """Census successor locality for each H-tree size."""
    sizes = sizes or [16, 64, 256, 1024]
    local: dict[int, float] = {}
    mean_wire: dict[int, float] = {}
    max_wire: dict[int, float] = {}
    for n in sizes:
        distances = successor_tree_distances(n)
        local[n] = sum(1 for d in distances if d <= 1) / n
        lengths = successor_wire_lengths(n)
        mean_wire[n] = sum(lengths) / n
        max_wire[n] = max(lengths)
    return SelfTimedResult(local_fraction=local, mean_wire=mean_wire, max_wire=max_wire)


def report(sizes: list[int] | None = None) -> str:
    """The locality table."""
    outcome = run(sizes)
    table = Table(
        ["n", "local successor hops", "mean wire (leaf units)", "max wire"],
        title="E8 — station→successor locality in the H-tree "
        "(paper: at least half the paths are completely local)",
    )
    for n in outcome.local_fraction:
        table.add_row(
            [
                n,
                f"{outcome.local_fraction[n] * 100:.0f}%",
                round(outcome.mean_wire[n], 2),
                round(outcome.max_wire[n], 1),
            ]
        )
    return table.render()


if __name__ == "__main__":  # pragma: no cover
    print(report())
