"""Unit tests for the Ultrascalar II routing network (Figures 7 and 8)."""

import pytest

from repro.circuits.comparator import (
    build_constant_match,
    build_equality_comparator,
    register_number_bits,
)
from repro.circuits.grid import (
    GridNetwork,
    RegisterBinding,
    TreeGridNetwork,
    route_arguments,
)
from repro.circuits.netlist import Netlist, bus


class TestRegisterNumberBits:
    @pytest.mark.parametrize("L,bits", [(1, 1), (2, 1), (3, 2), (4, 2), (32, 5), (33, 6), (64, 6)])
    def test_widths(self, L, bits):
        assert register_number_bits(L) == bits

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            register_number_bits(0)


class TestComparators:
    def test_equality_comparator(self):
        nl = Netlist()
        a = bus(nl, "a", 5)
        b = bus(nl, "b", 5)
        out = build_equality_comparator(nl, a, b)
        for x, y in [(0, 0), (17, 17), (17, 16), (31, 30), (5, 21)]:
            assignment = {}
            for i in range(5):
                assignment[a[i]] = bool((x >> i) & 1)
                assignment[b[i]] = bool((y >> i) & 1)
            assert nl.simulate(assignment).value_of(out) == (x == y)

    def test_comparator_depth_is_loglog(self):
        # 5-bit comparator: XNOR (1) + AND tree (ceil(log2 5) = 3) = 4
        nl = Netlist()
        out = build_equality_comparator(nl, bus(nl, "a", 5), bus(nl, "b", 5))
        assert nl.topological_depth() == 4

    def test_constant_match(self):
        nl = Netlist()
        a = bus(nl, "a", 4)
        out = build_constant_match(nl, a, 9)
        for x in range(16):
            assignment = {a[i]: bool((x >> i) & 1) for i in range(4)}
            assert nl.simulate(assignment).value_of(out) == (x == 9)

    def test_mismatched_widths_rejected(self):
        nl = Netlist()
        with pytest.raises(ValueError):
            build_equality_comparator(nl, bus(nl, "a", 3), bus(nl, "b", 4))

    def test_empty_bus_rejected(self):
        nl = Netlist()
        with pytest.raises(ValueError):
            build_equality_comparator(nl, [], [])
        with pytest.raises(ValueError):
            build_constant_match(nl, [], 0)


class TestRouteArguments:
    def test_initial_file_serves_unwritten_registers(self):
        routed = route_arguments(
            4, [(10, True), (20, True), (30, True), (40, True)], [None], [[2]]
        )
        assert routed.arguments == [[(30, True)]]
        assert routed.outgoing == [(10, True), (20, True), (30, True), (40, True)]

    def test_nearest_preceding_writer_wins(self):
        # paper Figure 7 narrative: station 3 reads R2; station 0's unfinished
        # write is ignored in favour of station 2's finished one.
        writes = [
            RegisterBinding(2, 0, False),   # station 0 writes R2, not ready
            RegisterBinding(1, 5, True),    # station 1 writes R1
            RegisterBinding(2, 9, True),    # station 2 writes R2, ready (value 9)
            None,
        ]
        reads = [[0, 0], [0, 0], [0, 0], [2, 1]]
        routed = route_arguments(4, [(0, True)] * 4, writes, reads)
        assert routed.arguments[3][0] == (9, True)   # nearest R2 writer is station 2
        assert routed.arguments[3][1] == (5, True)   # R1 from station 1

    def test_station_does_not_see_own_write(self):
        writes = [RegisterBinding(0, 99, True)]
        routed = route_arguments(2, [(1, True), (2, True)], writes, [[0]])
        assert routed.arguments[0][0] == (1, True)

    def test_outgoing_reflects_last_writer(self):
        writes = [RegisterBinding(0, 5, True), RegisterBinding(0, 7, False)]
        routed = route_arguments(2, [(1, True), (2, True)], writes, [[], []])
        assert routed.outgoing[0] == (7, False)
        assert routed.outgoing[1] == (2, True)

    def test_validates_shapes(self):
        with pytest.raises(ValueError):
            route_arguments(2, [(0, True)], [None], [[0]])
        with pytest.raises(ValueError):
            route_arguments(2, [(0, True), (0, True)], [None], [[0], [0]])
        with pytest.raises(ValueError):
            route_arguments(2, [(0, True), (0, True)], [None], [[5]])
        with pytest.raises(ValueError):
            route_arguments(
                2, [(0, True), (0, True)], [RegisterBinding(9, 0, True)], [[0]]
            )


@pytest.mark.parametrize("network_cls", [GridNetwork, TreeGridNetwork])
class TestGridNetlists:
    def test_matches_behavioural_reference(self, network_cls):
        import random

        rng = random.Random(42)
        n, L, w = 4, 4, 3
        network = network_cls(n, L, value_bits=w)
        for _ in range(4):
            initial = [(rng.randrange(8), bool(rng.getrandbits(1))) for _ in range(L)]
            writes = [
                None
                if rng.random() < 0.3
                else RegisterBinding(rng.randrange(L), rng.randrange(8), bool(rng.getrandbits(1)))
                for _ in range(n)
            ]
            reads = [[rng.randrange(L), rng.randrange(L)] for _ in range(n)]
            assert network.evaluate(initial, writes, reads) == route_arguments(
                L, initial, writes, reads
            )

    def test_figure7_configuration(self, network_cls):
        # Figure 7: four stations, four logical registers.
        network = network_cls(4, 4, value_bits=4)
        initial = [(0, True), (1, True), (2, True), (3, True)]
        writes = [
            RegisterBinding(2, 0, False),
            RegisterBinding(1, 4, True),
            RegisterBinding(2, 9, True),
            RegisterBinding(3, 0, False),
        ]
        reads = [[0, 1], [0, 2], [1, 3], [2, 1]]
        routed = network.evaluate(initial, writes, reads)
        # station 3's R2 argument comes from station 2 (value 9, ready)
        assert routed.arguments[3][0] == (9, True)
        # station 1's R2 argument comes from station 0 (not ready)
        assert routed.arguments[1][1] == (0, False)
        # outgoing R2 is station 2's value; R3 is station 3's unfinished write
        assert routed.outgoing[2] == (9, True)
        assert routed.outgoing[3] == (0, False)

    def test_input_shape_validation(self, network_cls):
        network = network_cls(2, 2)
        with pytest.raises(ValueError):
            network.evaluate([(0, True)], [None, None], [[0, 0], [0, 0]])
        with pytest.raises(ValueError):
            network.evaluate([(0, True), (0, True)], [None, None], [[0], [0]])

    def test_rejects_zero_stations(self, network_cls):
        with pytest.raises(ValueError):
            network_cls(0, 4)


class TestGridScaling:
    def test_linear_grid_settle_grows_linearly(self):
        times = []
        for n in (4, 8, 16):
            grid = GridNetwork(n, n)
            initial = [(1, True)] * n
            times.append(grid.settle_time(initial, [None] * n, [[0, 0]] * n))
        # roughly 2(n+L) growth: doubling n roughly doubles the settle time
        assert times[1] > times[0] * 1.6
        assert times[2] > times[1] * 1.6

    def test_tree_grid_settle_grows_slowly(self):
        times = []
        for n in (4, 8, 16):
            grid = TreeGridNetwork(n, n)
            initial = [(1, True)] * n
            times.append(grid.settle_time(initial, [None] * n, [[0, 0]] * n))
        assert times[2] - times[0] <= 6  # logarithmic growth
