"""Functional-unit latency configuration.

The paper's Figure 3 timing diagram "assume[s] that division takes 10
clock cycles, multiplication 3, and addition 1"; those are the defaults
here.  Load latency is the *execution* latency on a cache hit — cache
misses add time through :mod:`repro.memory`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import OpClass, Opcode


@dataclass(frozen=True)
class LatencyModel:
    """Cycles each functional class occupies before its result is ready."""

    alu: int = 1
    mul: int = 3
    div: int = 10
    load: int = 1
    store: int = 1
    branch: int = 1
    jump: int = 1
    system: int = 1

    def __post_init__(self) -> None:
        for name in ("alu", "mul", "div", "load", "store", "branch", "jump", "system"):
            if getattr(self, name) < 1:
                raise ValueError(f"latency {name} must be >= 1")

    def latency_of(self, op: Opcode) -> int:
        """The execution latency, in cycles, of *op*."""
        return {
            OpClass.ALU: self.alu,
            OpClass.MUL: self.mul,
            OpClass.DIV: self.div,
            OpClass.LOAD: self.load,
            OpClass.STORE: self.store,
            OpClass.BRANCH: self.branch,
            OpClass.JUMP: self.jump,
            OpClass.SYSTEM: self.system,
        }[op.op_class]


#: Latencies used by the paper's Figure 3 timing diagram.
PAPER_LATENCIES = LatencyModel(alu=1, mul=3, div=10)

#: All-unit latencies, useful for isolating scheduling effects in tests.
UNIT_LATENCIES = LatencyModel(alu=1, mul=1, div=1, load=1, store=1, branch=1, jump=1, system=1)
