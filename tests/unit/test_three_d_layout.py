"""Unit tests for the 3-D layout models (Section 7)."""

import pytest

from repro.analysis.fitting import fit_exponent
from repro.vlsi.three_d_layout import (
    ThreeDHybridLayout,
    ThreeDUltrascalar1Layout,
    optimal_cluster_size_3d,
)
from repro.vlsi.htree_layout import Ultrascalar1Layout


class TestThreeDUltrascalar1:
    def test_wire_grows_as_cube_root(self):
        sizes = [8**k for k in range(2, 7)]
        wires = [ThreeDUltrascalar1Layout(n, 32).critical_wire for n in sizes]
        assert fit_exponent(sizes, wires) == pytest.approx(1 / 3, abs=0.05)

    def test_volume_grows_linearly_in_n(self):
        sizes = [8**k for k in range(2, 7)]
        volumes = [ThreeDUltrascalar1Layout(n, 32).volume for n in sizes]
        assert fit_exponent(sizes, volumes) == pytest.approx(1.0, abs=0.08)

    def test_wire_grows_as_sqrt_L(self):
        Ls = [8, 32, 128, 512]
        wires = [ThreeDUltrascalar1Layout(4096, L).critical_wire for L in Ls]
        assert fit_exponent(Ls, wires) == pytest.approx(0.5, abs=0.05)

    def test_volume_grows_as_L_to_three_halves(self):
        Ls = [8, 32, 128, 512]
        volumes = [ThreeDUltrascalar1Layout(4096, L).volume for L in Ls]
        assert fit_exponent(Ls, volumes) == pytest.approx(1.5, abs=0.12)

    def test_3d_wires_shorter_than_2d(self):
        """The whole point of three dimensions: shorter wires at scale."""
        for n in (4096, 65536):
            flat = Ultrascalar1Layout(n, 32).critical_wire
            cubed = ThreeDUltrascalar1Layout(n, 32).critical_wire
            assert cubed < flat

    def test_memory_bandwidth_inflates_block(self):
        lean = ThreeDUltrascalar1Layout(4096, 32)
        fat = ThreeDUltrascalar1Layout(4096, 32, bandwidth=lambda n: float(n))
        assert fat.side_length() > lean.side_length()

    def test_validation(self):
        with pytest.raises(ValueError):
            ThreeDUltrascalar1Layout(0, 32)


class TestThreeDHybrid:
    def test_sweep_is_u_shaped(self):
        _, sides = optimal_cluster_size_3d(2**15, 64)
        best = min(sides, key=sides.get)
        assert sides[best] < sides[1]
        assert sides[best] < sides[max(sides)]

    def test_paper_optimum_within_the_bowl(self):
        """Our model's U(C) bowl is shallow; the paper's Θ(L^(3/4))
        optimum lies within 15% of the model's minimum."""
        for L in (64, 256):
            _, sides = optimal_cluster_size_3d(2**15, L)
            minimum = min(sides.values())
            paper_c = min(sides, key=lambda c: abs(c - L**0.75))
            assert sides[paper_c] <= 1.15 * minimum

    def test_3d_optimum_not_larger_than_2d(self):
        from repro.vlsi.hybrid_layout import optimal_cluster_size

        for L in (16, 64):
            best3, _ = optimal_cluster_size_3d(2**15, L)
            best2, _ = optimal_cluster_size(2**14, L)
            assert best3 <= best2 * 2  # paper: optimum shrinks in 3-D

    def test_volume_scales_gently_with_L(self):
        """At optimal C the hybrid volume grows sublinearly beyond ~L
        (paper: Θ(n L^(3/4)))."""
        volumes = []
        for L in (16, 64, 256):
            best, sides = optimal_cluster_size_3d(2**15, L)
            volumes.append(sides[best] ** 3)
        exponent = fit_exponent([16, 64, 256], volumes)
        assert exponent < 1.0  # sublinear in L

    def test_validation(self):
        with pytest.raises(ValueError):
            ThreeDHybridLayout(100, 32)
        with pytest.raises(ValueError):
            ThreeDHybridLayout(0, 1)
        with pytest.raises(ValueError):
            optimal_cluster_size_3d(0, 32)
