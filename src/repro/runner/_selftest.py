"""Tiny importable jobs for exercising the runner itself.

The pool executes jobs by (module path, function name), so tests need
target functions that resolve in worker processes regardless of how the
test session was launched.  These live inside the package to guarantee
that; they are not part of the public API.
"""

from __future__ import annotations

import os
import time
from pathlib import Path


def ok(text: str = "ok", delay: float = 0.0) -> str:
    """Succeed after an optional delay."""
    if delay:
        time.sleep(delay)
    return text


def boom(message: str = "boom") -> str:
    """Always fail."""
    raise RuntimeError(message)


def sleepy(seconds: float = 5.0) -> str:
    """Sleep long enough to trip a short watchdog timeout."""
    time.sleep(seconds)
    return f"slept {seconds}"


def pid_stamp(tag: str = "") -> str:
    """Report the executing process id (distinguishes pool workers)."""
    return f"{tag}:{os.getpid()}"


def flaky(marker_dir: str) -> str:
    """Fail on the first call, succeed once a marker file exists.

    The marker lives on disk so the retry may land in a different
    worker process and still see the first attempt.
    """
    marker = Path(marker_dir) / "flaky.attempted"
    if marker.exists():
        return "recovered"
    marker.parent.mkdir(parents=True, exist_ok=True)
    marker.write_text("1", encoding="utf-8")
    raise RuntimeError("first attempt always fails")
