"""Property fuzzing: seeded random programs, shrinking, reproducers.

:func:`generate_case` builds a random-but-deterministic program for a
seed: ALU chains engineered to produce RAW/WAR/WAW hazards over a small
register pool, loads and stores into a deliberately aliasing address
window, and forward-only branches and jumps (forward-only control flow
guarantees termination, so every generated program is a valid oracle
input).  Registers r28–r31 are reserved memory bases — never written —
so every effective address stays word-aligned by construction.

:func:`run_case` feeds a case through :func:`repro.verify.diff.
run_differential` at several window sizes (always including the
wrap-around-free size, where the ILP-equivalence invariant applies).
When a case fails, :func:`shrink_case` reduces it ddmin-style — drop
contiguous instruction chunks, remap branch targets, keep the removal
iff the failure persists — and :func:`write_reproducer` records the
minimal program as a ``repro-failure/1`` JSON file that
:func:`load_reproducer` (and ``python -m repro verify --repro``) can
replay.

:func:`shard_report` is the pool entry point: one seed's whole
generate→diff→shrink→record cycle, returning a JSON summary string so
shards fan out across worker processes via :mod:`repro.runner.pool`.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path

from repro.isa.assembler import assemble
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.util.rng import derive_seed
from repro.verify.diff import DESIGNS, DiffReport, run_differential

#: schema tag for failing-case reproducer files
FAILURE_SCHEMA = "repro-failure/1"

#: registers the generator never writes; they hold memory base addresses
#: so every load/store address is word-aligned by construction
BASE_REGISTERS = (28, 29, 30, 31)

#: word-aligned byte offsets the generator draws from — deliberately few,
#: so loads and stores alias each other often
ALIAS_OFFSETS = tuple(range(0, 64, 4))

#: base addresses for the reserved registers; regions overlap so
#: different bases can still alias
BASE_ADDRESSES = (4096, 4128, 4160, 4112)

_ALU3 = (
    Opcode.ADD,
    Opcode.SUB,
    Opcode.AND,
    Opcode.OR,
    Opcode.XOR,
    Opcode.SLL,
    Opcode.SRL,
    Opcode.SRA,
    Opcode.SLT,
    Opcode.SLTU,
    Opcode.MUL,
    Opcode.DIV,
    Opcode.REM,
)
_ALU_IMM = (
    Opcode.ADDI,
    Opcode.ANDI,
    Opcode.ORI,
    Opcode.XORI,
    Opcode.SLTI,
    Opcode.MULI,
)
_SHIFT_IMM = (Opcode.SLLI, Opcode.SRLI)
_ALU2 = (Opcode.MOV, Opcode.NOT, Opcode.NEG)
_BRANCHES = (
    Opcode.BEQ,
    Opcode.BNE,
    Opcode.BLT,
    Opcode.BGE,
    Opcode.BLTU,
    Opcode.BGEU,
)

#: (kind, weight) mix for the generated instruction stream
_KIND_WEIGHTS = (
    ("alu3", 30),
    ("alu_imm", 16),
    ("shift_imm", 6),
    ("alu2", 8),
    ("li", 6),
    ("load", 12),
    ("store", 12),
    ("branch", 8),
    ("jump", 2),
)


@dataclass(frozen=True)
class FuzzCase:
    """One generated differential-test input."""

    seed: int
    program: Program
    initial_registers: list[int]
    memory_image: dict[int, int]

    @property
    def size(self) -> int:
        """Static instruction count (including the final HALT)."""
        return len(self.program)


def generate_case(seed: int, size: int) -> FuzzCase:
    """Deterministically generate one :class:`FuzzCase`.

    *size* is the number of body instructions; a HALT is appended, and
    control transfers only ever jump forward (possibly to the HALT), so
    the program always terminates.
    """
    rng = random.Random(derive_seed("verify.fuzz", seed, size))
    pool = 12  # writable registers r0..r11: small, to force hazards
    kinds, weights = zip(*_KIND_WEIGHTS)
    body: list[Instruction] = []
    for index in range(size):
        kind = rng.choices(kinds, weights=weights)[0]
        rd = rng.randrange(pool)
        rs1 = rng.randrange(pool)
        rs2 = rng.randrange(pool)
        base = rng.choice(BASE_REGISTERS)
        offset = rng.choice(ALIAS_OFFSETS)
        if kind == "alu3":
            body.append(Instruction(rng.choice(_ALU3), rd=rd, rs1=rs1, rs2=rs2))
        elif kind == "alu_imm":
            imm = rng.randrange(-64, 65)
            body.append(Instruction(rng.choice(_ALU_IMM), rd=rd, rs1=rs1, imm=imm))
        elif kind == "shift_imm":
            body.append(Instruction(rng.choice(_SHIFT_IMM), rd=rd, rs1=rs1, imm=rng.randrange(32)))
        elif kind == "alu2":
            body.append(Instruction(rng.choice(_ALU2), rd=rd, rs1=rs1))
        elif kind == "li":
            body.append(Instruction(Opcode.LI, rd=rd, imm=rng.randrange(-1024, 1025)))
        elif kind == "load":
            body.append(Instruction(Opcode.LW, rd=rd, rs1=base, imm=offset))
        elif kind == "store":
            body.append(Instruction(Opcode.SW, rs1=base, rs2=rs2, imm=offset))
        elif kind == "branch":
            target = rng.randrange(index + 1, size + 1)  # forward only
            body.append(Instruction(rng.choice(_BRANCHES), rs1=rs1, rs2=rs2, target=target))
        else:  # jump
            target = rng.randrange(index + 1, size + 1)
            body.append(Instruction(Opcode.J, target=target))
    body.append(Instruction(Opcode.HALT))
    program = Program.from_instructions(body)

    registers = [0] * program.spec.num_registers
    for reg in range(pool):
        registers[reg] = rng.randrange(-128, 129) & 0xFFFFFFFF
    for reg, address in zip(BASE_REGISTERS, BASE_ADDRESSES):
        registers[reg] = address
    image = {}
    for address in range(min(BASE_ADDRESSES), max(BASE_ADDRESSES) + max(ALIAS_OFFSETS) + 4, 4):
        image[address] = rng.getrandbits(32)
    return FuzzCase(seed=seed, program=program, initial_registers=registers, memory_image=image)


def corpus_cases(seed: int) -> list[FuzzCase]:
    """Structured cases drawn from :mod:`repro.workloads.generators`.

    The random grammar above is dense in hazards but rarely produces
    the idiomatic shapes the paper's experiments use (loops, reductions,
    pointer chases), so each shard also differentially tests a few
    generator workloads at shard-seeded parameters.
    """
    from repro.workloads import generators

    rng = random.Random(derive_seed("verify.fuzz.corpus", seed))
    density = rng.choice((0.25, 0.5, 0.75))
    workloads = [
        generators.random_ilp(rng.randrange(8, 33), density, seed=derive_seed(seed, "ilp")),
        generators.daxpy_loop(rng.randrange(2, 6)),
        generators.jump_chain(rng.randrange(2, 6)),
        generators.store_load_pairs(rng.randrange(2, 9)),
        generators.pointer_chase(rng.randrange(2, 6)),
    ]
    cases = []
    for index, workload in enumerate(workloads):
        case = FuzzCase(
            seed=derive_seed(seed, "corpus", index),
            program=workload.program,
            initial_registers=workload.registers_for(),
            memory_image=dict(workload.memory_image),
        )
        cases.append(case)
    return cases


# ----------------------------------------------------------------------
# running and shrinking


@dataclass
class CaseFailure:
    """One failing (case, window) combination."""

    case: FuzzCase
    window: int | None
    report: DiffReport | None
    #: set instead of *report* when a backend raised
    error: str | None = None

    def describe(self) -> list[dict[str, str]]:
        """The divergences as plain dicts (reproducer/report payload)."""
        if self.error is not None:
            return [{"design": "?", "field": "exception", "detail": self.error}]
        return [
            {"design": d.design, "field": d.field, "detail": d.detail}
            for d in self.report.divergences
        ]


def _windows_for(case: FuzzCase, sizes: tuple[int, ...]) -> list[int | None]:
    """The window sizes to test: the requested ones plus wrap-free."""
    windows: list[int | None] = [None]  # wrap-free (window = dynamic length)
    windows.extend(w for w in sizes if w >= 1)
    return windows


def run_case(
    case: FuzzCase,
    *,
    sizes: tuple[int, ...] = (4, 16),
    designs: tuple[str, ...] = DESIGNS,
    check_invariants: bool = True,
) -> CaseFailure | None:
    """Differentially test *case*; return its first failure, if any."""
    for window in _windows_for(case, sizes):
        try:
            report = run_differential(
                case.program,
                initial_registers=list(case.initial_registers),
                memory_image=dict(case.memory_image),
                window=window,
                designs=designs,
                check_invariants=check_invariants,
            )
        except Exception as exc:  # engine crash is a finding, not an abort
            return CaseFailure(case=case, window=window, report=None, error=repr(exc))
        if not report.ok:
            return CaseFailure(case=case, window=window, report=report)
    return None


def _remove_chunk(program: Program, start: int, stop: int) -> Program | None:
    """Drop instructions ``[start, stop)``, remapping branch targets.

    Targets inside the removed chunk clamp to *start*; targets beyond it
    shift down.  Returns ``None`` when the result would be degenerate
    (no instructions, or the mandatory trailing HALT removed).
    """
    kept: list[Instruction] = []
    removed = stop - start
    for index, inst in enumerate(program.instructions):
        if start <= index < stop:
            continue
        if inst.target is not None:
            target = inst.target
            if target >= stop:
                target -= removed
            elif target >= start:
                target = start
            inst = Instruction(
                inst.op, rd=inst.rd, rs1=inst.rs1, rs2=inst.rs2, imm=inst.imm, target=target
            )
        kept.append(inst)
    if not kept or not kept[-1].is_halt:
        return None
    try:
        return Program.from_instructions(kept, spec=program.spec)
    except ValueError:
        return None


def shrink_case(
    failure: CaseFailure,
    *,
    sizes: tuple[int, ...] = (4, 16),
    designs: tuple[str, ...] = DESIGNS,
    check_invariants: bool = True,
    max_attempts: int = 400,
) -> FuzzCase:
    """ddmin-style reduction: the smallest case that still fails.

    Greedily removes contiguous instruction chunks (halving chunk sizes
    down to single instructions, restarting after any success) while the
    failure — any failure, not necessarily the original divergence —
    persists under the same test parameters.
    """
    case = failure.case

    def still_fails(candidate: FuzzCase) -> bool:
        return (
            run_case(
                candidate,
                sizes=sizes,
                designs=designs,
                check_invariants=check_invariants,
            )
            is not None
        )

    attempts = 0
    chunk = max(1, (len(case.program) - 1) // 2)
    while chunk >= 1 and attempts < max_attempts:
        shrunk_this_pass = False
        start = 0
        while start < len(case.program) - 1 and attempts < max_attempts:
            stop = min(start + chunk, len(case.program) - 1)
            program = _remove_chunk(case.program, start, stop)
            if program is not None:
                candidate = FuzzCase(
                    seed=case.seed,
                    program=program,
                    initial_registers=case.initial_registers,
                    memory_image=case.memory_image,
                )
                attempts += 1
                if still_fails(candidate):
                    case = candidate
                    shrunk_this_pass = True
                    continue  # retry same start at the new, shorter program
            start += chunk
        if not shrunk_this_pass:
            chunk //= 2
    return case


# ----------------------------------------------------------------------
# reproducers


def reproducer_dict(failure: CaseFailure, shrunk: FuzzCase | None = None) -> dict:
    """The ``repro-failure/1`` payload for a failing case."""
    case = failure.case
    payload = {
        "schema": FAILURE_SCHEMA,
        "seed": case.seed,
        "window": failure.window,
        "divergences": failure.describe(),
        "program": case.program.disassemble(),
        "initial_registers": list(case.initial_registers),
        "memory_image": {str(k): v for k, v in sorted(case.memory_image.items())},
    }
    if shrunk is not None and len(shrunk.program) < len(case.program):
        payload["shrunk_program"] = shrunk.program.disassemble()
        payload["shrunk_size"] = len(shrunk.program)
    return payload


def write_reproducer(
    directory: str | Path, failure: CaseFailure, shrunk: FuzzCase | None = None
) -> Path:
    """Write a reproducer JSON under *directory*; returns its path."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    path = root / f"seed{failure.case.seed:08d}.json"
    path.write_text(
        json.dumps(reproducer_dict(failure, shrunk), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def load_reproducer(path: str | Path) -> FuzzCase:
    """Rebuild a :class:`FuzzCase` from a reproducer file.

    Prefers the shrunk program when the file records one.
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("schema") != FAILURE_SCHEMA:
        raise ValueError(f"{path}: schema {payload.get('schema')!r}, expected {FAILURE_SCHEMA!r}")
    source = payload.get("shrunk_program") or payload["program"]
    return FuzzCase(
        seed=int(payload["seed"]),
        program=assemble(source),
        initial_registers=[int(v) for v in payload["initial_registers"]],
        memory_image={int(k): int(v) for k, v in payload["memory_image"].items()},
    )


# ----------------------------------------------------------------------
# pool entry point


@dataclass
class ShardOutcome:
    """Parsed result of one fuzz shard (see :func:`shard_report`)."""

    seed: int
    cases: int
    instructions: int
    failures: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the shard found no divergences."""
        return not self.failures


def shard_report(
    *,
    seed: int,
    budget: int = 200,
    sizes: tuple[int, ...] | list[int] = (4, 16),
    designs: tuple[str, ...] | list[str] = DESIGNS,
    minimize: bool = True,
    check_invariants: bool = True,
    failures_dir: str | None = None,
    min_size: int = 6,
    max_size: int = 48,
) -> str:
    """One fuzz shard: generate and test cases until *budget* is spent.

    Each shard first replays the :func:`corpus_cases` workloads, then
    draws random-grammar cases sized from ``[min_size, max_size]`` until
    *budget* (counted in static instructions) is spent.  Returns a JSON
    summary string (the :mod:`repro.runner.pool` contract).  Failing
    cases are shrunk (when *minimize*) and written to *failures_dir*.
    """
    sizes = tuple(int(s) for s in sizes)
    designs = tuple(designs)
    rng = random.Random(derive_seed("verify.fuzz.shard", seed))
    spent = 0
    case_index = 0
    failures: list[dict] = []
    pending = corpus_cases(seed)  # structured workloads first, then the random grammar
    while pending or spent < budget:
        if pending:
            case = pending.pop(0)
            spent += case.size
        else:
            size = min(rng.randrange(min_size, max_size + 1), budget - spent)
            size = max(size, 1)
            case = generate_case(derive_seed(seed, case_index), size)
            spent += size
        case_index += 1
        failure = run_case(case, sizes=sizes, designs=designs, check_invariants=check_invariants)
        if failure is None:
            continue
        shrunk = (
            shrink_case(
                failure,
                sizes=sizes,
                designs=designs,
                check_invariants=check_invariants,
            )
            if minimize
            else None
        )
        entry = reproducer_dict(failure, shrunk)
        if failures_dir is not None:
            entry["reproducer"] = str(write_reproducer(failures_dir, failure, shrunk))
        failures.append(entry)
    return json.dumps(
        {
            "schema": "repro-fuzz-shard/1",
            "seed": seed,
            "cases": case_index,
            "instructions": spent,
            "failures": failures,
        },
        sort_keys=True,
    )


def parse_shard_report(text: str) -> ShardOutcome:
    """Decode a :func:`shard_report` JSON string."""
    payload = json.loads(text)
    return ShardOutcome(
        seed=int(payload["seed"]),
        cases=int(payload["cases"]),
        instructions=int(payload["instructions"]),
        failures=list(payload["failures"]),
    )
