"""The Ultrascalar processors: the paper's primary contribution.

Three cycle-accurate behavioural models share one scheduling policy —
the policy the paper proves all three microarchitectures implement:

* :class:`repro.ultrascalar.ring.RingProcessor` — the Ultrascalar I:
  a wrap-around ring of execution stations connected by per-register
  CSPP circuits, with per-station refill.  With ``cluster_size > 1`` it
  becomes the **hybrid**: clusters of stations refill as a unit, exactly
  as the paper's clusters behave like "super execution stations".
* :class:`repro.ultrascalar.us2.BatchProcessor` — the Ultrascalar II:
  a non-wrap-around grid datapath; a batch of ``n`` instructions issues
  out of order, and the stations refill only when the whole batch has
  finished ("stations idle waiting for everyone to finish").
* :mod:`repro.ultrascalar.vector_engine` — a NumPy-vectorized
  implementation of the ring datapath for large-``n`` studies,
  bit-equivalent to :class:`RingProcessor` on register workloads.

Factories in :mod:`repro.ultrascalar.processor` build the three
configurations the paper compares.
"""

from repro.ultrascalar.memsys import CachedMemory, IdealMemory, MemorySystem
from repro.ultrascalar.processor import (
    ProcessorConfig,
    ProcessorResult,
    TimingRecord,
    make_hybrid,
    make_ultrascalar1,
    make_ultrascalar2,
)
from repro.ultrascalar.ring import RingProcessor
from repro.ultrascalar.scheduler import SchedulerCircuit, prioritized_grants
from repro.ultrascalar.station import Station, StationState
from repro.ultrascalar.trace_view import render_pipeline, stall_breakdown
from repro.ultrascalar.us2 import BatchProcessor

__all__ = [
    "CachedMemory",
    "IdealMemory",
    "MemorySystem",
    "ProcessorConfig",
    "ProcessorResult",
    "TimingRecord",
    "make_hybrid",
    "make_ultrascalar1",
    "make_ultrascalar2",
    "RingProcessor",
    "SchedulerCircuit",
    "prioritized_grants",
    "Station",
    "StationState",
    "render_pipeline",
    "stall_breakdown",
    "BatchProcessor",
]
