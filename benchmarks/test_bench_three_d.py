"""E7 — the three-dimensional packaging bounds (Section 7)."""

from repro.analysis.three_d import lookup
from repro.experiments import three_d


def test_bench_three_d_table(once):
    outcome = once(three_d.run)
    print()
    print(three_d.report())
    assert outcome.improvement_grows_with_L()


def test_bench_3d_cluster_smaller_than_2d(once):
    """Optimal C drops from Θ(L) to Θ(L^(3/4)) in three dimensions."""
    outcome = once(three_d.run)
    for L, c3d in outcome.optimal_cluster_3d.items():
        if L > 1:
            assert c3d < L


def test_bench_3d_volume_beats_2d_area_squared_intuition(once):
    """US-I: 3-D volume Θ(n L^(3/2)) vs 2-D area Θ(n L²) — 3-D wins by
    Θ(sqrt(L)); US-II drops its 2-D log factor entirely."""

    def check(n=4096, L=64):
        vol = lookup("ultrascalar1", "volume").evaluate(n, L, 0)
        area_2d = n * L**2
        wire_3d = lookup("ultrascalar1", "wire_delay").evaluate(n, L, 0)
        wire_2d = n**0.5 * L
        return area_2d / vol, wire_2d / wire_3d

    footprint_gain, wire_gain = once(check)
    assert footprint_gain > 1.0
    assert wire_gain > 1.0
