"""Unit tests for the experiment drivers (structure and invariants;
the quantitative assertions live in benchmarks/)."""


from repro.experiments import (
    cluster_sweep,
    crossover,
    fig3_timing,
    fig11_table,
    fig12_layout,
    gate_depth,
    ipc_equivalence,
    memory_bw,
    selftimed,
    three_d,
)


class TestFig3:
    def test_run_matches_everything(self):
        outcome = fig3_timing.run()
        assert outcome.matches_paper
        assert outcome.matches_dataflow
        assert len(outcome.ultrascalar_spans) == 8

    def test_report_contains_table_and_diagram(self):
        text = fig3_timing.report()
        assert "div r3, r1, r2" in text
        assert "#" in text  # diagram bars
        assert "matches paper: True" in text

    def test_paper_spans_constant(self):
        assert fig3_timing.PAPER_FIGURE3_SPANS[0] == (0, 10)
        assert len(fig3_timing.PAPER_FIGURE3_SPANS) == 8


class TestFig11:
    def test_validation_exponents(self):
        v = fig11_table.validate(sizes=[4**k for k in range(3, 8)])
        assert 0.4 < v.us1_exponent < 0.6
        assert 0.85 < v.us2_exponent < 1.1
        assert 0.4 < v.hybrid_exponent < 0.65

    def test_report_renders_all_regimes(self):
        text = fig11_table.report()
        assert text.count("Figure 11") >= 3

    def test_example_values_table(self):
        table = fig11_table.example_values(n=64, L=8)
        assert len(table.rows) == 12  # 3 regimes x 4 processors


class TestFig12:
    def test_ratio_matches(self):
        outcome = fig12_layout.run()
        assert outcome.ratio_matches_paper

    def test_report_shows_both_layouts(self):
        text = fig12_layout.report()
        assert "US-I 64-wide" in text
        assert "Hybrid 128-wide" in text


class TestCrossover:
    def test_structure(self):
        outcome = crossover.run(L_values=[8, 16], sizes=[16, 256, 4096], n=16384)
        assert set(outcome.crossovers) == {8, 16}
        assert outcome.crossover_tracks_L_squared()

    def test_report(self):
        assert "crossover" in crossover.report().lower()


class TestClusterSweep:
    def test_structure(self):
        outcome = cluster_sweep.run(n=1024, L_values=[8, 32])
        assert outcome.optimum_tracks_L()
        assert set(outcome.best) == {8, 32}

    def test_report_marks_minimum(self):
        assert "*" in cluster_sweep.report(n=1024)


class TestMemoryBw:
    def test_exponents(self):
        outcome = memory_bw.run(exponents=[0.0, 1.0])
        assert outcome.exponents_match_paper()
        assert outcome.wire_tracks_side()

    def test_report(self):
        assert "case1" in memory_bw.report()


class TestThreeD:
    def test_improvement_grows(self):
        assert three_d.run().improvement_grows_with_L()

    def test_report(self):
        assert "Θ(n L^(3/2))" in three_d.report()


class TestSelfTimed:
    def test_locality(self):
        outcome = selftimed.run(sizes=[16, 64])
        assert outcome.at_least_half_local()

    def test_report(self):
        assert "%" in selftimed.report()


class TestGateDepth:
    def test_small_sweep(self):
        outcome = gate_depth.run(sizes=[4, 8, 16])
        assert outcome.ring_times == [4, 8, 16]
        assert outcome.cspp_exponent < 0.7

    def test_report(self):
        assert "fitted exponents" in gate_depth.report(sizes=[4, 8])


class TestIpcEquivalence:
    def test_full_run(self):
        outcome = ipc_equivalence.run()
        assert outcome.us1_always_matches()
        assert outcome.us2_never_faster()

    def test_report(self):
        text = ipc_equivalence.report()
        assert "Dataflow" in text
        assert "Conventional" in text
