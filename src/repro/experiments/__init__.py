"""Experiment drivers: one module per paper table/figure (see DESIGN.md §4).

Each module exposes a ``run(...)`` function returning structured results
and a ``report(...)`` / ``main()`` that renders the paper-shaped table.
The benchmark harness under ``benchmarks/`` wraps these with
pytest-benchmark and asserts the paper's qualitative claims (who wins,
by what factor, where the crossovers fall).
"""

from repro.experiments import (
    cluster_sweep,
    crossover,
    dominance_map,
    fig3_timing,
    fig11_table,
    fig12_layout,
    gate_depth,
    ilp_limits,
    ipc_equivalence,
    performance_projection,
    memory_bw,
    one_cm_chip,
    selftimed,
    three_d,
    window_vs_issue,
)

__all__ = [
    "cluster_sweep",
    "crossover",
    "dominance_map",
    "fig3_timing",
    "fig11_table",
    "fig12_layout",
    "gate_depth",
    "ilp_limits",
    "ipc_equivalence",
    "performance_projection",
    "memory_bw",
    "one_cm_chip",
    "selftimed",
    "three_d",
    "window_vs_issue",
]
