"""Unit tests for the later experiment drivers (E12-E16)."""

import pytest

from repro.experiments import (
    dominance_map,
    ilp_limits,
    one_cm_chip,
    performance_projection,
    window_vs_issue,
)


class TestWindowVsIssue:
    @pytest.fixture(scope="class")
    def outcome(self):
        return window_vs_issue.run(sizes=[4, 16], alu_pools=[1, 4])

    def test_monotone_both_axes(self, outcome):
        assert outcome.monotone_in_window()
        assert outcome.monotone_in_alus()

    def test_one_alu_pins_ipc(self, outcome):
        assert outcome.ipc_at(16, 1) <= 1.05

    def test_report_renders(self):
        assert "window" in window_vs_issue.report()


class TestDominanceMap:
    @pytest.fixture(scope="class")
    def outcome(self):
        return dominance_map.run(sizes=[16, 256, 4096], L_values=[8, 64])

    def test_incomparability(self, outcome):
        assert outcome.us1_wins_somewhere()
        assert outcome.us2_wins_somewhere()

    def test_monotone_boundary(self, outcome):
        assert outcome.pairwise_boundary_is_monotone()

    def test_full_coverage(self, outcome):
        assert len(outcome.winner_pairwise) == 6
        assert set(outcome.winner_overall.values()) <= {"US1", "US2", "HYB"}

    def test_report_shows_both_maps(self):
        text = dominance_map.report()
        assert "incomparability" in text
        assert "Overall winner" in text


class TestPerformanceProjection:
    @pytest.fixture(scope="class")
    def outcome(self):
        return performance_projection.run(sizes=[16, 256])

    def test_conventional_collapses(self, outcome):
        perf = [row.conventional_performance for row in outcome.rows]
        assert perf[-1] < perf[0]

    def test_rows_carry_all_designs(self, outcome):
        for row in outcome.rows:
            assert row.us1.clock.processor == "ultrascalar1"
            assert row.hybrid.clock.processor == "hybrid"
            assert row.ipc > 0

    def test_report_renders(self):
        assert "IPC" in performance_projection.report()


class TestIlpLimits:
    @pytest.fixture(scope="class")
    def outcome(self):
        return ilp_limits.run(densities=[0.2, 0.8], sizes=[8, 64, 512], instructions=1500)

    def test_curves_monotone(self, outcome):
        assert all(curve.monotone() for curve in outcome.curves)

    def test_density_ordering(self, outcome):
        assert outcome.looser_code_has_more_ilp()

    def test_gain_beyond_uses_nearest_window(self, outcome):
        curve = outcome.curves[0]
        assert curve.gain_beyond(100) == pytest.approx(
            curve.saturation_ipc / curve.ipc[curve.windows.index(512)]
        )

    def test_report_renders(self):
        assert "IPC vs window" in ilp_limits.report()


class TestOneCmChip:
    @pytest.fixture(scope="class")
    def outcome(self):
        return one_cm_chip.run()

    def test_fits(self, outcome):
        assert outcome.fits_one_cm

    def test_shrink_factor(self):
        assert one_cm_chip.SHRINK == pytest.approx(0.1 / 0.35)
        assert one_cm_chip.TECH_01UM.track_um < 2.0

    def test_report_renders(self):
        text = one_cm_chip.report()
        assert "1 cm" in text
        assert "0.1 um" in text
