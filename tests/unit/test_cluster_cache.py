"""Unit tests for the distributed per-cluster cache (Section 7)."""

import pytest

from repro.memory.cluster_cache import ClusteredMemory


def drain(mem, request_id):
    for _ in range(100):
        done = mem.tick()
        if request_id in done:
            return done[request_id]
    raise AssertionError("request never completed")


class TestBasics:
    def test_first_load_misses_second_hits(self):
        mem = ClusteredMemory(cluster_size=4, shared_latency=5)
        mem.load_image({8: 42})
        assert drain(mem, mem.submit_load(8, leaf=0)) == 42
        assert mem.stats.shared_accesses == 1
        assert drain(mem, mem.submit_load(8, leaf=1)) == 42  # same cluster
        assert mem.stats.local_hits == 1

    def test_different_clusters_miss_separately(self):
        mem = ClusteredMemory(cluster_size=4)
        mem.load_image({8: 42})
        drain(mem, mem.submit_load(8, leaf=0))   # cluster 0
        drain(mem, mem.submit_load(8, leaf=4))   # cluster 1
        assert mem.stats.shared_accesses == 2
        assert mem.stats.local_hits == 0

    def test_local_hits_are_faster(self):
        mem = ClusteredMemory(cluster_size=4, local_latency=1, shared_latency=6)
        mem.load_image({8: 1})
        first = mem.submit_load(8, leaf=0)
        cycles_miss = 0
        while first not in mem.tick():
            cycles_miss += 1
        second = mem.submit_load(8, leaf=0)
        cycles_hit = 0
        while second not in mem.tick():
            cycles_hit += 1
        assert cycles_hit < cycles_miss

    def test_store_invalidates_other_clusters(self):
        mem = ClusteredMemory(cluster_size=4)
        mem.load_image({8: 1})
        drain(mem, mem.submit_load(8, leaf=0))   # cluster 0 caches 1
        drain(mem, mem.submit_load(8, leaf=4))   # cluster 1 caches 1
        drain(mem, mem.submit_store(8, 99, leaf=4))
        assert mem.stats.invalidations == 1
        # cluster 0 must now re-fetch the new value
        assert drain(mem, mem.submit_load(8, leaf=0)) == 99

    def test_store_updates_own_cluster(self):
        mem = ClusteredMemory(cluster_size=4)
        drain(mem, mem.submit_store(8, 7, leaf=0))
        hits_before = mem.stats.local_hits
        assert drain(mem, mem.submit_load(8, leaf=0)) == 7
        assert mem.stats.local_hits == hits_before + 1

    def test_capacity_eviction(self):
        mem = ClusteredMemory(cluster_size=4, words_per_cluster=2)
        mem.load_image({0: 1, 4: 2, 8: 3})
        for address in (0, 4, 8):
            drain(mem, mem.submit_load(address, leaf=0))
        # address 0 was evicted (FIFO); re-reading misses again
        shared_before = mem.stats.shared_accesses
        drain(mem, mem.submit_load(0, leaf=0))
        assert mem.stats.shared_accesses == shared_before + 1

    def test_peek_and_final_state(self):
        mem = ClusteredMemory()
        drain(mem, mem.submit_store(8, 5))
        assert mem.peek_word(8) == 5
        assert mem.final_state() == {8: 5}

    def test_values_masked(self):
        mem = ClusteredMemory()
        drain(mem, mem.submit_store(0, (1 << 40) | 3))
        assert mem.peek_word(0) == 3

    def test_bandwidth_saved_statistic(self):
        mem = ClusteredMemory(cluster_size=4)
        mem.load_image({8: 1})
        drain(mem, mem.submit_load(8, leaf=0))
        drain(mem, mem.submit_load(8, leaf=0))
        drain(mem, mem.submit_load(8, leaf=0))
        assert mem.stats.bandwidth_saved == pytest.approx(2 / 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusteredMemory(cluster_size=0)
        with pytest.raises(ValueError):
            ClusteredMemory(words_per_cluster=0)
        with pytest.raises(ValueError):
            ClusteredMemory(local_latency=0)
        mem = ClusteredMemory()
        with pytest.raises(ValueError):
            mem.submit_load(2)
