"""E3 — regenerate the paper's Figure 12 empirical density comparison."""

from repro.experiments import fig12_layout
from repro.vlsi.htree_layout import Ultrascalar1Layout
from repro.vlsi.hybrid_layout import HybridLayout


def test_bench_figure12_density(once):
    outcome = once(fig12_layout.run)
    print()
    print(fig12_layout.report())
    # shape: the hybrid is an order of magnitude denser, ~11.5x
    assert outcome.density_ratio > 8.0
    assert outcome.ratio_matches_paper
    # absolute calibration sanity: US-I 64-wide lands near 7cm x 7cm
    assert 5.0 < outcome.us1["side_cm"] < 9.0
    assert 10_000 < outcome.us1["stations_per_m2"] < 17_000
    assert 100_000 < outcome.hybrid["stations_per_m2"] < 210_000


def test_bench_figure12_win_holds_across_scales(once):
    """The hybrid's density advantage persists (and grows mildly) with n."""

    def sweep():
        ratios = []
        for n in (64, 256, 1024):
            us1 = Ultrascalar1Layout(n, 32, 32)
            hybrid = HybridLayout(n * 2, 32, 32, 32)
            ratios.append(hybrid.stations_per_m2 / us1.stations_per_m2)
        return ratios

    ratios = once(sweep)
    assert all(r > 8.0 for r in ratios)
