"""Unit tests for the pipeline trace viewer and the clock projections."""

import pytest

from repro.analysis.clock_period import (
    performance,
    project_hybrid,
    project_ultrascalar1,
    project_ultrascalar2,
)
from repro.ultrascalar import IdealMemory, ProcessorConfig, make_ultrascalar1
from repro.ultrascalar.trace_view import render_pipeline, stall_breakdown
from repro.workloads import paper_sequence


@pytest.fixture(scope="module")
def paper_result():
    w = paper_sequence()
    config = ProcessorConfig(window_size=9, fetch_width=9)
    return make_ultrascalar1(
        w.program, config, memory=IdealMemory(), initial_registers=w.registers_for()
    ).run()


class TestRenderPipeline:
    def test_one_row_per_instruction(self, paper_result):
        text = render_pipeline(paper_result)
        body = [ln for ln in text.splitlines() if "|" in ln][1:]  # skip header
        assert len(body) == len(paper_result.timings)

    def test_divide_shows_ten_execute_cells(self, paper_result):
        text = render_pipeline(paper_result)
        div_line = next(ln for ln in text.splitlines() if ln.startswith("div"))
        # ten cycles of divide; the last doubles as the commit (marked *)
        assert div_line.count("E") + div_line.count("*") == 10

    def test_dependent_add_waits(self, paper_result):
        text = render_pipeline(paper_result)
        add_line = next(ln for ln in text.splitlines() if ln.startswith("add r0, r0, r3"))
        assert add_line.count("f") == 10  # waits out the divide

    def test_commit_marked(self, paper_result):
        text = render_pipeline(paper_result)
        for line in text.splitlines():
            if line.startswith(("div", "add", "sub", "mul", "halt")):
                assert "C" in line or "*" in line

    def test_truncation(self, paper_result):
        text = render_pipeline(paper_result, max_instructions=3)
        assert "more instructions" in text

    def test_empty(self):
        from repro.ultrascalar.processor import ProcessorResult

        empty = ProcessorResult(
            cycles=0, committed=[], registers=[], memory={}, timings=[], halted=False
        )
        assert render_pipeline(empty) == "(no instructions)"


class TestStallBreakdown:
    def test_accounts_are_consistent(self, paper_result):
        breakdown = stall_breakdown(paper_result)
        assert breakdown["executing"] >= len(paper_result.timings)  # >= 1 cycle each
        assert breakdown["waiting"] >= 10  # the dependent add alone waits 10

    def test_serial_chain_has_no_waiting_beyond_forwarding(self):
        from repro.workloads import dependency_chain

        w = dependency_chain(10)
        config = ProcessorConfig(window_size=16, fetch_width=16)
        result = make_ultrascalar1(
            w.program, config, memory=IdealMemory(), initial_registers=w.registers_for()
        ).run()
        breakdown = stall_breakdown(result)
        # each link waits exactly for its predecessor: n-1 single-cycle
        # handoffs plus the halt
        assert breakdown["executing"] == len(result.timings)


class TestClockProjections:
    def test_period_combines_gates_and_wires(self):
        projection = project_ultrascalar1(64, 32)
        assert projection.period == pytest.approx(
            projection.gate_delays + projection.wire_delay_units
        )
        assert projection.frequency == pytest.approx(1.0 / projection.period)

    def test_us1_gate_delay_logarithmic(self):
        small = project_ultrascalar1(64, 32).gate_delays
        large = project_ultrascalar1(4096, 32).gate_delays
        assert large - small == pytest.approx(2 * 6, abs=0.1)  # +2 per doubling

    def test_us2_variants_ordered(self):
        linear = project_ultrascalar2(256, 32, variant="linear")
        mixed = project_ultrascalar2(256, 32, variant="mixed")
        tree = project_ultrascalar2(256, 32, variant="tree")
        assert tree.gate_delays < mixed.gate_delays < linear.gate_delays

    def test_hybrid_period_beats_us1_at_scale(self):
        us1 = project_ultrascalar1(4096, 32)
        hybrid = project_hybrid(4096, 32)
        assert hybrid.period < us1.period

    def test_performance_bundle(self):
        projection = project_hybrid(256, 32)
        perf = performance(projection, ipc=4.0)
        assert perf.instructions_per_time == pytest.approx(4.0 / projection.period)
        with pytest.raises(ValueError):
            performance(projection, ipc=-1)
