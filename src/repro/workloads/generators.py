"""Concrete workload generators.  See package docstring."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.assembler import assemble
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.isa.registers import MachineSpec
from repro.util.rng import make_rng


@dataclass(frozen=True)
class Workload:
    """A program plus its initial machine state and provenance."""

    name: str
    program: Program
    initial_registers: list[int] = field(default_factory=list)
    memory_image: dict[int, int] = field(default_factory=dict)
    description: str = ""

    def registers_for(self, num_registers: int | None = None) -> list[int]:
        """Initial register file padded/truncated to the machine size."""
        count = num_registers or self.program.spec.num_registers
        regs = list(self.initial_registers[:count])
        regs.extend([0] * (count - len(regs)))
        return regs


def paper_sequence() -> Workload:
    """The 8-instruction sequence of the paper's Figures 1 and 3.

    ::

        R3 = R1 / R2      (division, 10 cycles)
        R0 = R0 + R3
        R1 = R5 + R6
        R1 = R0 + R1
        R2 = R5 * R6      (multiplication, 3 cycles)
        R2 = R2 + R4
        R0 = R5 - R6
        R4 = R0 + R7

    Initial R0 = 10 per Figure 1 ("The initial value, equal to 10, is
    marked ready"); the remaining inputs are chosen arbitrarily.
    """
    source = """
        div r3, r1, r2
        add r0, r0, r3
        add r1, r5, r6
        add r1, r0, r1
        mul r2, r5, r6
        add r2, r2, r4
        sub r0, r5, r6
        add r4, r0, r7
        halt
    """
    regs = [0] * 32
    regs[0] = 10
    regs[1] = 84
    regs[2] = 2
    regs[4] = 7
    regs[5] = 46
    regs[6] = 4
    regs[7] = 5
    return Workload(
        name="paper-figure3",
        program=assemble(source),
        initial_registers=regs,
        description="The 8-instruction example of the paper's Figures 1 and 3",
    )


def dependency_chain(length: int, spec: MachineSpec | None = None) -> Workload:
    """A serial chain ``r1 += r2`` repeated: ILP = 1, the worst case."""
    if length < 1:
        raise ValueError("length must be positive")
    spec = spec or MachineSpec()
    insts = [Instruction(Opcode.ADD, rd=1, rs1=1, rs2=2) for _ in range(length)]
    insts.append(Instruction(Opcode.HALT))
    regs = [0] * spec.num_registers
    regs[2] = 1
    return Workload(
        name=f"chain-{length}",
        program=Program.from_instructions(insts, spec),
        initial_registers=regs,
        description="Serial dependency chain (ILP = 1)",
    )


def independent_ops(count: int, spec: MachineSpec | None = None) -> Workload:
    """Fully independent adds spread over the register file: ILP = count."""
    if count < 1:
        raise ValueError("count must be positive")
    spec = spec or MachineSpec()
    L = spec.num_registers
    if L < 4:
        raise ValueError("need at least 4 registers")
    insts = []
    for i in range(count):
        rd = 2 + (i % (L - 2))
        insts.append(Instruction(Opcode.ADD, rd=rd, rs1=0, rs2=1))
    insts.append(Instruction(Opcode.HALT))
    regs = [0] * L
    regs[0] = 3
    regs[1] = 4
    return Workload(
        name=f"independent-{count}",
        program=Program.from_instructions(insts, spec),
        initial_registers=regs,
        description="Independent operations (maximal ILP)",
    )


def random_ilp(
    count: int,
    dependency_fraction: float = 0.5,
    seed: int | None = None,
    spec: MachineSpec | None = None,
) -> Workload:
    """Random ALU instructions with a tunable dependence density.

    Each instruction's sources are, with probability
    *dependency_fraction*, a recently written register (RAW pressure);
    otherwise one of the read-only input registers.  Destinations cycle
    through the upper register file.
    """
    if count < 1:
        raise ValueError("count must be positive")
    if not 0.0 <= dependency_fraction <= 1.0:
        raise ValueError("dependency_fraction must be in [0, 1]")
    spec = spec or MachineSpec()
    L = spec.num_registers
    if L < 8:
        raise ValueError("need at least 8 registers")
    rng = make_rng(seed)
    inputs = list(range(0, L // 4))  # read-only inputs
    dests = list(range(L // 4, L))
    ops = [Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.MUL]
    recent: list[int] = []
    insts = []
    for i in range(count):
        def pick_source() -> int:
            if recent and rng.random() < dependency_fraction:
                return recent[int(rng.integers(max(0, len(recent) - 4), len(recent)))]
            return inputs[int(rng.integers(0, len(inputs)))]

        rd = dests[i % len(dests)]
        op = ops[int(rng.integers(0, len(ops)))]
        insts.append(Instruction(op, rd=rd, rs1=pick_source(), rs2=pick_source()))
        recent.append(rd)
    insts.append(Instruction(Opcode.HALT))
    regs = [int(rng.integers(1, 100)) for _ in range(L)]
    return Workload(
        name=f"random-ilp-{count}-{dependency_fraction}",
        program=Program.from_instructions(insts, spec),
        initial_registers=regs,
        description=f"Random dependence graph, density {dependency_fraction}",
    )


def daxpy_loop(iterations: int, spec: MachineSpec | None = None) -> Workload:
    """``y[i] = a * x[i] + y[i]`` over *iterations* elements.

    The memory-rich loop the paper's M(n) = Θ(n) regime models: two
    loads, one multiply, one add, one store per iteration.
    """
    if iterations < 1:
        raise ValueError("iterations must be positive")
    spec = spec or MachineSpec()
    source = f"""
        li   r1, {iterations}   # counter
        li   r2, 1000           # x base
        li   r3, 2000           # y base
        li   r4, 3              # a
      loop:
        lw   r5, 0(r2)
        lw   r6, 0(r3)
        mul  r7, r4, r5
        add  r7, r7, r6
        sw   r7, 0(r3)
        addi r2, r2, 4
        addi r3, r3, 4
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    """
    image = {}
    for i in range(iterations):
        image[1000 + 4 * i] = i + 1          # x[i]
        image[2000 + 4 * i] = 10 * (i + 1)   # y[i]
    return Workload(
        name=f"daxpy-{iterations}",
        program=assemble(source, spec=spec),
        memory_image=image,
        description="daxpy loop: 2 loads + 1 store per iteration (memory-bound)",
    )


def reduction_loop(iterations: int, spec: MachineSpec | None = None) -> Workload:
    """Sum an array: one load + one serial add per iteration."""
    if iterations < 1:
        raise ValueError("iterations must be positive")
    spec = spec or MachineSpec()
    source = f"""
        li   r1, {iterations}
        li   r2, 1000
        li   r3, 0              # accumulator
      loop:
        lw   r4, 0(r2)
        add  r3, r3, r4
        addi r2, r2, 4
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    """
    image = {1000 + 4 * i: i + 1 for i in range(iterations)}
    return Workload(
        name=f"reduce-{iterations}",
        program=assemble(source, spec=spec),
        memory_image=image,
        description="Array reduction (serial accumulator, parallel loads)",
    )


def pointer_chase(length: int, spec: MachineSpec | None = None) -> Workload:
    """Follow a linked chain: fully serial loads (memory latency bound)."""
    if length < 1:
        raise ValueError("length must be positive")
    spec = spec or MachineSpec()
    source = f"""
        li   r1, {length}
        li   r2, 1000           # head pointer
      loop:
        lw   r2, 0(r2)
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    """
    image = {}
    addr = 1000
    for i in range(length):
        next_addr = 1000 + 8 * (i + 1)
        image[addr] = next_addr
        addr = next_addr
    return Workload(
        name=f"chase-{length}",
        program=assemble(source, spec=spec),
        memory_image=image,
        description="Pointer chase: serially dependent loads",
    )


def spaced_chain(
    length: int, distance: int, spec: MachineSpec | None = None
) -> Workload:
    """A dependency chain where each instruction depends on the one
    *distance* earlier (padded with independent filler in between).

    With ``distance = 1`` producers and consumers sit in adjacent ring
    stations; with large *distance* they sit far apart in the H-tree —
    the contrast behind the paper's self-timed observation that
    "a program could run faster if most of its instructions depend on
    their immediate predecessors rather than on far-previous
    instructions".
    """
    if length < 1 or distance < 1:
        raise ValueError("length and distance must be positive")
    spec = spec or MachineSpec()
    L = spec.num_registers
    if L < distance + 4:
        raise ValueError("register file too small for the requested distance")
    insts: list[Instruction] = []
    for i in range(length):
        slot = i % distance
        if slot == 0:
            # the chain link: depends on the value produced `distance` ago
            insts.append(Instruction(Opcode.ADD, rd=1, rs1=1, rs2=2))
        else:
            # independent filler occupying the stations in between
            insts.append(Instruction(Opcode.ADD, rd=3 + slot, rs1=0, rs2=2))
    insts.append(Instruction(Opcode.HALT))
    regs = [0] * L
    regs[2] = 1
    return Workload(
        name=f"spaced-{length}@{distance}",
        program=Program.from_instructions(insts, spec),
        initial_registers=regs,
        description=f"Dependency chain with producer-consumer distance {distance}",
    )


def store_load_pairs(count: int, spec: MachineSpec | None = None) -> Workload:
    """Store-then-load-same-address pairs under a long-latency shadow.

    A slow divide keeps the window from committing, so every load finds
    its producing store still in the window — the memory-renaming
    (store-forwarding) best case the paper's Section 7 suggests for
    reducing memory bandwidth.
    """
    if count < 1:
        raise ValueError("count must be positive")
    spec = spec or MachineSpec()
    L = spec.num_registers
    insts = [
        Instruction(Opcode.LI, rd=1, imm=4096),
        Instruction(Opcode.LI, rd=2, imm=9),
        Instruction(Opcode.LI, rd=3, imm=77),
        Instruction(Opcode.DIV, rd=4, rs1=3, rs2=2),  # slow op holds commit
    ]
    for i in range(count):
        reg = 5 + (i % (L - 5))
        insts.append(Instruction(Opcode.SW, rs2=2, rs1=1, imm=4 * i))
        insts.append(Instruction(Opcode.LW, rd=reg, rs1=1, imm=4 * i))
    insts.append(Instruction(Opcode.HALT))
    return Workload(
        name=f"store-load-{count}",
        program=Program.from_instructions(insts, spec),
        description="Store/load-same-address pairs (memory-renaming best case)",
    )


def repeated_reduction(
    elements: int, passes: int, spec: MachineSpec | None = None
) -> Workload:
    """Sum the same array *passes* times: heavy read reuse.

    The workload for the Section 7 distributed-cluster-cache idea —
    after the first pass the data lives in the cluster caches and the
    shared-memory bandwidth demand collapses.
    """
    if elements < 1 or passes < 1:
        raise ValueError("elements and passes must be positive")
    spec = spec or MachineSpec()
    source = f"""
        li   r1, {passes}
        li   r3, 0              # grand total
      pass:
        li   r2, 1024           # array base
        li   r4, {elements}
      elem:
        lw   r5, 0(r2)
        add  r3, r3, r5
        addi r2, r2, 4
        addi r4, r4, -1
        bne  r4, r0, elem
        addi r1, r1, -1
        bne  r1, r0, pass
        halt
    """
    image = {1024 + 4 * i: i + 1 for i in range(elements)}
    return Workload(
        name=f"rereduce-{elements}x{passes}",
        program=assemble(source, spec=spec),
        memory_image=image,
        description="Repeated array reduction (read reuse for cluster caches)",
    )


def parallel_loads(count: int, spec: MachineSpec | None = None) -> Workload:
    """Independent loads from spread addresses: pure bandwidth pressure.

    Unlike stores (which the Ultrascalar serializes against all earlier
    memory operations), loads only wait for earlier *stores* — so a pure
    load stream exercises the fat-tree/bank parallelism directly.
    """
    if count < 1:
        raise ValueError("count must be positive")
    spec = spec or MachineSpec()
    L = spec.num_registers
    insts = []
    image = {}
    for i in range(count):
        reg = 1 + (i % (L - 1))
        address = 4096 + 4 * i
        image[address] = i + 1
        insts.append(Instruction(Opcode.LW, rd=reg, rs1=0, imm=address))
    insts.append(Instruction(Opcode.HALT))
    return Workload(
        name=f"loads-{count}",
        program=Program.from_instructions(insts, spec),
        memory_image=image,
        description="Independent parallel loads (bandwidth-bound)",
    )


def jump_chain(blocks: int, block_size: int = 3, spec: MachineSpec | None = None) -> Workload:
    """Blocks of ALU work chained by unconditional jumps.

    Conventional fetch stops at each taken transfer, capping delivery at
    ``block_size + 1`` per cycle; a trace cache fetches across the jumps
    — the fetch-bandwidth scenario trace caches exist for.
    """
    if blocks < 1 or block_size < 1:
        raise ValueError("blocks and block_size must be positive")
    spec = spec or MachineSpec()
    L = spec.num_registers
    insts: list[Instruction] = []
    for b in range(blocks):
        for k in range(block_size):
            rd = 2 + ((b * block_size + k) % (L - 2))
            insts.append(Instruction(Opcode.ADD, rd=rd, rs1=0, rs2=1))
        target = (b + 1) * (block_size + 1)
        insts.append(Instruction(Opcode.J, target=target))
    insts.append(Instruction(Opcode.HALT))
    regs = [0] * L
    regs[0], regs[1] = 1, 2
    return Workload(
        name=f"jumps-{blocks}x{block_size}",
        program=Program.from_instructions(insts, spec),
        initial_registers=regs,
        description="Jump-chained blocks (trace-cache fetch stressor)",
    )


def memory_stream(count: int, spec: MachineSpec | None = None) -> Workload:
    """Independent store/load pairs: maximal memory-bandwidth pressure.

    One memory operation per instruction (modulo address setup), the
    M(n) = Θ(n) worst case of the paper's Section 7 discussion.
    """
    if count < 1:
        raise ValueError("count must be positive")
    spec = spec or MachineSpec()
    L = spec.num_registers
    insts = [Instruction(Opcode.LI, rd=1, imm=7)]
    for i in range(count):
        reg = 2 + (i % (L - 2))
        insts.append(Instruction(Opcode.SW, rs2=1, rs1=0, imm=4 * i + 4))
        insts.append(Instruction(Opcode.LW, rd=reg, rs1=0, imm=4 * i + 4))
    insts.append(Instruction(Opcode.HALT))
    return Workload(
        name=f"stream-{count}",
        program=Program.from_instructions(insts, spec),
        description="Independent store/load pairs (bandwidth-bound)",
    )
