"""Mesh-of-trees structural statistics (Leighton).

The Ultrascalar II's log-depth datapath is a mesh-of-trees: one fan-out
tree per row (register binding) and per column request, and one
reduction tree per consumer column.  These counts back the paper's
Section 5 observation that the tree version inflates the side length to
Θ((n + L) log(n + L)) in two dimensions, while the node/leaf counts
themselves stay Θ((n + L)^2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class MeshOfTreesStats:
    """Structural counts for an ``rows x cols`` mesh-of-trees."""

    rows: int
    cols: int
    crosspoints: int
    row_tree_nodes: int
    col_tree_nodes: int
    depth: int

    @property
    def total_nodes(self) -> int:
        """Crosspoints plus all tree-internal nodes."""
        return self.crosspoints + self.row_tree_nodes + self.col_tree_nodes


def _internal_nodes(leaves: int) -> int:
    """Internal nodes of a balanced binary tree over *leaves* leaves."""
    return max(0, leaves - 1)


def mesh_of_trees_stats(rows: int, cols: int) -> MeshOfTreesStats:
    """Counts for the mesh-of-trees over an ``rows x cols`` grid.

    For the Ultrascalar II register network, ``rows = n + L`` (station
    bindings plus register-file rows) and ``cols = 2n + L`` (two argument
    columns per station plus the outgoing-register columns).
    """
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be positive")
    crosspoints = rows * cols
    row_tree_nodes = rows * _internal_nodes(cols)
    col_tree_nodes = cols * _internal_nodes(rows)
    depth = (
        math.ceil(math.log2(cols)) if cols > 1 else 0
    ) + (math.ceil(math.log2(rows)) if rows > 1 else 0)
    return MeshOfTreesStats(
        rows=rows,
        cols=cols,
        crosspoints=crosspoints,
        row_tree_nodes=row_tree_nodes,
        col_tree_nodes=col_tree_nodes,
        depth=depth,
    )


def ultrascalar2_mesh_stats(n: int, num_registers: int) -> MeshOfTreesStats:
    """Mesh-of-trees counts for an n-station, L-register Ultrascalar II."""
    if n < 1 or num_registers < 1:
        raise ValueError("n and L must be positive")
    rows = n + num_registers
    cols = 2 * n + num_registers
    return mesh_of_trees_stats(rows, cols)
