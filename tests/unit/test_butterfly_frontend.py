"""Unit tests for the butterfly memory front end (the paper's alternative
to the fat tree) and the remaining workload generators."""

import pytest

from repro.isa.interpreter import MachineState, run_program
from repro.memory.interleaved_cache import InterleavedCache, MemoryRequest
from repro.network.butterfly import ButterflyFrontEnd
from repro.workloads import (
    jump_chain,
    parallel_loads,
    repeated_reduction,
    spaced_chain,
    store_load_pairs,
)


class TestButterflyFrontEnd:
    def test_admits_disjoint_requests(self):
        front = ButterflyFrontEnd(16, banks=4)
        routing = front.admit([0, 1, 2, 3], banks=[0, 1, 2, 3])
        assert len(routing.granted) == 4

    def test_same_bank_conflicts(self):
        front = ButterflyFrontEnd(16, banks=4)
        routing = front.admit([0, 1], banks=[2, 2])
        assert routing.granted == (0,)
        assert routing.denied == (1,)

    def test_cache_with_butterfly_front_end(self):
        front = ButterflyFrontEnd(16, banks=2)
        cache = InterleavedCache(banks=2, lines_per_bank=8, fat_tree=front)
        cache.memory.latency = 0
        requests = [
            MemoryRequest(i, address=4 * i, is_store=True, value=i, leaf=i)
            for i in range(6)
        ]
        for request in requests:
            cache.submit(request)
        cache.drain()
        cache.flush()
        for i in range(6):
            assert cache.memory.read_word(4 * i) == i

    def test_validation(self):
        with pytest.raises(ValueError):
            ButterflyFrontEnd(16, banks=0)
        with pytest.raises(ValueError):
            ButterflyFrontEnd(3, banks=2)


class TestRemainingWorkloads:
    def test_spaced_chain_runs(self):
        for distance in (1, 4, 8):
            workload = spaced_chain(24, distance)
            result = run_program(
                workload.program, state=MachineState(workload.registers_for())
            )
            assert result.halted
            # the chain register accumulates one per link
            assert result.state.registers[1] == sum(
                1 for i in range(24) if i % distance == 0
            )

    def test_spaced_chain_validation(self):
        with pytest.raises(ValueError):
            spaced_chain(0, 1)
        with pytest.raises(ValueError):
            spaced_chain(10, 0)
        with pytest.raises(ValueError):
            spaced_chain(10, 40)  # register file too small

    def test_store_load_pairs_roundtrip(self):
        workload = store_load_pairs(4)
        result = run_program(
            workload.program, state=MachineState(workload.registers_for())
        )
        # every load sees the stored constant 9
        for i in range(4):
            assert result.state.memory[4096 + 4 * i] == 9

    def test_jump_chain_shape(self):
        workload = jump_chain(blocks=5, block_size=2)
        assert len(workload.program) == 5 * 3 + 1
        result = run_program(
            workload.program, state=MachineState(workload.registers_for())
        )
        assert result.halted
        assert result.dynamic_length == len(workload.program)

    def test_parallel_loads_image(self):
        workload = parallel_loads(6)
        result = run_program(
            workload.program, state=MachineState(workload.registers_for(), dict(workload.memory_image))
        )
        assert result.halted
        loaded = [r for r in result.state.registers if r]
        assert loaded  # values arrived

    def test_repeated_reduction_total(self):
        workload = repeated_reduction(5, 3)
        result = run_program(
            workload.program, state=MachineState(workload.registers_for(), dict(workload.memory_image))
        )
        assert result.state.registers[3] == 3 * sum(range(1, 6))

    @pytest.mark.parametrize(
        "factory,args",
        [
            (store_load_pairs, (0,)),
            (jump_chain, (0,)),
            (parallel_loads, (0,)),
            (repeated_reduction, (0, 1)),
        ],
    )
    def test_validation(self, factory, args):
        with pytest.raises(ValueError):
            factory(*args)


class TestDocstringContract:
    """Production hygiene: every public module, class, and function in
    the library carries a docstring."""

    def test_all_public_items_documented(self):
        import ast
        import pathlib

        missing = []
        # overrides whose contract is documented once, on the protocol or
        # base class (BranchPredictor, MemorySystem, ScanOp, Tracer)
        interface_methods = {
            "predict", "update", "reset",                      # BranchPredictor
            "submit_load", "submit_store", "tick",             # MemorySystem
            "peek_word", "load_image", "final_state",
            "counters",
            "combine",                                         # ScanOp
            "count", "event", "snapshot",                      # Tracer
        }

        def check_scope(path, body, prefix=""):
            for node in body:
                if not isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if node.name.startswith("_"):
                    continue
                if prefix and node.name in interface_methods:
                    continue
                if not ast.get_docstring(node):
                    missing.append(f"{path}:{node.lineno} {prefix}{node.name}")
                if isinstance(node, ast.ClassDef):
                    check_scope(path, node.body, prefix=f"{node.name}.")

        for path in sorted(pathlib.Path("src/repro").rglob("*.py")):
            tree = ast.parse(path.read_text())
            if not ast.get_docstring(tree) and path.name != "__init__.py":
                missing.append(f"{path} (module)")
            check_scope(path, tree.body)
        assert not missing, "undocumented public items:\n" + "\n".join(missing)
