"""E10 — ILP equivalence with the ideal superscalar; US-II's idle tax;
the conventional quadratic wall."""

from repro.experiments import ipc_equivalence


def test_bench_ipc_table(once):
    outcome = once(ipc_equivalence.run)
    print()
    print(ipc_equivalence.report())
    assert outcome.us1_always_matches()
    assert outcome.us2_never_faster()


def test_bench_conventional_delay_quadratic_vs_log(once):
    outcome = once(ipc_equivalence.run)
    conventional = outcome.conventional_delays
    ultrascalar = outcome.ultrascalar_gate_delays
    widths = sorted(conventional)
    # conventional delay grows super-linearly; ultrascalar adds a
    # constant per doubling
    conv_growth = conventional[widths[-1]] / conventional[widths[-3]]
    assert conv_growth > (widths[-1] / widths[-3]) * 1.5
    us_diffs = [
        ultrascalar[b] - ultrascalar[a] for a, b in zip(widths, widths[1:])
    ]
    assert max(us_diffs) <= 1.01
    # and the ultrascalar wins decisively at high issue width
    assert ultrascalar[widths[-1]] < conventional[widths[-1]] / 10
