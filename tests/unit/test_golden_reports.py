"""Golden-report regression tests.

Every experiment's ``report()`` output is deterministic, so each one is
pinned byte-for-byte against a snapshot under ``tests/golden/``.  Run
``pytest --update-golden`` after an intentional report change to
regenerate the snapshots (then review the diff like any other code).
"""

from pathlib import Path

import pytest

from repro.runner.cache import ResultCache
from repro.runner.pool import run_jobs
from repro.runner.registry import REGISTRY, build_jobs

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "golden"


def _render(key: str) -> str:
    """One experiment's full report: its sweep points, concatenated."""
    spec = REGISTRY[key]
    fn = spec.load()
    return "\n".join(fn(**point) for point in spec.sweep_points())


@pytest.mark.parametrize("key", sorted(REGISTRY))
def test_report_matches_golden(key, update_golden):
    text = _render(key)
    path = GOLDEN_DIR / f"{key}.txt"
    if update_golden:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        pytest.skip(f"golden snapshot rewritten: {path.name}")
    assert path.exists(), (
        f"missing golden snapshot {path}; run `pytest --update-golden` once"
    )
    assert text == path.read_text(encoding="utf-8")


def test_every_experiment_has_a_snapshot():
    have = {p.stem for p in GOLDEN_DIR.glob("*.txt")}
    assert have == set(REGISTRY), "snapshots out of sync with the registry"


def test_cached_result_identical_to_fresh(tmp_path):
    """A cache round-trip through the runner changes nothing in the text."""
    cache = ResultCache(tmp_path / "cache")
    jobs = build_jobs([REGISTRY["fig3"]], cache=cache)
    fresh = run_jobs(jobs, cache=cache)
    warm = run_jobs(jobs, cache=cache)
    assert [r.ok for r in fresh] == [True]
    assert [r.cache_hit for r in fresh] == [False]
    assert [r.cache_hit for r in warm] == [True]
    assert [r.output for r in warm] == [r.output for r in fresh]
    assert fresh[0].output == (GOLDEN_DIR / "fig3.txt").read_text(encoding="utf-8")
