"""Chrome trace-event export (``chrome://tracing`` / Perfetto format).

Two producers share this module:

* :class:`~repro.telemetry.tracer.EventTracer` timelines — one complete
  ("X") event per committed instruction, timestamped in simulated
  cycles; and
* the runner's ``--trace PATH`` flag — one complete event per job,
  timestamped in (cumulative) wall-clock microseconds, with the job's
  aggregated telemetry counters attached as event ``args``.

The document follows the Trace Event Format's JSON object form:
``{"traceEvents": [...], "displayTimeUnit": ..., "otherData": {...}}``.
``otherData.schema`` is ``repro-trace/1`` so artifacts are validatable
without sniffing event contents.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro._version import __version__
from repro.telemetry.tracer import TraceEvent

TRACE_SCHEMA = "repro-trace/1"


def chrome_event(event: TraceEvent, *, pid: int = 0) -> dict[str, Any]:
    """One :class:`TraceEvent` as a Chrome complete event dict."""
    return {
        "name": event.name,
        "cat": event.cat,
        "ph": "X",
        "ts": event.ts,
        "dur": max(0, event.dur),
        "pid": pid,
        "tid": event.tid,
        "args": dict(event.args),
    }


def build_chrome_trace(
    events: Iterable[TraceEvent],
    *,
    process_name: str = "repro",
    time_unit: str = "ms",
    metadata: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the full trace document from *events*."""
    trace_events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    trace_events.extend(chrome_event(e) for e in events)
    other: dict[str, Any] = {"schema": TRACE_SCHEMA, "version": __version__}
    if metadata:
        other.update(metadata)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": time_unit,
        "otherData": other,
    }


def write_chrome_trace(
    path: str | Path,
    events: Iterable[TraceEvent],
    *,
    process_name: str = "repro",
    time_unit: str = "ms",
    metadata: dict[str, Any] | None = None,
) -> Path:
    """Write the trace document to *path* (parent dirs created)."""
    path = Path(path)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    document = build_chrome_trace(
        events, process_name=process_name, time_unit=time_unit, metadata=metadata
    )
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return path


def validate_chrome_trace(document: Any) -> list[str]:
    """Schema check for a trace document; returns problem descriptions.

    An empty list means the document is a well-formed ``repro-trace/1``
    artifact.  Used by tests and the CI smoke job.
    """
    problems: list[str] = []
    if not isinstance(document, dict):
        return ["trace document is not a JSON object"]
    other = document.get("otherData")
    if not isinstance(other, dict) or other.get("schema") != TRACE_SCHEMA:
        problems.append(f"otherData.schema != {TRACE_SCHEMA!r}")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return problems + ["traceEvents is not a list"]
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"traceEvents[{index}] is not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                problems.append(f"traceEvents[{index}] missing {key!r}")
        if event.get("ph") == "X" and "ts" not in event:
            problems.append(f"traceEvents[{index}] complete event missing 'ts'")
    return problems
