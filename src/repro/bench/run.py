"""Executing registered benchmarks: timed repeats plus the stats pass.

:func:`run_benchmark` is the single place the protocol is applied:
setup via :meth:`~repro.bench.registry.Benchmark.make` (untimed), the
warmup/repeat measurement from :mod:`repro.bench.timing`, then one
extra **untimed** pass inside a telemetry session
(:func:`repro.telemetry.collecting`) so engine benchmarks report their
simulated-cycle counters without tracing overhead ever touching the
timed path.  The resulting :class:`~repro.bench.timing.BenchRecord`
carries wall-clock samples, counters, and the joined rates.
"""

from __future__ import annotations

from typing import Callable

from repro.bench.registry import Benchmark
from repro.bench.timing import BenchRecord, measure
from repro.telemetry import CountingTracer, collecting


def run_benchmark(
    benchmark: Benchmark,
    *,
    repeats: int = 5,
    warmup: int = 1,
) -> BenchRecord:
    """Measure one benchmark under the protocol; see module docs."""
    thunk = benchmark.make()
    timing = measure(thunk, repeats=repeats, warmup=warmup)
    tracer = CountingTracer()
    with collecting(tracer):
        thunk()
    return BenchRecord(
        name=benchmark.name,
        group=benchmark.group,
        title=benchmark.title,
        metadata=dict(benchmark.metadata),
        timing=timing,
        stats=tracer.snapshot(),
    )


def run_benchmarks(
    benchmarks: list[Benchmark],
    *,
    repeats: int = 5,
    warmup: int = 1,
    on_record: Callable[[BenchRecord], None] | None = None,
) -> list[BenchRecord]:
    """Run *benchmarks* in order, emitting each record as it lands."""
    records: list[BenchRecord] = []
    for benchmark in benchmarks:
        record = run_benchmark(benchmark, repeats=repeats, warmup=warmup)
        records.append(record)
        if on_record is not None:
            on_record(record)
    return records
