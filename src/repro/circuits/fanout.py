"""Buffer fan-out trees (the F nodes of the paper's Figure 8).

The Ultrascalar II avoids broadcasting register numbers and bindings
along Θ(n + L) wires by fanning them out "through a tree of buffers
(i.e., one-input gates that compute the identity)", reducing the fan-out
gate delay from Θ(n + L) to Θ(log(n + L)).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.netlist import GateKind, Net, Netlist


@dataclass(frozen=True)
class FanoutTree:
    """A constructed fan-out tree: one source, ``copies`` buffered leaf nets."""

    source: Net
    leaves: tuple[Net, ...]
    depth: int


def build_fanout_tree(
    netlist: Netlist, source: Net, copies: int, radix: int = 2
) -> FanoutTree:
    """Fan *source* out to *copies* leaf nets via a balanced buffer tree.

    Each tree node is a BUF gate with fan-out at most *radix*, so the
    depth is ``ceil(log_radix(copies))`` gate delays.  (A naive broadcast
    has gate depth 1 but unbounded electrical fan-out; the paper's
    gate-delay model charges bounded fan-out, which the tree restores.)
    A single copy is the source itself (depth 0).
    """
    if copies < 1:
        raise ValueError("need at least one copy")
    if radix < 2:
        raise ValueError("radix must be >= 2")

    def expand(src: Net, k: int) -> tuple[list[Net], int]:
        if k == 1:
            return [src], 0
        parts = min(radix, k)
        sizes = [k // parts + (1 if i < k % parts else 0) for i in range(parts)]
        leaves: list[Net] = []
        depth = 0
        for size in sizes:
            child = netlist.add_gate(GateKind.BUF, src)
            sub_leaves, sub_depth = expand(child, size)
            leaves.extend(sub_leaves)
            depth = max(depth, sub_depth + 1)
        return leaves, depth

    leaves, depth = expand(source, copies)
    return FanoutTree(source=source, leaves=tuple(leaves), depth=depth)
