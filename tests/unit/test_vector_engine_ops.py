"""Unit tests for every opcode the vector engine supports, against the
golden interpreter."""

import pytest

from repro.isa import Instruction, Opcode, Program
from repro.isa.interpreter import MachineState, run_program
from repro.ultrascalar.vector_engine import VectorRingEngine


def run_both(instructions, initial=None):
    program = Program.from_instructions(list(instructions) + [Instruction(Opcode.HALT)])
    regs = initial or [0] * 32
    golden = run_program(program, state=MachineState(list(regs)))
    vector = VectorRingEngine(program, 8, 4, initial_registers=list(regs)).run()
    return golden.state.registers, vector.registers


OPS_R3 = [Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.MUL, Opcode.DIV]


class TestOpcodes:
    @pytest.mark.parametrize("op", OPS_R3, ids=lambda o: o.mnemonic)
    @pytest.mark.parametrize("a,b", [(7, 3), (0, 5), (0xFFFFFFFF, 2), (123456, 789)])
    def test_r3_ops(self, op, a, b):
        regs = [0] * 32
        regs[1], regs[2] = a, b
        golden, vector = run_both([Instruction(op, rd=3, rs1=1, rs2=2)], regs)
        assert vector == golden

    @pytest.mark.parametrize("a,shift", [(1, 3), (0x80000000, 1), (0xF0F0F0F0, 4), (5, 33)])
    def test_shifts(self, a, shift):
        regs = [0] * 32
        regs[1], regs[2] = a, shift
        golden, vector = run_both(
            [
                Instruction(Opcode.SLL, rd=3, rs1=1, rs2=2),
                Instruction(Opcode.SRL, rd=4, rs1=1, rs2=2),
            ],
            regs,
        )
        assert vector == golden

    @pytest.mark.parametrize(
        "a,b", [(7, 0), (0, 0), (0x80000000, 0xFFFFFFFF), (100, 7), (0xFFFFFFF9, 2)]
    )
    def test_division_edge_cases(self, a, b):
        regs = [0] * 32
        regs[1], regs[2] = a, b
        golden, vector = run_both([Instruction(Opcode.DIV, rd=3, rs1=1, rs2=2)], regs)
        assert vector == golden

    @pytest.mark.parametrize("imm", [-32768, -1, 0, 1, 32767])
    def test_immediates(self, imm):
        golden, vector = run_both(
            [
                Instruction(Opcode.LI, rd=1, imm=imm),
                Instruction(Opcode.ADDI, rd=2, rs1=1, imm=imm),
                Instruction(Opcode.MULI, rd=3, rs1=1, imm=3),
            ]
        )
        assert vector == golden

    def test_mov_and_nop(self):
        regs = [0] * 32
        regs[5] = 77
        golden, vector = run_both(
            [Instruction(Opcode.MOV, rd=1, rs1=5), Instruction(Opcode.NOP)],
            regs,
        )
        assert vector == golden

    def test_duplicate_destination_commits_last_write(self):
        # two same-cycle commits to one register: last (youngest) wins
        golden, vector = run_both(
            [
                Instruction(Opcode.LI, rd=1, imm=1),
                Instruction(Opcode.LI, rd=1, imm=2),
                Instruction(Opcode.LI, rd=1, imm=3),
            ]
        )
        assert vector == golden
        assert vector[1] == 3
