"""Instruction-delivery front end: branch prediction and fetch.

All three Ultrascalar processors "speculate on branches, and
effortlessly recover from branch mispredictions"; the speculation
itself comes from this front end.  The fetch unit walks the predicted
path (optionally through a trace cache so a single cycle can span taken
branches) and hands dynamic instructions to whichever processor model
is running.
"""

from repro.frontend.branch_predictor import (
    AlwaysNotTaken,
    AlwaysTaken,
    BackwardTaken,
    BimodalPredictor,
    BranchPredictor,
    GSharePredictor,
    PerfectPredictor,
)
from repro.frontend.fetch import FetchedInstruction, FetchUnit

__all__ = [
    "AlwaysNotTaken",
    "AlwaysTaken",
    "BackwardTaken",
    "BimodalPredictor",
    "BranchPredictor",
    "GSharePredictor",
    "PerfectPredictor",
    "FetchedInstruction",
    "FetchUnit",
]
