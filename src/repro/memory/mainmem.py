"""A flat, word-addressed main memory with fixed access latency."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.bitops import WORD_MASK


@dataclass
class MainMemory:
    """Sparse word-addressed backing store.

    Addresses are byte addresses that must be 4-aligned; uninitialized
    words read as zero.  ``latency`` is the additional cycles a cache
    miss pays to reach this memory.
    """

    latency: int = 10
    words: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError("latency must be non-negative")

    def _check(self, address: int) -> None:
        if address % 4 != 0:
            raise ValueError(f"unaligned address {address:#x}")
        if address < 0:
            raise ValueError(f"negative address {address:#x}")

    def read_word(self, address: int) -> int:
        """Read the word at *address* (zero if never written)."""
        self._check(address)
        return self.words.get(address, 0)

    def write_word(self, address: int, value: int) -> None:
        """Write *value* (masked to 32 bits) at *address*."""
        self._check(address)
        self.words[address] = value & WORD_MASK

    def load_image(self, image: dict[int, int]) -> None:
        """Bulk-load an address -> value image (e.g. a workload's data)."""
        for address, value in image.items():
            self.write_word(address, value)

    def snapshot(self) -> dict[int, int]:
        """A copy of all written words."""
        return dict(self.words)
