"""Experiment E16 — the paper's closing claim: the 1 cm chip.

"We believe that in a 0.1 micrometer CMOS technology, a hybrid
Ultrascalar with a window-size of 128 and 16 shared ALUs (with
floating-point) should fit easily within a chip 1 cm on a side."

We scale the calibrated 0.35 µm technology constants to 0.1 µm (a 3.5×
linear shrink), add back the space the paper's register-datapath-only
layouts left out (ALU sharing means only 16 ALU blocks instead of 128),
and check the resulting hybrid's side; then run the same configuration
behaviourally (window 128, Memo-2 pool of 16 ALUs) for its IPC.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.ultrascalar import IdealMemory, ProcessorConfig, make_hybrid
from repro.util.tables import Table
from repro.vlsi.hybrid_layout import HybridLayout
from repro.vlsi.tech import PAPER_TECH
from repro.workloads import random_ilp

#: 0.35 um -> 0.1 um linear shrink
SHRINK = 0.1 / 0.35

TECH_01UM = replace(
    PAPER_TECH,
    name="projected-0.1um",
    track_um=PAPER_TECH.track_um * SHRINK,
)


#: sweep points the runner executes and the cache keys (kwargs for
#: :func:`report`); the closing claim is one fixed design point
SWEEP_POINTS: list[dict] = [{}]


@dataclass
class OneCmResult:
    """The claim, checked."""

    side_cm: float
    area_cm2: float
    ipc: float
    cycles: int

    @property
    def fits_one_cm(self) -> bool:
        """'should fit easily within a chip 1 cm on a side'."""
        return self.side_cm <= 1.0


def run() -> OneCmResult:
    """Scale the layout and run the matching configuration."""
    layout = HybridLayout(
        n=128,
        cluster_size=32,
        num_registers=32,
        word_bits=32,
        tech=TECH_01UM,
    )
    side_cm = layout.tech.tracks_to_cm(layout.side_length())

    workload = random_ilp(600, 0.4, seed=701)
    config = ProcessorConfig(window_size=128, fetch_width=16, num_alus=16)
    processor = make_hybrid(
        workload.program, 32, config, memory=IdealMemory(),
        initial_registers=workload.registers_for(),
    )
    result = processor.run()
    return OneCmResult(
        side_cm=side_cm,
        area_cm2=side_cm**2,
        ipc=result.ipc,
        cycles=result.cycles,
    )


def report() -> str:
    """The closing-claim table."""
    outcome = run()
    table = Table(
        ["Quantity", "Paper claim", "Model"],
        title="E16 — 'a hybrid Ultrascalar with a window-size of 128 and 16 "
        "shared ALUs should fit easily within a chip 1 cm on a side' (0.1 um)",
    )
    table.add_row(["technology", "0.1 um CMOS", TECH_01UM.name])
    table.add_row(["window / ALUs", "128 / 16 shared", "128 / 16 (Memo-2 scheduler)"])
    table.add_row(["side (cm)", "<= 1", round(outcome.side_cm, 2)])
    table.add_row(["area (cm²)", "<= 1", round(outcome.area_cm2, 2)])
    table.add_row(["IPC (medium-ILP workload)", "—", round(outcome.ipc, 2)])
    return table.render()


if __name__ == "__main__":  # pragma: no cover
    print(report())
