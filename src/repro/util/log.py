"""Library logging: one ``repro`` logger hierarchy, silent by default.

Library code logs through :func:`get_logger`; nothing is printed unless
the application configures a handler — the root ``repro`` logger gets a
:class:`logging.NullHandler`, per stdlib library convention, so
importing :mod:`repro` never writes to a user's stderr.

The CLI entry points call :func:`setup_cli_logging`, which attaches a
message-only stderr handler (so CLI output stays byte-identical to the
pre-logging code) at a level taken from the ``REPRO_LOG`` environment
variable (``DEBUG``/``INFO``/``WARNING``/``ERROR``/``CRITICAL``,
default ``WARNING``).  ``REPRO_LOG=DEBUG python -m repro all`` shows
retry and cache decisions that are normally silent.
"""

from __future__ import annotations

import logging
import os
import sys

ROOT_LOGGER = "repro"

#: the environment variable that sets the CLI log level
ENV_VAR = "REPRO_LOG"

logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())


class _StderrHandler(logging.StreamHandler):
    """A stream handler that always writes to the *current* stderr.

    ``logging.StreamHandler`` captures ``sys.stderr`` at construction
    time; this variant looks it up per record, so output lands wherever
    stderr points now (pytest's capture, a redirected CLI, ...).
    """

    def __init__(self, level: int = logging.NOTSET) -> None:
        logging.Handler.__init__(self, level)

    @property
    def stream(self):
        return sys.stderr

    @stream.setter
    def stream(self, value) -> None:  # StreamHandler.setStream compatibility
        pass


def get_logger(name: str | None = None) -> logging.Logger:
    """The ``repro`` logger, or a child (``get_logger("runner")``)."""
    if name is None or name == ROOT_LOGGER:
        return logging.getLogger(ROOT_LOGGER)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def level_from_env(default: int = logging.WARNING) -> int:
    """The log level ``REPRO_LOG`` names, or *default* when unset/bad."""
    name = os.environ.get(ENV_VAR, "").strip().upper()
    if not name:
        return default
    level = logging.getLevelName(name)
    return level if isinstance(level, int) else default


def setup_cli_logging() -> None:
    """Attach the CLI's stderr handler (idempotent).

    The formatter is message-only: routed messages look exactly like
    the ``print(..., file=sys.stderr)`` calls they replaced.
    """
    root = logging.getLogger(ROOT_LOGGER)
    root.setLevel(level_from_env())
    if not any(isinstance(h, _StderrHandler) for h in root.handlers):
        handler = _StderrHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        root.addHandler(handler)
