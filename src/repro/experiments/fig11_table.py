"""Experiment E2 — the paper's Figure 11 comparison table.

Two halves:

1. Render the analytic table itself (all three M(n) regimes).
2. Validate the Θ-expressions against the *measured* layout model: fit
   growth exponents of side length / critical wire over n sweeps and
   compare with the closed forms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.asymptotics import evaluate_cell, figure11_table
from repro.analysis.fitting import fit_exponent
from repro.analysis.regimes import Regime
from repro.util.tables import Table
from repro.vlsi.grid_layout import Ultrascalar2Layout
from repro.vlsi.htree_layout import Ultrascalar1Layout
from repro.vlsi.hybrid_layout import HybridLayout


#: sweep points the runner executes and the cache keys (kwargs for
#: :func:`report`)
SWEEP_POINTS: list[dict] = [{"L": 32}]


@dataclass
class Fig11Validation:
    """Measured vs predicted wire-delay growth exponents (in n, L fixed)."""

    sizes: list[int]
    L: int
    us1_exponent: float
    us2_exponent: float
    hybrid_exponent: float

    @property
    def predictions(self) -> dict[str, float]:
        """The paper's Case-1 exponents in n: 0.5 / 1.0 / 0.5."""
        return {"ultrascalar1": 0.5, "ultrascalar2": 1.0, "hybrid": 0.5}


def validate(sizes: list[int] | None = None, L: int = 32) -> Fig11Validation:
    """Fit measured wire-delay exponents at fixed L (Case 1: M = 0).

    Exponents are fitted on the tail of the sweep: the Θ-bounds are
    asymptotic, and at small n the US-II station logic (a √n term) still
    contributes to the Θ(n + L) datapath side.
    """
    sizes = sizes or [4**k for k in range(3, 11)]  # 64 .. ~1M
    tail = sizes[-4:]
    us1 = [Ultrascalar1Layout(n, L).critical_wire for n in tail]
    us2 = [Ultrascalar2Layout(n, L, variant="linear").critical_wire for n in tail]
    hybrid = [HybridLayout(n, L, L).critical_wire for n in tail]
    return Fig11Validation(
        sizes=sizes,
        L=L,
        us1_exponent=fit_exponent(tail, us1),
        us2_exponent=fit_exponent(tail, us2),
        hybrid_exponent=fit_exponent(tail, hybrid),
    )


def report(sizes: list[int] | None = None, L: int = 32) -> str:
    """All three Figure 11 regime tables plus the measured validation."""
    blocks = [figure11_table(regime).render() for regime in Regime]
    validation = validate(sizes, L)
    table = Table(
        ["Processor", "Measured wire exponent (in n)", "Paper (Case 1)"],
        title=f"E2 — measured layout-model growth at L={validation.L}, M=0",
    )
    table.add_row(["Ultrascalar I", round(validation.us1_exponent, 3), "0.5  (Θ(√n L))"])
    table.add_row(["Ultrascalar II", round(validation.us2_exponent, 3), "1.0  (Θ(n + L))"])
    table.add_row(["Hybrid (C=L)", round(validation.hybrid_exponent, 3), "0.5  (Θ(√(n L)))"])
    return "\n\n".join(blocks + [table.render()])


def example_values(n: int = 4096, L: int = 32) -> Table:
    """Evaluate every Figure 11 cell at a concrete design point."""
    table = Table(
        ["Regime", "Processor", "Gate", "Wire", "Total", "Area"],
        title=f"Figure 11 evaluated at n={n}, L={L} (M(n)=n^e per regime)",
    )
    m_for = {Regime.CASE1: 1.0, Regime.CASE2: n**0.5, Regime.CASE3: n**0.75}
    for regime in Regime:
        for processor in ("ultrascalar1", "ultrascalar2-linear", "ultrascalar2-log", "hybrid"):
            m = m_for[regime]
            table.add_row(
                [
                    regime.value,
                    processor,
                    round(evaluate_cell(regime, processor, "gate_delay", n, L, m), 1),
                    round(evaluate_cell(regime, processor, "wire_delay", n, L, m), 1),
                    round(evaluate_cell(regime, processor, "total_delay", n, L, m), 1),
                    round(evaluate_cell(regime, processor, "area", n, L, m), 1),
                ]
            )
    return table


if __name__ == "__main__":  # pragma: no cover
    print(report())
    print()
    print(example_values().render())
