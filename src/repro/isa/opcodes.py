"""Opcode definitions and static per-opcode metadata.

Every opcode is classified into an :class:`OpClass`, which determines its
functional-unit latency class, and carries a *format* describing which
operand fields it uses.  The ISA obeys the paper's constraint that each
instruction reads at most two registers and writes at most one.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OpClass(enum.Enum):
    """Functional classes; the latency model assigns cycles per class."""

    ALU = "alu"            # single-cycle integer ops
    MUL = "mul"            # multiply
    DIV = "div"            # divide / remainder
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"      # conditional branches
    JUMP = "jump"          # unconditional control transfer
    SYSTEM = "system"      # halt, nop


class Format(enum.Enum):
    """Operand format of an opcode (which Instruction fields are used)."""

    R3 = "r3"        # rd, rs1, rs2          e.g. add rd, rs1, rs2
    R2 = "r2"        # rd, rs1               e.g. mov rd, rs1 / not rd, rs1
    I2 = "i2"        # rd, rs1, imm          e.g. addi rd, rs1, imm
    I1 = "i1"        # rd, imm               e.g. li rd, imm
    MEM = "mem"      # rd/rs2, imm(rs1)      loads and stores
    B2 = "b2"        # rs1, rs2, target      conditional branches
    J = "j"          # target                jumps
    NONE = "none"    # halt, nop


@dataclass(frozen=True)
class OpInfo:
    """Static metadata for one opcode."""

    mnemonic: str
    op_class: OpClass
    fmt: Format
    #: fixed numeric code used by the binary encoding (6 bits)
    code: int


class Opcode(enum.Enum):
    """The full opcode set of the reproduced RISC ISA."""

    # Three-register ALU ops
    ADD = OpInfo("add", OpClass.ALU, Format.R3, 0)
    SUB = OpInfo("sub", OpClass.ALU, Format.R3, 1)
    AND = OpInfo("and", OpClass.ALU, Format.R3, 2)
    OR = OpInfo("or", OpClass.ALU, Format.R3, 3)
    XOR = OpInfo("xor", OpClass.ALU, Format.R3, 4)
    SLL = OpInfo("sll", OpClass.ALU, Format.R3, 5)
    SRL = OpInfo("srl", OpClass.ALU, Format.R3, 6)
    SRA = OpInfo("sra", OpClass.ALU, Format.R3, 7)
    SLT = OpInfo("slt", OpClass.ALU, Format.R3, 8)
    SLTU = OpInfo("sltu", OpClass.ALU, Format.R3, 9)
    MUL = OpInfo("mul", OpClass.MUL, Format.R3, 10)
    DIV = OpInfo("div", OpClass.DIV, Format.R3, 11)
    REM = OpInfo("rem", OpClass.DIV, Format.R3, 12)

    # Two-register ops
    MOV = OpInfo("mov", OpClass.ALU, Format.R2, 13)
    NOT = OpInfo("not", OpClass.ALU, Format.R2, 14)
    NEG = OpInfo("neg", OpClass.ALU, Format.R2, 15)

    # Immediate ALU ops
    ADDI = OpInfo("addi", OpClass.ALU, Format.I2, 16)
    ANDI = OpInfo("andi", OpClass.ALU, Format.I2, 17)
    ORI = OpInfo("ori", OpClass.ALU, Format.I2, 18)
    XORI = OpInfo("xori", OpClass.ALU, Format.I2, 19)
    SLLI = OpInfo("slli", OpClass.ALU, Format.I2, 20)
    SRLI = OpInfo("srli", OpClass.ALU, Format.I2, 21)
    SLTI = OpInfo("slti", OpClass.ALU, Format.I2, 22)
    MULI = OpInfo("muli", OpClass.MUL, Format.I2, 23)

    # Register loads of immediates
    LI = OpInfo("li", OpClass.ALU, Format.I1, 24)
    LUI = OpInfo("lui", OpClass.ALU, Format.I1, 25)

    # Memory
    LW = OpInfo("lw", OpClass.LOAD, Format.MEM, 26)
    SW = OpInfo("sw", OpClass.STORE, Format.MEM, 27)

    # Control flow
    BEQ = OpInfo("beq", OpClass.BRANCH, Format.B2, 28)
    BNE = OpInfo("bne", OpClass.BRANCH, Format.B2, 29)
    BLT = OpInfo("blt", OpClass.BRANCH, Format.B2, 30)
    BGE = OpInfo("bge", OpClass.BRANCH, Format.B2, 31)
    BLTU = OpInfo("bltu", OpClass.BRANCH, Format.B2, 32)
    BGEU = OpInfo("bgeu", OpClass.BRANCH, Format.B2, 33)
    J = OpInfo("j", OpClass.JUMP, Format.J, 34)

    # System
    NOP = OpInfo("nop", OpClass.SYSTEM, Format.NONE, 35)
    HALT = OpInfo("halt", OpClass.SYSTEM, Format.NONE, 36)

    @property
    def info(self) -> OpInfo:
        """The static metadata record for this opcode."""
        return self.value

    @property
    def mnemonic(self) -> str:
        """Assembly mnemonic, e.g. ``"add"``."""
        return self.value.mnemonic

    @property
    def op_class(self) -> OpClass:
        """Latency class of this opcode."""
        return self.value.op_class

    @property
    def fmt(self) -> Format:
        """Operand format of this opcode."""
        return self.value.fmt

    @property
    def code(self) -> int:
        """Numeric code used by the binary encoding."""
        return self.value.code


#: mnemonic -> Opcode lookup used by the assembler
MNEMONICS: dict[str, Opcode] = {op.mnemonic: op for op in Opcode}

#: numeric code -> Opcode lookup used by the decoder
CODES: dict[int, Opcode] = {op.code: op for op in Opcode}

# The encoding reserves 6 bits for the opcode.
assert all(0 <= op.code < 64 for op in Opcode)
assert len(CODES) == len(list(Opcode)), "duplicate opcode codes"
