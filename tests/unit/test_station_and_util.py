"""Unit tests for the Station dataclass and the util helpers."""

import numpy as np
import pytest

from repro.frontend.fetch import FetchedInstruction
from repro.isa import Instruction, Opcode
from repro.ultrascalar.station import Station, StationState
from repro.util.rng import make_rng
from repro.util.tables import Table, format_float, format_ratio


def fetched(op=Opcode.ADD):
    if op is Opcode.ADD:
        inst = Instruction(op, rd=1, rs1=2, rs2=3)
    else:
        inst = Instruction(op)
    return FetchedInstruction(0, inst, None, 1)


class TestStation:
    def test_starts_empty(self):
        station = Station(0)
        assert not station.occupied
        assert not station.done
        assert station.writes_register is None

    def test_load_fills(self):
        station = Station(3)
        station.load(fetched(), seq=7, cycle=5)
        assert station.occupied
        assert station.state is StationState.WAITING
        assert station.seq == 7
        assert station.fetch_cycle == 5
        assert station.writes_register == 1

    def test_clear_resets_everything(self):
        station = Station(0)
        station.load(fetched(), 1, 1)
        station.result = 9
        station.committed = True
        station.clear()
        assert not station.occupied
        assert station.result is None
        assert not station.committed
        assert station.seq == -1

    def test_no_write_register_for_nop(self):
        station = Station(0)
        station.load(fetched(Opcode.NOP), 0, 0)
        assert station.writes_register is None

    def test_done_property(self):
        station = Station(0)
        station.load(fetched(), 0, 0)
        station.state = StationState.DONE
        assert station.done


class TestRng:
    def test_default_seed_is_deterministic(self):
        assert make_rng().integers(0, 1000) == make_rng().integers(0, 1000)

    def test_explicit_seed(self):
        a = make_rng(42).random(3)
        b = make_rng(42).random(3)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        assert make_rng(1).integers(0, 1 << 30) != make_rng(2).integers(0, 1 << 30)


class TestTables:
    def test_basic_render(self):
        table = Table(["a", "b"], title="t")
        table.add_row([1, 2])
        text = table.render()
        assert "t" in text and "a" in text and "1" in text

    def test_first_column_left_rest_right(self):
        table = Table(["name", "value"])
        table.add_row(["x", 1])
        table.add_row(["longer", 22])
        lines = table.render().splitlines()
        assert lines[-1].startswith("longer")
        assert lines[-1].rstrip().endswith("22")

    def test_row_width_checked(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_floats_formatted(self):
        table = Table(["a"])
        table.add_row([3.14159])
        assert "3.14" in table.render()

    def test_format_float_ranges(self):
        assert format_float(0) == "0"
        assert "e" in format_float(1.5e12)
        assert "e" in format_float(1.5e-7)
        assert format_float(12.5) == "12.5"

    def test_format_ratio(self):
        assert format_ratio(11.45) == "11.4x"
