"""Unit tests for branch predictors and the fetch unit."""

import pytest

from repro.frontend.branch_predictor import (
    AlwaysNotTaken,
    AlwaysTaken,
    BackwardTaken,
    BimodalPredictor,
    GSharePredictor,
    PerfectPredictor,
)
from repro.frontend.fetch import FetchUnit
from repro.isa import Instruction, Opcode, assemble, run_program
from repro.memory.trace_cache import TraceCache


BRANCH = Instruction(Opcode.BEQ, rs1=0, rs2=1, target=0)


class TestStaticPredictors:
    def test_always_taken(self):
        assert AlwaysTaken().predict(5, BRANCH) is True

    def test_always_not_taken(self):
        assert AlwaysNotTaken().predict(5, BRANCH) is False

    def test_backward_taken(self):
        backward = Instruction(Opcode.BNE, rs1=0, rs2=1, target=2)
        forward = Instruction(Opcode.BNE, rs1=0, rs2=1, target=9)
        predictor = BackwardTaken()
        assert predictor.predict(5, backward) is True
        assert predictor.predict(5, forward) is False


class TestBimodal:
    def test_starts_weakly_not_taken(self):
        assert BimodalPredictor().predict(3, BRANCH) is False

    def test_learns_taken(self):
        predictor = BimodalPredictor()
        predictor.update(3, True)
        assert predictor.predict(3, BRANCH) is True

    def test_hysteresis(self):
        predictor = BimodalPredictor()
        for _ in range(4):
            predictor.update(3, True)  # saturate at 3
        predictor.update(3, False)     # one not-taken
        assert predictor.predict(3, BRANCH) is True  # still predicts taken

    def test_counters_saturate(self):
        predictor = BimodalPredictor(size=4)
        for _ in range(10):
            predictor.update(0, False)
        assert predictor.counters[0] == 0
        for _ in range(10):
            predictor.update(0, True)
        assert predictor.counters[0] == 3

    def test_reset(self):
        predictor = BimodalPredictor()
        predictor.update(3, True)
        predictor.update(3, True)
        predictor.reset()
        assert predictor.predict(3, BRANCH) is False

    def test_validation(self):
        with pytest.raises(ValueError):
            BimodalPredictor(size=0)


class TestGShare:
    def test_history_differentiates_contexts(self):
        predictor = GSharePredictor(size=64, history_bits=4)
        # alternating pattern at one PC: plain bimodal would stay confused,
        # gshare separates the two history contexts
        for _ in range(20):
            taken = predictor.history & 1 == 0
            predictor.update(8, taken)
        # after training, prediction should follow the alternation
        correct = 0
        for _ in range(10):
            want = predictor.history & 1 == 0
            if predictor.predict(8, BRANCH) == want:
                correct += 1
            predictor.update(8, want)
        assert correct >= 8

    def test_validation(self):
        with pytest.raises(ValueError):
            GSharePredictor(size=100)  # not a power of two
        with pytest.raises(ValueError):
            GSharePredictor(history_bits=31)

    def test_reset(self):
        predictor = GSharePredictor()
        predictor.update(0, True)
        predictor.reset()
        assert predictor.history == 0


class TestPerfectPredictor:
    def test_replays_trace_outcomes(self):
        program = assemble(
            """
            li r1, 3
          loop:
            addi r1, r1, -1
            bne r1, r0, loop
            halt
            """
        )
        golden = run_program(program)
        oracle = PerfectPredictor.from_trace(golden.trace)
        branch_pc = 2
        inst = program[branch_pc]
        # outcomes: taken, taken, not taken
        assert oracle.predict(branch_pc, inst) is True
        oracle.update(branch_pc, True)
        assert oracle.predict(branch_pc, inst) is True
        oracle.update(branch_pc, True)
        assert oracle.predict(branch_pc, inst) is False

    def test_unknown_pc_predicts_not_taken(self):
        oracle = PerfectPredictor({})
        assert oracle.predict(99, BRANCH) is False

    def test_exhausted_outcomes_repeat_last(self):
        oracle = PerfectPredictor({0: [True]})
        oracle.update(0, True)
        assert oracle.predict(0, BRANCH) is True

    def test_reset(self):
        oracle = PerfectPredictor({0: [True, False]})
        oracle.update(0, True)
        oracle.reset()
        assert oracle.predict(0, BRANCH) is True


class TestFetchUnit:
    def make(self, source, width=4, trace_cache=None, predictor=None):
        program = assemble(source)
        return program, FetchUnit(
            program, predictor or AlwaysNotTaken(), width=width, trace_cache=trace_cache
        )

    def test_straight_line_fetch(self):
        _, fetch = self.make("nop\nnop\nnop\nnop\nnop\nhalt", width=4)
        first = fetch.fetch_cycle()
        assert [f.static_index for f in first] == [0, 1, 2, 3]
        second = fetch.fetch_cycle()
        assert [f.static_index for f in second] == [4, 5]
        assert fetch.stalled()  # HALT stops fetch

    def test_budget_limits_delivery(self):
        _, fetch = self.make("nop\nnop\nnop\nhalt", width=4)
        assert len(fetch.fetch_cycle(budget=2)) == 2
        assert fetch.fetch_cycle(budget=0) == []
        nxt = fetch.fetch_cycle()
        assert nxt[0].static_index == 2

    def test_taken_branch_ends_fetch_group(self):
        _, fetch = self.make("nop\nj target\nnop\ntarget: halt", width=4)
        group = fetch.fetch_cycle()
        assert [f.static_index for f in group] == [0, 1]
        group2 = fetch.fetch_cycle()
        assert [f.static_index for f in group2] == [3]

    def test_not_taken_branch_does_not_end_group(self):
        _, fetch = self.make("beq r0, r1, @3\nnop\nnop\nhalt", width=4)
        group = fetch.fetch_cycle()
        assert [f.static_index for f in group] == [0, 1, 2, 3]

    def test_predicted_taken_follows_target(self):
        _, fetch = self.make(
            "beq r0, r0, target\nnop\ntarget: halt", predictor=AlwaysTaken()
        )
        group = fetch.fetch_cycle()
        assert [f.static_index for f in group] == [0]
        assert group[0].predicted_next == 2
        group2 = fetch.fetch_cycle()
        assert [f.static_index for f in group2] == [2]

    def test_redirect(self):
        _, fetch = self.make("nop\nnop\nnop\nhalt")
        fetch.fetch_cycle()
        fetch.redirect(1)
        assert fetch.pc == 1
        assert fetch.fetch_cycle()[0].static_index == 1

    def test_redirect_out_of_range_stalls(self):
        _, fetch = self.make("nop\nhalt")
        fetch.redirect(99)
        assert fetch.stalled()

    def test_empty_program_is_stalled(self):
        program = assemble("")
        fetch = FetchUnit(program, AlwaysNotTaken())
        assert fetch.stalled()
        assert fetch.fetch_cycle() == []

    def test_width_validation(self):
        program = assemble("nop")
        with pytest.raises(ValueError):
            FetchUnit(program, AlwaysNotTaken(), width=0)


class TestFetchWithTraceCache:
    SOURCE = """
        nop
        j mid
        nop
      mid:
        nop
        j end
        nop
      end:
        halt
    """

    def test_first_pass_misses_then_hits(self):
        tc = TraceCache(num_sets=64, trace_length=8, max_branches=2)
        program = assemble(self.SOURCE)
        fetch = FetchUnit(program, AlwaysNotTaken(), width=8, trace_cache=tc)
        first = fetch.fetch_cycle()
        # conventional fetch: stops at the taken jump
        assert [f.static_index for f in first] == [0, 1]
        assert tc.stats.misses >= 1
        # rerun from the start: the filled trace crosses both jumps
        fetch.redirect(0)
        again = fetch.fetch_cycle()
        assert [f.static_index for f in again] == [0, 1, 3, 4, 6]
        assert tc.stats.hits >= 1

    def test_trace_fetch_raises_fetch_bandwidth(self):
        tc = TraceCache(num_sets=64, trace_length=8, max_branches=2)
        program = assemble(self.SOURCE)
        with_tc = FetchUnit(program, AlwaysNotTaken(), width=8, trace_cache=tc)
        without = FetchUnit(program, AlwaysNotTaken(), width=8)

        def cycles_to_fetch_all(fetch):
            count = 0
            for _ in range(20):
                if fetch.stalled():
                    break
                fetch.fetch_cycle()
                count += 1
            return count

        cold = cycles_to_fetch_all(with_tc)
        with_tc.redirect(0)
        warm = cycles_to_fetch_all(with_tc)
        conventional = cycles_to_fetch_all(without)
        assert warm < conventional
        assert warm < cold
