"""Legacy setup shim.

The execution environment has setuptools but no ``wheel`` package, so
PEP-660 editable installs fail with "invalid command 'bdist_wheel'".
This shim lets ``pip install -e . --no-build-isolation --no-use-pep517``
(and plain ``python setup.py develop``) work offline.
"""

from setuptools import setup

setup()
