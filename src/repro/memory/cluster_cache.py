"""A data cache distributed among the clusters (Section 7).

"One way to reduce the bandwidth requirements may be to use a cache
distributed among the clusters ... With the right caching and renaming
protocols, it is conceivable that a processor could require
substantially reduced memory bandwidth, resulting in dramatically
reduced chip complexity."

Model: each cluster of stations owns a small private direct-mapped
cache.  Loads that hit locally never enter the fat-tree; misses pay the
shared-memory latency and fill the local cache.  Stores write through
to the shared memory and invalidate every other cluster's copy (the
simplest correct protocol — the Ultrascalar's global load/store
ordering already serializes conflicting accesses, so write-through +
broadcast-invalidate preserves the golden semantics).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.bitops import WORD_MASK


@dataclass
class ClusterCacheStats:
    """Traffic accounting for the bandwidth-reduction experiment."""

    local_hits: int = 0
    shared_accesses: int = 0
    invalidations: int = 0

    @property
    def total(self) -> int:
        """All memory operations observed."""
        return self.local_hits + self.shared_accesses

    @property
    def bandwidth_saved(self) -> float:
        """Fraction of operations that never reached the shared memory."""
        return self.local_hits / self.total if self.total else 0.0

    def counters(self) -> dict[str, int]:
        """The stats as telemetry counters (``mem.cluster.*`` namespace)."""
        return {
            "mem.cluster.local_hits": self.local_hits,
            "mem.cluster.shared_accesses": self.shared_accesses,
            "mem.cluster.invalidations": self.invalidations,
        }


@dataclass
class ClusteredMemory:
    """Per-cluster caches in front of a flat shared memory.

    Implements the :class:`repro.ultrascalar.memsys.MemorySystem`
    protocol.  ``leaf // cluster_size`` selects the requester's cluster.

    Args:
        cluster_size: stations per cluster (the hybrid's C).
        words_per_cluster: capacity of each private cache, in words.
        local_latency: cycles for a local hit.
        shared_latency: cycles for any access that reaches shared memory.
    """

    cluster_size: int = 8
    words_per_cluster: int = 64
    local_latency: int = 1
    shared_latency: int = 6
    words: dict[int, int] = field(default_factory=dict)
    stats: ClusterCacheStats = field(default_factory=ClusterCacheStats)
    _caches: dict[int, dict[int, int]] = field(default_factory=dict)
    _next_id: int = 0
    _in_flight: list[tuple[int, int, bool, int]] = field(default_factory=list)
    # (request_id, remaining cycles, is_store, value)

    def __post_init__(self) -> None:
        if self.cluster_size < 1:
            raise ValueError("cluster_size must be positive")
        if self.words_per_cluster < 1:
            raise ValueError("words_per_cluster must be positive")
        if self.local_latency < 1 or self.shared_latency < 1:
            raise ValueError("latencies must be >= 1")

    def _check(self, address: int) -> None:
        if address % 4 != 0:
            raise ValueError(f"unaligned address {address:#x}")

    def _cluster_of(self, leaf: int) -> int:
        return max(0, leaf) // self.cluster_size

    def _cache(self, cluster: int) -> dict[int, int]:
        return self._caches.setdefault(cluster, {})

    def _fill(self, cluster: int, address: int, value: int) -> None:
        cache = self._cache(cluster)
        if address not in cache and len(cache) >= self.words_per_cluster:
            cache.pop(next(iter(cache)))  # FIFO eviction
        cache[address] = value

    def submit_load(self, address: int, leaf: int = 0) -> int:
        self._check(address)
        request_id = self._next_id
        self._next_id += 1
        cluster = self._cluster_of(leaf)
        cache = self._cache(cluster)
        if address in cache:
            self.stats.local_hits += 1
            self._in_flight.append((request_id, self.local_latency, False, cache[address]))
        else:
            self.stats.shared_accesses += 1
            value = self.words.get(address, 0)
            self._fill(cluster, address, value)
            self._in_flight.append((request_id, self.shared_latency, False, value))
        return request_id

    def submit_store(self, address: int, value: int, leaf: int = 0) -> int:
        self._check(address)
        request_id = self._next_id
        self._next_id += 1
        value &= WORD_MASK
        self.words[address] = value  # write-through
        self.stats.shared_accesses += 1
        owner = self._cluster_of(leaf)
        for cluster, cache in self._caches.items():
            if cluster != owner and address in cache:
                del cache[address]  # broadcast invalidate
                self.stats.invalidations += 1
        self._fill(owner, address, value)
        self._in_flight.append((request_id, self.shared_latency, True, value))
        return request_id

    def tick(self) -> dict[int, int | None]:
        completed: dict[int, int | None] = {}
        remaining = []
        for request_id, cycles, is_store, value in self._in_flight:
            if cycles <= 1:
                completed[request_id] = None if is_store else value
            else:
                remaining.append((request_id, cycles - 1, is_store, value))
        self._in_flight = remaining
        return completed

    def peek_word(self, address: int) -> int:
        return self.words.get(address, 0)

    def load_image(self, image: dict[int, int]) -> None:
        for address, value in image.items():
            self._check(address)
            self.words[address] = value & WORD_MASK

    def final_state(self) -> dict[int, int]:
        return dict(self.words)

    def counters(self) -> dict[str, int]:
        counters = {"mem.requests": self._next_id}
        counters.update(self.stats.counters())
        return counters
