"""Unit tests for the memory subsystem (main memory, caches)."""

import pytest

from repro.memory.interleaved_cache import InterleavedCache, MemoryRequest
from repro.memory.mainmem import MainMemory
from repro.memory.trace_cache import TraceCache
from repro.network.fattree import FatTree, bandwidth_constant


class TestMainMemory:
    def test_uninitialized_reads_zero(self):
        assert MainMemory().read_word(100) == 0

    def test_write_read_roundtrip(self):
        mem = MainMemory()
        mem.write_word(8, 1234)
        assert mem.read_word(8) == 1234

    def test_values_masked_to_32_bits(self):
        mem = MainMemory()
        mem.write_word(0, 1 << 35 | 7)
        assert mem.read_word(0) == 7

    def test_unaligned_rejected(self):
        mem = MainMemory()
        with pytest.raises(ValueError):
            mem.read_word(2)
        with pytest.raises(ValueError):
            mem.write_word(5, 0)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            MainMemory().read_word(-4)

    def test_load_image_and_snapshot(self):
        mem = MainMemory()
        mem.load_image({0: 1, 4: 2})
        assert mem.snapshot() == {0: 1, 4: 2}

    def test_latency_validation(self):
        with pytest.raises(ValueError):
            MainMemory(latency=-1)


def make_cache(**kwargs):
    defaults = dict(banks=4, lines_per_bank=8, words_per_line=2, hit_latency=1)
    defaults.update(kwargs)
    return InterleavedCache(**defaults)


class TestInterleavedCacheBasics:
    def test_store_then_load_roundtrip(self):
        cache = make_cache()
        cache.submit(MemoryRequest(0, address=8, is_store=True, value=77))
        cache.drain()
        load = MemoryRequest(1, address=8, is_store=False)
        cache.submit(load)
        cache.drain()
        assert load.result == 77

    def test_load_from_backing_memory(self):
        cache = make_cache()
        cache.memory.write_word(100, 42)
        load = MemoryRequest(0, address=100, is_store=False)
        cache.submit(load)
        cache.drain()
        assert load.result == 42
        assert cache.stats.misses == 1

    def test_second_access_hits(self):
        cache = make_cache()
        for rid in range(2):
            req = MemoryRequest(rid, address=16, is_store=False)
            cache.submit(req)
            cache.drain()
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_line_fill_brings_neighbours(self):
        cache = make_cache(banks=1, words_per_line=4)
        cache.memory.load_image({0: 1, 4: 2, 8: 3, 12: 4})
        first = MemoryRequest(0, address=0, is_store=False)
        cache.submit(first)
        cache.drain()
        second = MemoryRequest(1, address=8, is_store=False)
        cache.submit(second)
        cache.drain()
        assert second.result == 3
        assert cache.stats.hits == 1  # same line

    def test_bank_interleaving(self):
        cache = make_cache(banks=4)
        assert cache.bank_of(0) == 0
        assert cache.bank_of(4) == 1
        assert cache.bank_of(8) == 2
        assert cache.bank_of(16) == 0

    def test_unaligned_rejected(self):
        with pytest.raises(ValueError):
            make_cache().submit(MemoryRequest(0, address=3, is_store=False))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            make_cache(banks=3)
        with pytest.raises(ValueError):
            make_cache(words_per_line=3)
        with pytest.raises(ValueError):
            make_cache(lines_per_bank=0)
        with pytest.raises(ValueError):
            make_cache(hit_latency=0)


class TestInterleavedCacheTiming:
    def test_hit_latency(self):
        cache = make_cache(hit_latency=2)
        warm = MemoryRequest(0, address=0, is_store=True, value=5)
        cache.submit(warm)
        cache.drain()
        start = cache.cycle
        load = MemoryRequest(1, address=0, is_store=False)
        cache.submit(load)
        done = cache.drain()
        assert done and done[0].request_id == 1
        assert cache.cycle - start == 2

    def test_miss_pays_memory_latency(self):
        cache = make_cache(hit_latency=1)
        cache.memory.latency = 5
        start = cache.cycle
        load = MemoryRequest(0, address=0, is_store=False)
        cache.submit(load)
        cache.drain()
        assert cache.cycle - start == 6

    def test_bank_conflicts_serialize(self):
        # two requests to the same bank take twice as long as to two banks
        same = make_cache(hit_latency=1)
        same.memory.latency = 0
        for rid, addr in enumerate([0, 16]):  # both bank 0
            same.submit(MemoryRequest(rid, address=addr, is_store=True, value=1))
        same.drain()
        spread = make_cache(hit_latency=1)
        spread.memory.latency = 0
        for rid, addr in enumerate([0, 4]):  # banks 0 and 1
            spread.submit(MemoryRequest(rid, address=addr, is_store=True, value=1))
        spread.drain()
        assert same.cycle > spread.cycle

    def test_fat_tree_throttles_admission(self):
        tree = FatTree(4, bandwidth_constant(1.0), radix=4)
        cache = make_cache(fat_tree=tree)
        cache.memory.latency = 0
        for rid in range(4):
            cache.submit(MemoryRequest(rid, address=4 * rid, is_store=True, value=rid, leaf=rid))
        cache.drain()
        assert cache.stats.network_denied_cycles > 0


class TestWriteback:
    def test_dirty_eviction_reaches_memory(self):
        cache = make_cache(banks=1, lines_per_bank=1, words_per_line=1)
        cache.submit(MemoryRequest(0, address=0, is_store=True, value=11))
        cache.drain()
        # address 4 maps to the same (only) line in bank 0 -> evicts
        cache.submit(MemoryRequest(1, address=4, is_store=True, value=22))
        cache.drain()
        assert cache.memory.read_word(0) == 11
        assert cache.stats.writebacks == 1

    def test_flush_writes_all_dirty_lines(self):
        cache = make_cache()
        cache.submit(MemoryRequest(0, address=8, is_store=True, value=3))
        cache.drain()
        assert cache.memory.read_word(8) == 0
        cache.flush()
        assert cache.memory.read_word(8) == 3


class TestTraceCache:
    def test_miss_then_hit(self):
        tc = TraceCache(num_sets=16)
        assert tc.lookup(0, (True,)) is None
        tc.fill(0, (True,), (0, 1, 2, 7))
        assert tc.lookup(0, (True,)) == (0, 1, 2, 7)
        assert tc.stats.hits == 1 and tc.stats.misses == 1

    def test_outcome_mismatch_misses(self):
        tc = TraceCache()
        tc.fill(0, (True, False), (0, 1, 5))
        assert tc.lookup(0, (True, True)) is None

    def test_prefix_match_hits(self):
        tc = TraceCache()
        tc.fill(0, (True,), (0, 5))
        assert tc.lookup(0, (True, False)) == (0, 5)

    def test_set_conflict_evicts(self):
        tc = TraceCache(num_sets=1)
        tc.fill(0, (), (0,))
        tc.fill(7, (), (7,))
        assert tc.lookup(0, ()) is None
        assert tc.lookup(7, ()) == (7,)

    def test_fill_limits_enforced(self):
        tc = TraceCache(trace_length=2, max_branches=1)
        with pytest.raises(ValueError):
            tc.fill(0, (), (0, 1, 2))
        with pytest.raises(ValueError):
            tc.fill(0, (True, True), (0, 1))

    def test_invalidate(self):
        tc = TraceCache()
        tc.fill(0, (), (0,))
        tc.invalidate()
        assert tc.lookup(0, ()) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceCache(num_sets=0)
        with pytest.raises(ValueError):
            TraceCache(trace_length=0)
        with pytest.raises(ValueError):
            TraceCache(max_branches=-1)
