"""Fat-tree networks with a cycle-level contention model.

"We propose to connect the Ultrascalar I datapath to an interleaved
data cache and to an instruction trace cache via two fat-tree or
butterfly networks.  This allows one to choose how much bandwidth to
implement by adjusting the fatness of the trees."  (Section 2.)

A :class:`FatTree` over ``n`` leaves assigns each subtree of size ``s``
an uplink capacity ``ceil(M(s))`` for a user-supplied bandwidth
function ``M``; :meth:`FatTree.admit` performs the per-cycle admission:
given competing leaf requests it grants the oldest ones subject to
every uplink capacity on the leaf-to-root path.  The memory system uses
this to throttle loads/stores to the paper's ``M(n)`` memory-bandwidth
envelope.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence


@dataclass(frozen=True)
class FatTreeRouting:
    """Result of one admission round."""

    #: indices (into the request list) granted this cycle, in priority order
    granted: tuple[int, ...]
    #: indices denied because some uplink on their path was saturated
    denied: tuple[int, ...]


class FatTree:
    """A fat-tree over ``n`` leaves with per-subtree uplink capacities.

    Args:
        n: number of leaves (execution stations); must be >= 1.
        bandwidth: the paper's ``M``: subtree size -> words per cycle.
            Evaluated per level; capacities are ``max(1, ceil(M(s)))``
            so that the tree is always connected.
        radix: tree arity (4 matches the H-tree floorplan).
    """

    def __init__(self, n: int, bandwidth: Callable[[int], float], radix: int = 4):
        if n < 1:
            raise ValueError("need at least one leaf")
        if radix < 2:
            raise ValueError("radix must be >= 2")
        self.n = n
        self.radix = radix
        self.bandwidth = bandwidth
        # levels[k] = capacity of an uplink out of a subtree of radix**k leaves
        self.num_levels = max(1, math.ceil(math.log(n, radix))) if n > 1 else 1
        self.level_capacity: list[int] = []
        for k in range(self.num_levels):
            subtree = min(n, radix**(k + 1))
            self.level_capacity.append(max(1, math.ceil(bandwidth(subtree))))

    def root_capacity(self) -> int:
        """Words per cycle through the root — the chip's memory bandwidth M(n)."""
        return max(1, math.ceil(self.bandwidth(self.n)))

    def path_groups(self, leaf: int) -> list[tuple[int, int]]:
        """The (level, group) uplinks leaf *leaf* uses to reach the root."""
        if not 0 <= leaf < self.n:
            raise ValueError("leaf index out of range")
        groups = []
        group = leaf
        for level in range(self.num_levels):
            group //= self.radix
            groups.append((level, group))
        return groups

    def admit(self, leaves: Sequence[int]) -> FatTreeRouting:
        """Admit one cycle of requests, oldest (listed first) priority.

        *leaves* lists the requesting leaf per request.  Returns which
        request indices are granted/denied this cycle.  Requests denied
        here retry on a later cycle (the caller keeps its own queue).
        """
        used: dict[tuple[int, int], int] = {}
        granted: list[int] = []
        denied: list[int] = []
        for index, leaf in enumerate(leaves):
            path = self.path_groups(leaf)
            if all(
                used.get(edge, 0) < self.level_capacity[edge[0]] for edge in path
            ):
                for edge in path:
                    used[edge] = used.get(edge, 0) + 1
                granted.append(index)
            else:
                denied.append(index)
        return FatTreeRouting(granted=tuple(granted), denied=tuple(denied))

    def wire_count_at_level(self, level: int, word_bits: int) -> int:
        """Physical wires on one uplink at *level* (capacity x word width)."""
        if not 0 <= level < self.num_levels:
            raise ValueError("level out of range")
        return self.level_capacity[level] * word_bits


# -- canonical bandwidth functions (the paper's three regimes) -------------


def bandwidth_constant(total: float = 1.0) -> Callable[[int], float]:
    """M(n) = Θ(1): Case 1 (sublinear, below sqrt)."""
    return lambda s: total


def bandwidth_power(exponent: float, scale: float = 1.0) -> Callable[[int], float]:
    """M(n) = scale * n**exponent; exponent selects the paper's case:

    * exponent < 0.5  -> Case 1,  X(n) = Θ(sqrt(n) L)
    * exponent == 0.5 -> Case 2,  X(n) = Θ(sqrt(n) (L + log n))
    * exponent > 0.5  -> Case 3,  X(n) = Θ(sqrt(n) L + M(n))
    """
    return lambda s: scale * float(s) ** exponent


def bandwidth_linear(per_instruction: float = 1.0) -> Callable[[int], float]:
    """M(n) = Θ(n): full memory bandwidth (one access per instruction)."""
    return lambda s: per_instruction * s
