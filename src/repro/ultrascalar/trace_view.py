"""Pipeline trace rendering: per-cycle instruction lifecycles as text.

An extended version of :meth:`ProcessorResult.timing_diagram` that shows
the full lifecycle of each committed instruction:

``f`` fetched (in a station, arguments not yet ready) ·
``E`` executing (or waiting in the memory system) ·
``d`` done, waiting for older instructions to commit ·
``C`` commit cycle.

Reads like the pipeline diagrams in architecture textbooks and makes
stalls visually obvious: columns of ``f`` are RAW/ordering stalls,
columns of ``d`` are in-order-commit backpressure.
"""

from __future__ import annotations

from repro.ultrascalar.processor import ProcessorResult, TimingRecord


def _row(record: TimingRecord, horizon: int) -> str:
    cells = [" "] * horizon
    for cycle in range(record.fetch_cycle, record.issue_cycle):
        cells[cycle] = "f"
    for cycle in range(record.issue_cycle, record.complete_cycle + 1):
        cells[cycle] = "E"
    for cycle in range(record.complete_cycle + 1, record.commit_cycle):
        cells[cycle] = "d"
    if record.commit_cycle > record.complete_cycle:
        cells[record.commit_cycle] = "C"
    else:
        cells[record.commit_cycle] = "C" if cells[record.commit_cycle] == " " else "*"
    return "".join(cells).rstrip()


def render_pipeline(
    result: ProcessorResult,
    max_instructions: int = 40,
    label_width: int = 22,
) -> str:
    """Render the committed instructions' lifecycles as a text chart.

    ``*`` marks a cycle where an instruction both finished executing and
    committed.  Truncates to *max_instructions* rows.
    """
    records = sorted(result.timings, key=lambda t: t.seq)[:max_instructions]
    if not records:
        return "(no instructions)"
    horizon = max(r.commit_cycle for r in records) + 1
    lines = [
        f"{'cycle':<{label_width}} |{''.join(str(c % 10) for c in range(horizon))}"
    ]
    lines.append("-" * (label_width + 2 + horizon))
    for record in records:
        label = str(record.instruction)[: label_width - 1]
        lines.append(f"{label:<{label_width}} |{_row(record, horizon)}")
    truncated = len(result.timings) - len(records)
    if truncated > 0:
        lines.append(f"... ({truncated} more instructions)")
    lines.append("legend: f=fetched/waiting  E=executing  d=done  C=commit  *=finish+commit")
    return "\n".join(lines)


def stall_breakdown(result: ProcessorResult) -> dict[str, int]:
    """Aggregate cycle accounting across committed instructions.

    Returns total instruction-cycles spent waiting (``f``), executing
    (``E``), and awaiting commit (``d``) — a quick where-did-the-time-go
    summary for the examples and tests.
    """
    waiting = executing = draining = 0
    for record in result.timings:
        waiting += max(0, record.issue_cycle - record.fetch_cycle)
        executing += record.complete_cycle - record.issue_cycle + 1
        draining += max(0, record.commit_cycle - record.complete_cycle - 1)
    return {"waiting": waiting, "executing": executing, "draining": draining}
