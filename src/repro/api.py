"""The stable top-level facade: build a processor, run a program.

Everything a script needs for the common case lives here, so user code
(and the bundled ``examples/``) never has to know which module inside
:mod:`repro.ultrascalar` implements which datapath::

    from repro.api import ProcessorConfig, build_processor

    processor = build_processor("us1", ProcessorConfig(window_size=8))
    result = processor.run(program)
    print(result.ipc)

Kinds map onto the paper's three designs: ``"us1"`` (Ultrascalar I,
wrap-around ring, per-station refill), ``"us2"`` (Ultrascalar II,
whole-batch refill), and ``"hybrid"`` (US-II clusters on a US-I ring;
set ``cluster_size``).  ``run(program, tracer=...)`` attaches a
telemetry tracer (see :mod:`repro.telemetry`); by default tracing is
off and runs are byte-identical to the pre-telemetry engines.

The deep modules remain importable — this facade adds a stability
layer, it does not hide anything.  Re-exported here so one import
serves most scripts: :class:`ProcessorConfig`,
:class:`ProcessorResult`, :class:`TimingRecord`, the memory systems,
the tracers, and the :func:`collecting` session helper (every engine
built inside a ``with collecting() as tracer:`` block reports to
*tracer* — how the runner and the bench harness gather counters from
code that never passes ``tracer=`` explicitly).
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Any

from repro.telemetry import CountingTracer, EventTracer, NullTracer, Tracer, collecting
from repro.ultrascalar import (
    CachedMemory,
    IdealMemory,
    MemorySystem,
    ProcessorConfig,
    ProcessorResult,
    TimingRecord,
    make_hybrid,
    make_ultrascalar1,
    make_ultrascalar2,
)

__all__ = [
    "CachedMemory",
    "CountingTracer",
    "EventTracer",
    "IdealMemory",
    "MemorySystem",
    "NullTracer",
    "PROCESSOR_KINDS",
    "Processor",
    "ProcessorConfig",
    "ProcessorResult",
    "TimingRecord",
    "Tracer",
    "build_processor",
    "collecting",
    "run",
]

#: canonical kind names accepted by :func:`build_processor` (aliases in
#: parentheses): paper Section 4 / 5 / 6 designs respectively
PROCESSOR_KINDS = ("us1", "us2", "hybrid")

_ALIASES = {
    "us1": "us1",
    "ultrascalar1": "us1",
    "ring": "us1",
    "us2": "us2",
    "ultrascalar2": "us2",
    "batch": "us2",
    "hybrid": "hybrid",
}


def _normalize_kind(kind: str) -> str:
    """Resolve a kind/alias to canonical form; helpful error otherwise."""
    canonical = _ALIASES.get(kind.lower().replace("-", "").replace("_", ""))
    if canonical is None:
        close = difflib.get_close_matches(kind.lower(), sorted(_ALIASES), n=2)
        hint = f" (did you mean {' or '.join(map(repr, close))}?)" if close else ""
        raise ValueError(
            f"unknown processor kind {kind!r}{hint}; "
            f"expected one of {', '.join(map(repr, PROCESSOR_KINDS))}"
        )
    return canonical


@dataclass(frozen=True)
class Processor:
    """A configured processor design, ready to run programs.

    Immutable and reusable: each :meth:`run` builds a fresh engine
    around the program, so one handle can execute many programs (or the
    same program repeatedly) without state leaking between runs.
    """

    kind: str
    config: ProcessorConfig = field(default_factory=ProcessorConfig)
    #: stations per cluster; only meaningful for ``kind="hybrid"``
    cluster_size: int = 4

    def run(
        self,
        program,
        *,
        tracer: Tracer | None = None,
        memory: MemorySystem | None = None,
        predictor=None,
        initial_registers: list[int] | None = None,
        cycle_hook=None,
    ) -> ProcessorResult:
        """Execute *program* to completion and return the result.

        ``tracer`` attaches a telemetry sink for this run (counters land
        in ``ProcessorResult.stats``); ``cycle_hook`` attaches a
        per-cycle observer — typically an invariant checker from
        :mod:`repro.verify.invariants`; the remaining keywords override
        the factory defaults (ideal memory, perfect prediction, zeroed
        registers).
        """
        common: dict[str, Any] = dict(
            config=self.config,
            predictor=predictor,
            memory=memory,
            initial_registers=initial_registers,
            tracer=tracer,
            cycle_hook=cycle_hook,
        )
        if self.kind == "us1":
            engine = make_ultrascalar1(program, **common)
        elif self.kind == "us2":
            engine = make_ultrascalar2(program, **common)
        else:
            engine = make_hybrid(program, self.cluster_size, **common)
        return engine.run()


def build_processor(
    kind: str,
    config: ProcessorConfig | None = None,
    *,
    cluster_size: int = 4,
) -> Processor:
    """Build a reusable :class:`Processor` of the named design.

    *kind* is one of :data:`PROCESSOR_KINDS` (a few obvious aliases
    such as ``"ring"`` and ``"ultrascalar2"`` also work); unknown names
    raise :class:`ValueError` with a did-you-mean hint.
    """
    return Processor(
        kind=_normalize_kind(kind),
        config=config or ProcessorConfig(),
        cluster_size=cluster_size,
    )


def run(
    program,
    *,
    kind: str = "us1",
    config: ProcessorConfig | None = None,
    cluster_size: int = 4,
    tracer: Tracer | None = None,
    memory: MemorySystem | None = None,
    predictor=None,
    initial_registers: list[int] | None = None,
    cycle_hook=None,
) -> ProcessorResult:
    """One-shot convenience: build the processor and run *program*."""
    return build_processor(kind, config, cluster_size=cluster_size).run(
        program,
        tracer=tracer,
        memory=memory,
        predictor=predictor,
        initial_registers=initial_registers,
        cycle_hook=cycle_hook,
    )
