"""Unit tests for the gate-level ALU."""

import pytest

from repro.circuits.alu import (
    OP_ADD,
    OP_AND,
    OP_OR,
    OP_SUB,
    build_alu,
    build_full_adder,
    build_ripple_adder,
    evaluate_alu,
)
from repro.circuits.netlist import Netlist, bus, bus_value


class TestFullAdder:
    @pytest.mark.parametrize("a,b,c", [(a, b, c) for a in (0, 1) for b in (0, 1) for c in (0, 1)])
    def test_truth_table(self, a, b, c):
        nl = Netlist()
        ins = [nl.add_input(name) for name in "abc"]
        s, cout = build_full_adder(nl, *ins)
        result = nl.simulate({ins[0]: bool(a), ins[1]: bool(b), ins[2]: bool(c)})
        total = a + b + c
        assert result.value_of(s) == bool(total & 1)
        assert result.value_of(cout) == bool(total >> 1)


class TestRippleAdder:
    @pytest.mark.parametrize("a,b", [(0, 0), (1, 1), (255, 1), (170, 85), (200, 100)])
    def test_addition(self, a, b):
        nl = Netlist()
        abus, bbus = bus(nl, "a", 8), bus(nl, "b", 8)
        cin = nl.constant(False)
        sums, cout = build_ripple_adder(nl, abus, bbus, cin)
        assignment = {}
        for i in range(8):
            assignment[abus[i]] = bool((a >> i) & 1)
            assignment[bbus[i]] = bool((b >> i) & 1)
        result = nl.simulate(assignment)
        assert bus_value(result, sums) == (a + b) & 0xFF
        assert result.value_of(cout) == bool((a + b) >> 8)

    def test_carry_ripple_depth_is_linear(self):
        depths = []
        for width in (8, 16, 32):
            nl = Netlist()
            sums, _ = build_ripple_adder(nl, bus(nl, "a", width), bus(nl, "b", width), nl.constant(False))
            depths.append(nl.topological_depth())
        # per-bit slope constant: the carry chain adds a fixed delay per bit
        slope_1 = (depths[1] - depths[0]) / 8
        slope_2 = (depths[2] - depths[1]) / 16
        assert slope_1 == pytest.approx(slope_2, abs=0.5)
        assert depths[2] > depths[0]

    def test_width_mismatch(self):
        nl = Netlist()
        with pytest.raises(ValueError):
            build_ripple_adder(nl, bus(nl, "a", 4), bus(nl, "b", 5), nl.constant(False))


class TestAlu:
    @pytest.fixture(scope="class")
    def alu8(self):
        nl = Netlist()
        ports = build_alu(nl, 8)
        return nl, ports

    @pytest.mark.parametrize(
        "a,b,op,expected",
        [
            (3, 4, OP_ADD, 7),
            (250, 10, OP_ADD, 4),
            (10, 3, OP_SUB, 7),
            (3, 10, OP_SUB, (3 - 10) & 0xFF),
            (0b1100, 0b1010, OP_AND, 0b1000),
            (0b1100, 0b1010, OP_OR, 0b1110),
            (0, 0, OP_SUB, 0),
            (0xFF, 0xFF, OP_AND, 0xFF),
        ],
    )
    def test_operations(self, alu8, a, b, op, expected):
        nl, ports = alu8
        assert evaluate_alu(nl, ports, a, b, op) == expected

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            build_alu(Netlist(), 0)

    def test_gate_count_scales_linearly_with_width(self):
        nl8, nl16 = Netlist(), Netlist()
        build_alu(nl8, 8)
        build_alu(nl16, 16)
        assert nl16.gate_count == pytest.approx(2 * nl8.gate_count, rel=0.2)
