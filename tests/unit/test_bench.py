"""Bench subsystem: timing protocol, registry, artifact schema, runs."""

import gc
import json

import pytest

from repro.bench.artifact import (
    BENCH_SCHEMA,
    build_bench_artifact,
    load_bench_artifact,
    validate_bench_artifact,
    write_bench_artifact,
)
from repro.bench.registry import REGISTRY, Benchmark, register, select
from repro.bench.run import run_benchmark, run_benchmarks
from repro.bench.timing import (
    BenchRecord,
    Timing,
    host_fingerprint,
    measure,
)


class TestTimingProtocol:
    def test_measure_counts_calls(self):
        calls = []
        timing = measure(lambda: calls.append(1), repeats=4, warmup=2)
        assert len(calls) == 6  # warmup + repeats
        assert len(timing.repeats) == 4
        assert all(t >= 0 for t in timing.repeats)
        assert timing.warmup == 2

    def test_measure_restores_gc(self):
        assert gc.isenabled()
        measure(lambda: None, repeats=1, warmup=0)
        assert gc.isenabled()

    def test_measure_restores_gc_when_fn_raises(self):
        def boom():
            raise RuntimeError("x")

        with pytest.raises(RuntimeError):
            measure(boom, repeats=1, warmup=0)
        assert gc.isenabled()

    def test_measure_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            measure(lambda: None, repeats=0)
        with pytest.raises(ValueError):
            measure(lambda: None, repeats=1, warmup=-1)

    def test_timing_statistics(self):
        timing = Timing(repeats=(0.3, 0.1, 0.2), warmup=1)
        assert timing.best_s == pytest.approx(0.1)
        assert timing.median_s == pytest.approx(0.2)
        assert timing.mean_s == pytest.approx(0.2)
        even = Timing(repeats=(0.1, 0.2, 0.3, 0.4), warmup=0)
        assert even.median_s == pytest.approx(0.25)

    def test_host_fingerprint_fields(self):
        host = host_fingerprint()
        assert host["python"] and host["platform"]
        assert isinstance(host["cpu_count"], int)


class TestRegistry:
    def test_names_unique_and_grouped(self):
        names = list(REGISTRY)
        assert len(names) == len(set(names))
        groups = {b.group for b in REGISTRY.values()}
        assert {"engine", "vector", "cspp", "network", "isa", "runner",
                "verify"} <= groups

    def test_quick_subset_covers_all_designs(self):
        quick = select(quick=True)
        designs = {b.metadata.get("design") for b in quick}
        assert {"us1", "us2", "hybrid"} <= designs
        # one representative per group
        assert {b.group for b in quick} == {b.group for b in REGISTRY.values()}

    def test_filter_selects_substrings(self):
        engines = select(substrings=("engine.",))
        assert engines and all(b.name.startswith("engine.") for b in engines)
        assert select(substrings=("no-such-benchmark",)) == []

    def test_register_rejects_duplicates(self, monkeypatch):
        monkeypatch.setattr(
            "repro.bench.registry.REGISTRY", dict(REGISTRY)
        )
        existing = next(iter(REGISTRY.values()))
        with pytest.raises(ValueError, match="duplicate"):
            register(existing)


def _fake_record(name="toy.alpha", group="toy", repeats=(0.01, 0.02, 0.03)):
    return BenchRecord(
        name=name,
        group=group,
        title=f"title of {name}",
        metadata={"size": 1},
        timing=Timing(repeats=repeats, warmup=1),
        stats={"cycles": 100, "commit.instructions": 50},
    )


class TestArtifact:
    def test_round_trip(self, tmp_path):
        document = build_bench_artifact(
            [_fake_record()], mode="quick", repeats=3, warmup=1, wall_time_s=0.5
        )
        assert validate_bench_artifact(document) == []
        path = write_bench_artifact(tmp_path / "out" / "BENCH.json", document)
        loaded = load_bench_artifact(path)
        assert loaded["schema"] == BENCH_SCHEMA
        [entry] = loaded["results"]
        assert entry["name"] == "toy.alpha"
        assert entry["best_s"] == pytest.approx(0.01)
        assert entry["median_s"] == pytest.approx(0.02)
        assert entry["stats"]["cycles"] == 100
        # the telemetry join: simulated work over median wall-clock
        assert entry["rates"]["sim_cycles_per_s"] == pytest.approx(5000.0)
        assert entry["rates"]["sim_instructions_per_s"] == pytest.approx(2500.0)

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "nope"}), encoding="utf-8")
        with pytest.raises(ValueError, match="schema"):
            load_bench_artifact(path)

    def test_validate_catches_problems(self):
        assert validate_bench_artifact([]) == ["artifact is not a JSON object"]
        problems = validate_bench_artifact({"schema": "other/9"})
        assert any("schema is" in p for p in problems)
        assert any("missing top-level key" in p for p in problems)

        good = build_bench_artifact(
            [_fake_record()], mode="full", repeats=3, warmup=1
        )
        bad = json.loads(json.dumps(good))
        bad["results"][0].pop("repeats_s")
        assert any(
            "missing key 'repeats_s'" in p for p in validate_bench_artifact(bad)
        )

        bad = json.loads(json.dumps(good))
        bad["results"][0]["stats"] = {"cycles": "many"}
        assert any("str->int" in p for p in validate_bench_artifact(bad))

        bad = json.loads(json.dumps(good))
        bad["results"][0]["repeats_s"] = []
        assert any("repeats_s" in p for p in validate_bench_artifact(bad))

        bad = json.loads(json.dumps(good))
        bad["results"].append(json.loads(json.dumps(bad["results"][0])))
        assert any("duplicates name" in p for p in validate_bench_artifact(bad))

    def test_validate_duck_types_results(self):
        document = build_bench_artifact([], mode="full", repeats=1, warmup=0)
        document["results"] = "not-a-list"
        assert "results is not a list" in validate_bench_artifact(document)


class TestRunStructureDeterminism:
    """Two in-process runs agree on everything except the timings."""

    def _structure(self, document):
        return [
            {
                k: entry[k]
                for k in ("name", "group", "title", "units", "metadata", "stats")
            }
            for entry in document["results"]
        ]

    def test_two_runs_same_structure(self):
        benchmarks = select(substrings=("cspp", "network", "isa"))
        assert benchmarks
        documents = []
        for _ in range(2):
            records = run_benchmarks(benchmarks, repeats=1, warmup=0)
            documents.append(
                build_bench_artifact(records, mode="full", repeats=1, warmup=0)
            )
        assert self._structure(documents[0]) == self._structure(documents[1])
        assert validate_bench_artifact(documents[0]) == []

    def test_engine_record_joins_sim_counters(self):
        benchmark = Benchmark(
            name="toy.engine",
            group="toy",
            title="tiny engine run",
            make=lambda: _tiny_engine_thunk(),
            metadata={"design": "us1"},
        )
        record = run_benchmark(benchmark, repeats=1, warmup=0)
        assert record.stats["cycles"] > 0
        assert record.stats["commit.instructions"] > 0
        assert record.rates["sim_cycles_per_s"] > 0


def _tiny_engine_thunk():
    from repro.api import ProcessorConfig, build_processor
    from repro.workloads.generators import independent_ops

    workload = independent_ops(8)
    processor = build_processor("us1", ProcessorConfig(window_size=4))

    def thunk():
        processor.run(
            workload.program, initial_registers=workload.registers_for()
        )

    return thunk
