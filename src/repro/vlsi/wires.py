"""Wire delay: linear in length with repeaters.

"Wire delay can be made linear in wire length by inserting repeater
buffers at appropriate intervals [Dally & Poulton].  Thus we use the
terms wire delay and wire length interchangeably here."
"""

from __future__ import annotations

from repro.vlsi.tech import Technology, PAPER_TECH


def wire_delay(length_tracks: float, tech: Technology = PAPER_TECH) -> float:
    """Delay of a repeatered wire of *length_tracks*, in gate-delay units."""
    if length_tracks < 0:
        raise ValueError("length must be non-negative")
    return length_tracks * tech.wire_delay_per_track


def total_delay(gate_delays: float, wire_length_tracks: float,
                tech: Technology = PAPER_TECH) -> float:
    """Gate delay plus wire delay — the paper's "Total Delay" row."""
    if gate_delays < 0:
        raise ValueError("gate delay must be non-negative")
    return gate_delays + wire_delay(wire_length_tracks, tech)
