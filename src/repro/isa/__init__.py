"""A simple RISC instruction-set architecture.

The paper's empirical study implements "a very simple RISC instruction set
architecture [with] 32 32-bit logical registers ... Each instruction in the
architecture reads at most two registers and writes at most one."  This
subpackage provides exactly that ISA:

* :mod:`repro.isa.opcodes` -- the opcode set and per-opcode metadata.
* :mod:`repro.isa.instruction` -- the :class:`Instruction` value type and
  the read-set / write-set accessors the datapaths use.
* :mod:`repro.isa.registers` -- the :class:`MachineSpec` describing ``L``
  logical registers of ``w`` bits.
* :mod:`repro.isa.assembler` -- a two-pass text assembler with labels.
* :mod:`repro.isa.encoding` -- a MIPS-like 32-bit binary encoding.
* :mod:`repro.isa.latency` -- configurable functional-unit latencies
  (the paper's Figure 3 uses divide=10, multiply=3, add=1).
* :mod:`repro.isa.interpreter` -- the golden sequential interpreter that
  every processor model is differentially tested against.
"""

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.encoding import EncodingError, decode_instruction, encode_instruction
from repro.isa.instruction import Instruction
from repro.isa.interpreter import InterpreterError, MachineState, StepOutcome, run_program
from repro.isa.latency import LatencyModel
from repro.isa.opcodes import Opcode, OpClass
from repro.isa.program import Program
from repro.isa.registers import MachineSpec

__all__ = [
    "AssemblerError",
    "assemble",
    "EncodingError",
    "decode_instruction",
    "encode_instruction",
    "Instruction",
    "InterpreterError",
    "MachineState",
    "StepOutcome",
    "run_program",
    "LatencyModel",
    "Opcode",
    "OpClass",
    "Program",
    "MachineSpec",
]
