"""The execution station (the paper's Figure 2).

"An execution station is responsible for decoding and executing an
instruction given the data in its register file.  Each station includes
its own functional units (ALU), its own register file, instruction
decode logic, and control logic."

In the behavioural model a station carries one dynamic instruction and
its progress through the pipeline-less Ultrascalar lifecycle:

EMPTY -> WAITING (arguments not all ready)
      -> EXECUTING (functional-unit latency counting down)
      -> MEMORY (loads/stores waiting on the memory system)
      -> DONE (result computed, ready bit high)

Deallocation back to EMPTY happens when the station and every earlier
station are DONE — computed, like everything else, by a CSPP condition.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.frontend.fetch import FetchedInstruction


class StationState(enum.Enum):
    """Lifecycle of an execution station's current instruction."""

    EMPTY = "empty"
    WAITING = "waiting"
    EXECUTING = "executing"
    MEMORY = "memory"
    DONE = "done"


@dataclass
class Station:
    """One execution station's dynamic state."""

    index: int
    fetched: FetchedInstruction | None = None
    state: StationState = StationState.EMPTY
    #: dynamic sequence number of the held instruction (fetch order)
    seq: int = -1
    #: cycle the instruction entered this station
    fetch_cycle: int = -1
    #: cycle execution began (arguments became ready), -1 until issue
    issue_cycle: int = -1
    #: cycle the result became available to consumers (DONE), -1 until then
    complete_cycle: int = -1
    #: remaining functional-unit cycles while EXECUTING
    remaining: int = 0
    #: resolved operand values (filled at issue)
    operands: tuple[int, ...] = ()
    #: result value (valid when DONE and the instruction writes a register)
    result: int | None = None
    #: effective address for memory operations
    address: int | None = None
    #: actual branch outcome (valid when DONE for control instructions)
    taken: bool | None = None
    #: id of the outstanding memory request, if any
    memory_request_id: int | None = None
    #: architecturally committed, but the station is not yet freed
    #: (hybrid clusters deallocate as a unit)
    committed: bool = False

    @property
    def occupied(self) -> bool:
        """True when the station holds an instruction."""
        return self.state is not StationState.EMPTY

    @property
    def done(self) -> bool:
        """True when the held instruction has finished executing."""
        return self.state is StationState.DONE

    def clear(self) -> None:
        """Return the station to EMPTY (deallocation or squash)."""
        self.fetched = None
        self.state = StationState.EMPTY
        self.seq = -1
        self.fetch_cycle = -1
        self.issue_cycle = -1
        self.complete_cycle = -1
        self.remaining = 0
        self.operands = ()
        self.result = None
        self.address = None
        self.taken = None
        self.memory_request_id = None
        self.committed = False

    def load(self, fetched: FetchedInstruction, seq: int, cycle: int) -> None:
        """Fill the station with a newly fetched instruction."""
        self.clear()
        self.fetched = fetched
        self.state = StationState.WAITING
        self.seq = seq
        self.fetch_cycle = cycle

    @property
    def writes_register(self) -> int | None:
        """The register this station's instruction writes, if any."""
        if self.fetched is None:
            return None
        writes = self.fetched.instruction.writes
        return writes[0] if writes else None
