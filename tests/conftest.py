"""Shared pytest configuration for the repro test suite."""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden report snapshots under tests/golden/ "
        "instead of asserting against them",
    )


@pytest.fixture
def update_golden(request) -> bool:
    """True when the run should regenerate golden snapshots."""
    return request.config.getoption("--update-golden")
